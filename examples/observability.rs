//! Observability tour: virtual-time tracing, per-statement statistics,
//! the FS ↔ DP message-sequence diagram, `EXPLAIN ANALYZE`, and the
//! built-in histograms.
//!
//! ```sh
//! cargo run --example observability
//! ```

use nonstop_sql::sim::format_sequence;
use nonstop_sql::ClusterBuilder;

fn main() {
    let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
    // Tracing is off by default (and free); turn on the ring buffer.
    db.sim.trace.enable_default();

    let mut s = db.session();
    s.execute(
        "CREATE TABLE EMP (EMPNO INT NOT NULL, NAME CHAR(12) NOT NULL, \
         HIRE_DATE INT NOT NULL, SALARY DOUBLE NOT NULL, PRIMARY KEY (EMPNO))",
    )
    .expect("create table");
    s.execute("BEGIN WORK").unwrap();
    for i in 0..3000 {
        let salary = if i % 3 == 0 { 40_000 } else { 20_000 };
        s.execute(&format!(
            "INSERT INTO EMP VALUES ({i}, 'E{i:05}', {}, {salary})",
            1980 + i % 9
        ))
        .unwrap();
    }
    s.execute("COMMIT WORK").unwrap();

    // --- Per-statement attribution: the paper's example 1 -------------
    let sql = "SELECT NAME, HIRE_DATE FROM EMP WHERE EMPNO <= 1000 AND SALARY > 32000";
    let r = s.query(sql).expect("select");
    let stats = s.last_stats().expect("stats").clone();
    println!("{sql}");
    println!(
        "  -> {} rows in {} virtual µs, {} FS-DP messages ({} re-drives), {} message bytes\n",
        r.rows.len(),
        stats.elapsed_us,
        stats.metrics.msgs_fs_dp,
        stats.metrics.msgs_redrive,
        stats.metrics.msg_bytes_total,
    );

    // The statement's own trace slice, rendered as the paper's
    // Figure-2-style FS <-> DP message-sequence diagram.
    println!("{}", format_sequence(&stats.trace));

    // --- EXPLAIN ANALYZE ----------------------------------------------
    let r = s
        .query(&format!("EXPLAIN ANALYZE {sql}"))
        .expect("explain analyze");
    println!("EXPLAIN ANALYZE {sql}");
    println!("{}", r.to_table());

    // --- Critical-path wait profile -----------------------------------
    // Every statement's elapsed virtual time decomposes into exhaustive
    // wait categories (CPU / message / disk / lock / group-commit /
    // retry) that sum exactly — zero tolerance — to `elapsed_us`. The
    // same rows appear as the WAIT PROFILE section of EXPLAIN ANALYZE.
    println!(
        "wait profile: {} (sums to {} µs elapsed: {})",
        stats.wait,
        stats.elapsed_us,
        stats.wait.total() == stats.elapsed_us,
    );

    // --- Causal span tree ---------------------------------------------
    // Each FS-DP request carries trace/span/parent ids in its header, so
    // the statement's trace slice assembles into one causal tree.
    let roots = nonstop_sql::sim::assemble_spans(&stats.trace);
    for root in &roots {
        println!(
            "span tree: {} ({} µs, self {})",
            root.label,
            root.elapsed(),
            root.self_wait(),
        );
        for req in &root.children {
            println!("  {} on {} -> {}", req.label, req.track, req.wait);
            for dp in &req.children {
                println!("    handled by {} -> {}", dp.track, dp.wait);
            }
        }
    }
    println!();

    // --- Histograms ---------------------------------------------------
    let h = &db.sim.hist;
    println!(
        "statement latency (virtual µs): p50={} p95={} p99={} max={}",
        h.stmt_latency_us.p50(),
        h.stmt_latency_us.p95(),
        h.stmt_latency_us.p99(),
        h.stmt_latency_us.max(),
    );
    println!(
        "message bytes:                  p50={} p99={} max={} (n={})",
        h.msg_bytes.p50(),
        h.msg_bytes.p99(),
        h.msg_bytes.max(),
        h.msg_bytes.count(),
    );
    println!(
        "re-drive chain length:          p50={} max={}",
        h.redrive_chain.p50(),
        h.redrive_chain.max(),
    );
    println!(
        "group-commit batch size:        p50={} max={}",
        h.commit_group.p50(),
        h.commit_group.max(),
    );
}
