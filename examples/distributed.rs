//! Distribution: a table partitioned across two network nodes, accessed
//! via secondary index from a third location — the architecture of the
//! paper's Figures 1 and 2.
//!
//! ```sh
//! cargo run --example distributed
//! ```

use nonstop_sql::ClusterBuilder;
use nsql_workloads::Wisconsin;

fn main() {
    // Node 0 holds two volumes, node 1 holds two more; the index volume
    // lives on node 1. Sessions run on node 0, CPU 0.
    let db = ClusterBuilder::new()
        .volume("$DATA1", 0, 1)
        .volume("$DATA2", 0, 2)
        .volume("$FAR1", 1, 0)
        .volume("$FAR2", 1, 1)
        .volume("$IDX", 1, 2)
        .build();

    let w = Wisconsin::create(
        &db,
        "WISC",
        8000,
        &["$DATA1", "$DATA2", "$FAR1", "$FAR2"],
        7,
    )
    .expect("load");
    let mut s = db.session();
    s.execute("CREATE INDEX WISC_U1 ON WISC (UNIQUE1) ON '$IDX'")
        .expect("index");

    println!("table WISC: 8000 rows over 4 volumes on 2 nodes, index on node 1\n");

    // A selective scan: the predicate travels to all four partitions, but
    // only qualifying (and projected) data comes back over the network.
    let before = db.snapshot();
    let r = s
        .query("SELECT UNIQUE2, HUNDRED FROM WISC WHERE HUNDRED = 42")
        .unwrap();
    let m = db.metrics().since(&before);
    println!("predicate scan  : {} rows", r.rows.len());
    println!(
        "  FS-DP msgs    : {} ({} crossed nodes)",
        m.msgs_fs_dp, m.msgs_remote
    );
    println!("  bytes moved   : {}", m.msg_bytes_total);
    println!(
        "  DP examined   : {} records (filtered at the source)",
        m.dp_records_examined
    );

    // The same rows via the secondary index (Figure 2): the index's Disk
    // Process finds the primary keys; base records come from whichever
    // node owns them.
    let before = db.snapshot();
    let r = s
        .query("SELECT UNIQUE2, UNIQUE1 FROM WISC WHERE UNIQUE1 BETWEEN 100 AND 179")
        .unwrap();
    let m = db.metrics().since(&before);
    println!("\nindex-only scan : {} rows", r.rows.len());
    println!(
        "  FS-DP msgs    : {} ({} crossed nodes)",
        m.msgs_fs_dp, m.msgs_remote
    );
    println!("  bytes moved   : {}", m.msg_bytes_total);

    // Distributed transaction: one UPDATE touching partitions on both
    // nodes commits atomically through TMF.
    let before = db.snapshot();
    let n = s
        .execute("UPDATE WISC SET THOUSAND = THOUSAND + 1 WHERE UNIQUE2 BETWEEN 1990 AND 2010")
        .unwrap()
        .count();
    let m = db.metrics().since(&before);
    println!("\ncross-partition UPDATE: {n} rows across the $DATA2/$FAR1 boundary");
    println!("  FS-DP msgs    : {}", m.msgs_fs_dp);
    println!(
        "  committed     : {} (two-phase through TMF)",
        m.txns_committed
    );
    let _ = w;
}
