//! Quickstart: build a cluster, create a table, run SQL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nonstop_sql::{Cluster, ClusterBuilder};

fn main() {
    // A two-volume cluster on one node. Each volume is managed by a
    // simulated Disk Process; the audit trail and transaction manager are
    // wired automatically.
    let db: Cluster = ClusterBuilder::new()
        .volume("$DATA1", 0, 1)
        .volume("$DATA2", 0, 2)
        .build();

    let mut session = db.session();
    session
        .execute(
            "CREATE TABLE EMP (EMPNO INT NOT NULL, NAME CHAR(12) NOT NULL, \
             HIRE_DATE INT, SALARY DOUBLE, PRIMARY KEY (EMPNO)) \
             PARTITION BY VALUES (1000) ON ('$DATA1', '$DATA2')",
        )
        .expect("create table");

    for i in 0..2000 {
        let salary = 20_000 + (i % 40) * 1_000;
        session
            .execute(&format!(
                "INSERT INTO EMP VALUES ({i}, 'EMP{i:05}', {}, {salary})",
                1980 + i % 9
            ))
            .expect("insert");
    }

    // The paper's example 1: selection + projection, evaluated at the
    // Disk Process and returned through virtual sequential block buffering.
    let before = db.snapshot();
    let rows = session
        .query("SELECT NAME, HIRE_DATE FROM EMP WHERE EMPNO <= 1000 AND SALARY > 32000")
        .expect("query");
    let delta = db.metrics().since(&before);

    println!("{}", rows.to_table());
    println!("rows returned        : {}", rows.rows.len());
    println!("FS-DP messages used  : {}", delta.msgs_fs_dp);
    println!("records examined (DP): {}", delta.dp_records_examined);
    println!("records selected (DP): {}", delta.dp_records_selected);
    println!(
        "\nThe Disk Processes examined {} records but only {} messages crossed the\n\
         FS-DP interface — selection and projection ran at the data source.",
        delta.dp_records_examined, delta.msgs_fs_dp
    );

    // Transactions.
    let mut s2 = db.session();
    s2.execute("BEGIN WORK").unwrap();
    s2.execute("UPDATE EMP SET SALARY = SALARY * 1.10 WHERE EMPNO = 7")
        .unwrap();
    s2.execute("ROLLBACK WORK").unwrap();
    let r = s2.query("SELECT SALARY FROM EMP WHERE EMPNO = 7").unwrap();
    println!(
        "\nafter rollback, EMPNO 7 salary is back to {}",
        r.rows[0].0[0]
    );
}
