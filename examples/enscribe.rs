//! The pre-existing DBMS: ENSCRIBE's record-at-a-time API and the three
//! file structures (key-sequenced, relative, entry-sequenced), driven
//! directly through the File System — the world the paper's SQL system had
//! to match.
//!
//! ```sh
//! cargo run --example enscribe
//! ```

use nonstop_sql::ClusterBuilder;
use nsql_dp::{DpReply, DpRequest, FileKind, ReadLock};
use nsql_fs::OpenFile;
use nsql_records::key::encode_record_key;
use nsql_records::{FieldDef, FieldType, RecordDescriptor, Value};

fn main() {
    let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
    let session = db.session();
    let fs = session.fs();

    // --- key-sequenced file, used the ENSCRIBE way --------------------
    let desc = RecordDescriptor::new(
        vec![
            FieldDef::new("PARTNO", FieldType::Int),
            FieldDef::new("DESCR", FieldType::Char(16)),
            FieldDef::new("QTY", FieldType::Int),
        ],
        vec![0],
    );
    let DpReply::FileCreated(file) = fs
        .send(
            "$DATA1",
            DpRequest::CreateFile {
                kind: FileKind::KeySequenced(desc.clone()),
            },
        )
        .unwrap()
    else {
        panic!()
    };
    let of = OpenFile::single("PARTS", desc.clone(), "$DATA1", file);

    let txn = db.txnmgr.begin();
    for i in 0..50 {
        fs.ens_write(
            txn,
            &of,
            &[
                Value::Int(i),
                Value::Str(format!("PART-{i:03}")),
                Value::Int(100),
            ],
        )
        .unwrap();
    }
    db.txnmgr.commit(txn, session.cpu()).unwrap();

    // READ by key, then the ENSCRIBE update discipline: read, modify, WRITE
    // back the full image (two messages; full-record audit).
    let key = encode_record_key(&desc, &[Value::Int(7), Value::Null, Value::Null]);
    let txn = db.txnmgr.begin();
    let old = fs
        .ens_read(Some(txn), &of, &key, ReadLock::Shared)
        .unwrap()
        .unwrap();
    let mut new = old.0.clone();
    new[2] = Value::Int(93);
    fs.ens_rewrite(txn, &of, &old.0, &new).unwrap();
    db.txnmgr.commit(txn, session.cpu()).unwrap();
    println!("key-sequenced: PART 7 quantity rewritten to 93");

    // Sequential read, record at a time: one message per record.
    let before = db.snapshot();
    let mut cur = fs.ens_open(&of, None);
    let mut n = 0;
    while fs.ens_read_next(&mut cur).unwrap().is_some() {
        n += 1;
    }
    let m = db.metrics().since(&before);
    println!(
        "key-sequenced: sequential read of {n} records took {} FS-DP messages",
        m.msgs_fs_dp
    );

    // --- relative file: direct access by record number ----------------
    let DpReply::FileCreated(rel) = fs
        .send(
            "$DATA1",
            DpRequest::CreateFile {
                kind: FileKind::Relative { slot_size: 64 },
            },
        )
        .unwrap()
    else {
        panic!()
    };
    let txn = db.txnmgr.begin();
    fs.ens_relative_write(txn, "$DATA1", rel, 12, b"slot twelve".to_vec())
        .unwrap();
    fs.ens_relative_write(txn, "$DATA1", rel, 4000, b"sparse slots are fine".to_vec())
        .unwrap();
    db.txnmgr.commit(txn, session.cpu()).unwrap();
    let got = fs.ens_relative_read("$DATA1", rel, 12).unwrap().unwrap();
    println!(
        "relative: slot 12 holds {:?}",
        String::from_utf8_lossy(&got[..11])
    );

    // --- entry-sequenced file: insert at EOF only ----------------------
    let DpReply::FileCreated(log) = fs
        .send(
            "$DATA1",
            DpRequest::CreateFile {
                kind: FileKind::EntrySequenced,
            },
        )
        .unwrap()
    else {
        panic!()
    };
    let mut addrs = Vec::new();
    for i in 0..5 {
        addrs.push(
            fs.ens_entry_append("$DATA1", log, format!("event {i}").into_bytes())
                .unwrap(),
        );
    }
    let got = fs.ens_entry_read("$DATA1", log, addrs[3]).unwrap().unwrap();
    println!(
        "entry-sequenced: address {} holds {:?}",
        addrs[3],
        String::from_utf8_lossy(&got)
    );

    println!(
        "\nThis is the 1970s-era interface NonStop SQL had to match; run\n\
         `cargo run --example debitcredit` to see the comparison."
    );
}
