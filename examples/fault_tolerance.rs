//! Fault tolerance: CPU failure with takeover, and a total crash with
//! recovery from the TMF audit trail.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use nonstop_sql::ClusterBuilder;

fn main() {
    // A process pair: $DATA1's Disk Process runs on CPU 1 with a backup on
    // CPU 2, receiving checkpoint messages.
    let db = ClusterBuilder::new()
        .volume_with_backup("$DATA1", 0, 1, 0, 2)
        .build();

    let mut s = db.session();
    s.execute(
        "CREATE TABLE ACCOUNT (ACCTNO INT NOT NULL, BALANCE DOUBLE NOT NULL, \
         PRIMARY KEY (ACCTNO))",
    )
    .unwrap();
    for i in 0..100 {
        s.execute(&format!("INSERT INTO ACCOUNT VALUES ({i}, 1000)"))
            .unwrap();
    }
    println!(
        "loaded 100 accounts; {} checkpoint messages went primary -> backup",
        db.metrics().msgs_checkpoint.get()
    );

    // --- CPU failure and takeover -------------------------------------
    println!("\nfailing CPU 0.1 (the primary Disk Process's home) ...");
    db.takeover("$DATA1", 0, 2);
    let r = s.query("SELECT COUNT(*) FROM ACCOUNT").unwrap();
    println!(
        "after takeover on CPU 0.2: COUNT(*) = {} (committed data intact)",
        r.rows[0].0[0]
    );
    s.execute("UPDATE ACCOUNT SET BALANCE = BALANCE + 1 WHERE ACCTNO = 0")
        .unwrap();
    println!("writes keep flowing through the new primary");

    // --- Total crash with an in-flight transaction ---------------------
    println!("\nstarting a transaction and crashing mid-flight ...");
    s.execute("BEGIN WORK").unwrap();
    s.execute("UPDATE ACCOUNT SET BALANCE = 0 WHERE ACCTNO = 5")
        .unwrap();
    s.execute("INSERT INTO ACCOUNT VALUES (999, 123)").unwrap();
    db.crash_and_recover_all();

    let mut s2 = db.session();
    let r = s2
        .query("SELECT BALANCE FROM ACCOUNT WHERE ACCTNO = 5")
        .unwrap();
    println!(
        "after recovery: ACCTNO 5 balance = {} (uncommitted update undone)",
        r.rows[0].0[0]
    );
    let r = s2
        .query("SELECT COUNT(*) FROM ACCOUNT WHERE ACCTNO = 999")
        .unwrap();
    println!(
        "after recovery: ghost row count = {} (uncommitted insert gone)",
        r.rows[0].0[0]
    );
    let r = s2
        .query("SELECT BALANCE FROM ACCOUNT WHERE ACCTNO = 0")
        .unwrap();
    println!(
        "after recovery: ACCTNO 0 balance = {} (committed update redone)",
        r.rows[0].0[0]
    );
}
