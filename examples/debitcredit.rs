//! DebitCredit: the banking workload the paper's performance claim rests
//! on, run through both the NonStop SQL path and the ENSCRIBE path.
//!
//! ```sh
//! cargo run --example debitcredit
//! ```

use nonstop_sql::ClusterBuilder;
use nsql_sim::SimRng;
use nsql_workloads::Bank;

fn main() {
    let txns = 200u32;

    for (label, sql_path) in [("NonStop SQL", true), ("ENSCRIBE", false)] {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let bank = Bank::create(&db, 2, 500, "$DATA1").expect("load bank");
        let session = db.session();
        let mut rng = SimRng::seed_from(42);

        let before = db.snapshot();
        let t0 = db.sim.now();
        for _ in 0..txns {
            let (aid, tid, bid, delta) = bank.draw(&mut rng);
            let txn = db.txnmgr.begin();
            if sql_path {
                bank.debit_credit_sql(session.fs(), txn, aid, tid, bid, delta)
                    .expect("txn");
            } else {
                bank.debit_credit_enscribe(session.fs(), txn, aid, tid, bid, delta)
                    .expect("txn");
            }
            db.txnmgr.commit(txn, session.cpu()).expect("commit");
        }
        let elapsed = db.sim.now() - t0;
        let m = db.metrics().since(&before);

        println!("--- {label} path, {txns} debit-credit transactions ---");
        println!(
            "  FS-DP messages : {:6}  ({:.1}/txn)",
            m.msgs_fs_dp,
            m.msgs_fs_dp as f64 / txns as f64
        );
        println!("  message bytes  : {:6}", m.msg_bytes_total);
        println!(
            "  audit bytes    : {:6}  ({:.0}/txn)",
            m.audit_bytes,
            m.audit_bytes as f64 / txns as f64
        );
        println!(
            "  group commits  : {:6} flushes, {} piggybacked",
            m.audit_flushes, m.group_commit_piggybacks
        );
        println!(
            "  virtual time   : {:.2} ms/txn",
            elapsed as f64 / txns as f64 / 1000.0
        );
        println!(
            "  balance check  : total = {}",
            bank.total_balance(&db).expect("sum")
        );
        println!();
    }

    println!(
        "The SQL path needs 4 FS-DP messages per transaction (3 pushed-down update\n\
         expressions + 1 insert) where ENSCRIBE needs 7 (3 reads + 3 writes + 1 insert),\n\
         and its field-compressed audit is ~3x smaller — the mechanisms behind the\n\
         paper's claim that NonStop SQL matches its pre-existing DBMS."
    );
}
