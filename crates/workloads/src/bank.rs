//! DebitCredit-style banking workload (the \[Benchmark\] workbook's OLTP
//! load).
//!
//! Schema: BRANCH / TELLER / ACCOUNT / HISTORY with the classic ~100-byte
//! records. The debit-credit transaction updates one account, its teller
//! and branch balances, and appends a history record. Two implementations
//! of the *same* transaction exist:
//!
//! * [`Bank::debit_credit_sql`] — the NonStop SQL path: balance updates as
//!   pushed-down update expressions (one message per record touched,
//!   field-compressed audit);
//! * [`Bank::debit_credit_enscribe`] — the ENSCRIBE path: READ then WRITE
//!   per record (two messages), full-image audit.
//!
//! Experiment E9 runs both and compares messages, I/O, audit bytes, CPU
//! work and virtual time — the paper's claim is that the SQL system
//! *matches* the pre-existing DBMS on this kind of workload.

use nsql_core::{Cluster, DbError};
use nsql_dp::ReadLock;
use nsql_fs::{FileSystem, OpenFile};
use nsql_lock::TxnId;
use nsql_records::key::encode_record_key;
use nsql_records::{ArithOp, Expr, SetList, Value};
use nsql_sim::SimRng;

/// FS-DP messages in one SQL debit-credit transaction (see
/// [`Bank::debit_credit_step`]).
pub const DEBIT_CREDIT_STEPS: usize = 4;

/// A loaded bank database.
pub struct Bank {
    /// Number of branches.
    pub branches: u32,
    /// Tellers (10 per branch).
    pub tellers: u32,
    /// Accounts (`accounts_per_branch` per branch).
    pub accounts: u32,
    next_history: std::sync::atomic::AtomicI64,
    account_of: OpenFile,
    teller_of: OpenFile,
    branch_of: OpenFile,
    history_of: OpenFile,
}

impl Bank {
    /// Create and load the four tables. `accounts_per_branch` scales the
    /// database (classic is 100 000; simulations use less).
    pub fn create(
        db: &Cluster,
        branches: u32,
        accounts_per_branch: u32,
        volume: &str,
    ) -> Result<Bank, DbError> {
        let mut s = db.session();
        s.execute(&format!(
            "CREATE TABLE BRANCH (BID INT NOT NULL, BBALANCE DOUBLE NOT NULL, \
             FILLER CHAR(88) NOT NULL, PRIMARY KEY (BID)) ON '{volume}'"
        ))?;
        s.execute(&format!(
            "CREATE TABLE TELLER (TID INT NOT NULL, BID INT NOT NULL, \
             TBALANCE DOUBLE NOT NULL, FILLER CHAR(84) NOT NULL, \
             PRIMARY KEY (TID)) ON '{volume}'"
        ))?;
        s.execute(&format!(
            "CREATE TABLE ACCOUNT (AID INT NOT NULL, BID INT NOT NULL, \
             ABALANCE DOUBLE NOT NULL, FILLER CHAR(84) NOT NULL, \
             PRIMARY KEY (AID)) ON '{volume}'"
        ))?;
        s.execute(&format!(
            "CREATE TABLE HISTORY (HID LARGEINT NOT NULL, AID INT NOT NULL, \
             TID INT NOT NULL, BID INT NOT NULL, DELTA DOUBLE NOT NULL, \
             FILLER CHAR(24) NOT NULL, PRIMARY KEY (HID)) ON '{volume}'"
        ))?;

        let filler = |n: usize| "F".repeat(n);
        let catalog = &db.catalog;
        let get = |t: &str| -> Result<OpenFile, DbError> {
            Ok(catalog.table(t).map_err(|e| DbError(e.to_string()))?.open)
        };
        let branch_of = get("BRANCH")?;
        let teller_of = get("TELLER")?;
        let account_of = get("ACCOUNT")?;
        let history_of = get("HISTORY")?;

        // Bulk load through the blocked-insert interface.
        let txn = db.txnmgr.begin();
        {
            let fs = s.fs();
            let mut ins = nsql_fs::BlockedInserter::new(fs, &branch_of, txn);
            for b in 0..branches {
                ins.push(&[
                    Value::Int(b as i32),
                    Value::Double(0.0),
                    Value::Str(filler(88)),
                ])
                .map_err(|e| DbError(e.to_string()))?;
            }
            ins.flush().map_err(|e| DbError(e.to_string()))?;
            let mut ins = nsql_fs::BlockedInserter::new(fs, &teller_of, txn);
            for t in 0..branches * 10 {
                ins.push(&[
                    Value::Int(t as i32),
                    Value::Int((t / 10) as i32),
                    Value::Double(0.0),
                    Value::Str(filler(84)),
                ])
                .map_err(|e| DbError(e.to_string()))?;
            }
            ins.flush().map_err(|e| DbError(e.to_string()))?;
            let mut ins = nsql_fs::BlockedInserter::new(fs, &account_of, txn);
            for a in 0..branches * accounts_per_branch {
                ins.push(&[
                    Value::Int(a as i32),
                    Value::Int((a / accounts_per_branch) as i32),
                    Value::Double(1000.0),
                    Value::Str(filler(84)),
                ])
                .map_err(|e| DbError(e.to_string()))?;
            }
            ins.flush().map_err(|e| DbError(e.to_string()))?;
        }
        db.txnmgr
            .commit(txn, s.cpu())
            .map_err(|e| DbError(e.to_string()))?;
        db.catalog.bump_rows("BRANCH", branches as i64);
        db.catalog.bump_rows("TELLER", (branches * 10) as i64);
        db.catalog
            .bump_rows("ACCOUNT", (branches * accounts_per_branch) as i64);

        Ok(Bank {
            branches,
            tellers: branches * 10,
            accounts: branches * accounts_per_branch,
            next_history: std::sync::atomic::AtomicI64::new(0),
            account_of,
            teller_of,
            branch_of,
            history_of,
        })
    }

    /// Draw the random inputs of one transaction.
    pub fn draw(&self, rng: &mut SimRng) -> (i32, i32, i32, f64) {
        let aid = rng.below(self.accounts as u64) as i32;
        let tid = rng.below(self.tellers as u64) as i32;
        let bid = tid / 10;
        let delta = rng.between(-500, 500) as f64;
        (aid, tid, bid, delta)
    }

    fn hid(&self) -> i64 {
        self.next_history
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    fn add_expr(field: u16, delta: f64) -> SetList {
        SetList {
            sets: vec![(
                field,
                Expr::Arith(
                    Box::new(Expr::Field(field)),
                    ArithOp::Add,
                    Box::new(Expr::lit(Value::Double(delta))),
                ),
            )],
        }
    }

    fn key_of(of: &OpenFile, id: Value) -> Vec<u8> {
        let mut row = vec![Value::Null; of.desc.num_fields()];
        row[of.desc.key_fields[0] as usize] = id;
        encode_record_key(&of.desc, &row)
    }

    /// One FS-DP message of the SQL debit-credit transaction: steps `0..2`
    /// are the pushed-down account/teller/branch balance updates, the last
    /// step is the history insert. The multi-terminal load engine issues
    /// these one at a time so concurrent transactions interleave — and
    /// contend — at real message granularity, and the typed
    /// [`nsql_fs::FsError`] lets its retry loop match on
    /// [`nsql_fs::FsError::Doomed`].
    #[allow(clippy::too_many_arguments)] // mirrors debit_credit_sql's fields plus the step index
    pub fn debit_credit_step(
        &self,
        fs: &FileSystem,
        txn: TxnId,
        step: usize,
        aid: i32,
        tid: i32,
        bid: i32,
        delta: f64,
    ) -> Result<(), nsql_fs::FsError> {
        match step {
            0 => fs.update_by_key(
                txn,
                &self.account_of,
                &Self::key_of(&self.account_of, Value::Int(aid)),
                &Self::add_expr(2, delta),
                None,
            ),
            1 => fs.update_by_key(
                txn,
                &self.teller_of,
                &Self::key_of(&self.teller_of, Value::Int(tid)),
                &Self::add_expr(2, delta),
                None,
            ),
            2 => fs.update_by_key(
                txn,
                &self.branch_of,
                &Self::key_of(&self.branch_of, Value::Int(bid)),
                &Self::add_expr(1, delta),
                None,
            ),
            _ => fs.insert_row(
                txn,
                &self.history_of,
                &[
                    Value::LargeInt(self.hid()),
                    Value::Int(aid),
                    Value::Int(tid),
                    Value::Int(bid),
                    Value::Double(delta),
                    Value::Str("H".repeat(24)),
                ],
            ),
        }
    }

    /// The NonStop SQL implementation: three pushed-down update
    /// expressions plus one insert — four FS-DP messages, field-compressed
    /// audit, no read-before-write.
    pub fn debit_credit_sql(
        &self,
        fs: &FileSystem,
        txn: TxnId,
        aid: i32,
        tid: i32,
        bid: i32,
        delta: f64,
    ) -> Result<(), DbError> {
        for step in 0..DEBIT_CREDIT_STEPS {
            self.debit_credit_step(fs, txn, step, aid, tid, bid, delta)
                .map_err(|x| DbError(x.to_string()))?;
        }
        Ok(())
    }

    /// The ENSCRIBE implementation of the identical transaction: READ then
    /// WRITE (full record image) per balance — eight messages where SQL
    /// needs four — plus the history insert.
    pub fn debit_credit_enscribe(
        &self,
        fs: &FileSystem,
        txn: TxnId,
        aid: i32,
        tid: i32,
        bid: i32,
        delta: f64,
    ) -> Result<(), DbError> {
        let e = |x: nsql_fs::FsError| DbError(x.to_string());
        let rewrite = |of: &OpenFile, id: Value, bal_field: usize| -> Result<(), DbError> {
            let key = Self::key_of(of, id);
            let old = fs
                .ens_read(Some(txn), of, &key, ReadLock::Shared)
                .map_err(e)?
                .ok_or_else(|| DbError("missing record".into()))?;
            let mut new = old.0.clone();
            let Value::Double(b) = new[bal_field] else {
                return Err(DbError("bad balance".into()));
            };
            new[bal_field] = Value::Double(b + delta);
            fs.ens_rewrite(txn, of, &old.0, &new).map_err(e)
        };
        rewrite(&self.account_of, Value::Int(aid), 2)?;
        rewrite(&self.teller_of, Value::Int(tid), 2)?;
        rewrite(&self.branch_of, Value::Int(bid), 1)?;
        fs.ens_write(
            txn,
            &self.history_of,
            &[
                Value::LargeInt(self.hid()),
                Value::Int(aid),
                Value::Int(tid),
                Value::Int(bid),
                Value::Double(delta),
                Value::Str("H".repeat(24)),
            ],
        )
        .map_err(e)?;
        Ok(())
    }

    /// Total of all account balances (consistency checks).
    pub fn total_balance(&self, db: &Cluster) -> Result<f64, DbError> {
        let mut s = db.session();
        let r = s.query("SELECT SUM(ABALANCE) FROM ACCOUNT")?;
        match r.rows[0].0[0] {
            Value::Double(x) => Ok(x),
            Value::Null => Ok(0.0),
            ref v => Err(DbError(format!("unexpected sum {v}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_core::ClusterBuilder;

    fn db() -> Cluster {
        ClusterBuilder::new().volume("$DATA1", 0, 1).build()
    }

    #[test]
    fn load_shapes() {
        let db = db();
        let bank = Bank::create(&db, 2, 50, "$DATA1").unwrap();
        assert_eq!(bank.branches, 2);
        assert_eq!(bank.tellers, 20);
        assert_eq!(bank.accounts, 100);
        let mut s = db.session();
        assert_eq!(
            s.query("SELECT COUNT(*) FROM ACCOUNT").unwrap().rows[0].0[0],
            Value::LargeInt(100)
        );
        assert_eq!(bank.total_balance(&db).unwrap(), 100.0 * 1000.0);
    }

    #[test]
    fn sql_and_enscribe_paths_agree() {
        let db = db();
        let bank = Bank::create(&db, 1, 20, "$DATA1").unwrap();
        let s = db.session();
        let fs = s.fs();

        let txn = db.txnmgr.begin();
        bank.debit_credit_sql(fs, txn, 3, 5, 0, 100.0).unwrap();
        db.txnmgr.commit(txn, s.cpu()).unwrap();

        let txn = db.txnmgr.begin();
        bank.debit_credit_enscribe(fs, txn, 3, 5, 0, 50.0).unwrap();
        db.txnmgr.commit(txn, s.cpu()).unwrap();

        let mut s2 = db.session();
        let r = s2
            .query("SELECT ABALANCE FROM ACCOUNT WHERE AID = 3")
            .unwrap();
        assert_eq!(r.rows[0].0[0], Value::Double(1150.0));
        let r = s2.query("SELECT COUNT(*) FROM HISTORY").unwrap();
        assert_eq!(r.rows[0].0[0], Value::LargeInt(2));
        let r = s2
            .query("SELECT BBALANCE FROM BRANCH WHERE BID = 0")
            .unwrap();
        assert_eq!(r.rows[0].0[0], Value::Double(150.0));
    }

    #[test]
    fn sql_path_uses_fewer_messages_for_updates() {
        let db = db();
        let bank = Bank::create(&db, 1, 20, "$DATA1").unwrap();
        let s = db.session();
        let fs = s.fs();

        let before = db.snapshot();
        let txn = db.txnmgr.begin();
        bank.debit_credit_sql(fs, txn, 1, 1, 0, 10.0).unwrap();
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        let sql_msgs = db.metrics().since(&before).msgs_fs_dp;

        let before = db.snapshot();
        let txn = db.txnmgr.begin();
        bank.debit_credit_enscribe(fs, txn, 1, 1, 0, 10.0).unwrap();
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        let ens_msgs = db.metrics().since(&before).msgs_fs_dp;

        assert_eq!(sql_msgs, 4, "3 pushed-down updates + 1 insert");
        assert_eq!(ens_msgs, 7, "3 x (read + write) + 1 insert");
    }

    #[test]
    fn money_conserved_under_random_mix() {
        let db = db();
        let bank = Bank::create(&db, 2, 25, "$DATA1").unwrap();
        let s = db.session();
        let fs = s.fs();
        let mut rng = SimRng::seed_from(11);
        let mut expected = 50.0 * 1000.0;
        for i in 0..30 {
            let (aid, tid, bid, delta) = bank.draw(&mut rng);
            let txn = db.txnmgr.begin();
            if i % 2 == 0 {
                bank.debit_credit_sql(fs, txn, aid, tid, bid, delta)
                    .unwrap();
            } else {
                bank.debit_credit_enscribe(fs, txn, aid, tid, bid, delta)
                    .unwrap();
            }
            db.txnmgr.commit(txn, s.cpu()).unwrap();
            expected += delta;
        }
        assert!((bank.total_balance(&db).unwrap() - expected).abs() < 1e-6);
    }
}
