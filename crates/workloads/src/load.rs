//! Open-loop multi-terminal DebitCredit engine on the virtual clock.
//!
//! `N` simulated terminals issue debit-credit transactions with Poisson
//! (exponential-gap) arrivals and Zipf-skewed account hotspots. The engine
//! is a cooperative event scheduler: each scheduler step runs exactly one
//! FS-DP message of one terminal's transaction, so concurrent transactions
//! interleave — and genuinely contend for locks and group commit — at
//! message granularity, all on one OS thread and one deterministic clock.
//!
//! Contention is survivable end to end:
//!
//! * a transaction doomed as a **deadlock victim** (or by the lock-wait
//!   timeout) surfaces as the typed [`FsError::Doomed`]; the terminal
//!   aborts it (full UNDO through the audit trail) and automatically
//!   retries with bounded exponential backoff;
//! * a plain **lock conflict** ([`DpError::Locked`]) is re-polled after a
//!   short lock-retry pause, preserving the Disk Process's FIFO grant
//!   order;
//! * an **admission-control gate** bounds in-flight transactions: arrivals
//!   beyond the bound queue FIFO (counted as `admission.queued`) and only
//!   enter when a slot frees, so offered load beyond saturation degrades
//!   gracefully — throughput plateaus and queueing absorbs the excess —
//!   instead of collapsing into lock thrash.
//!
//! On the *shared* clock, admission queueing only accrues `wait.admission`
//! ledger time when the gate itself is the critical path (grants happen at
//! completion instants, which rarely advance the clock); the per-transaction
//! admission delay — the evidence that the gate absorbs overload — is
//! therefore measured separately in [`LoadOutcome::admission_wait_us`].

use crate::bank::{Bank, DEBIT_CREDIT_STEPS};
use nsql_core::Cluster;
use nsql_dp::DpError;
use nsql_fs::FsError;
use nsql_lock::TxnId;
use nsql_sim::{
    Ctr, EntityKind, MeasureSnapshot, Sim, SimRng, Wait, WaitProfile, Zipf, WAIT_CATEGORIES,
};
use nsql_tmf::txn::{TxnError, TMF_ENTITY};
use std::collections::VecDeque;

/// Tunables of one multi-terminal run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of simulated terminals.
    pub terminals: usize,
    /// Arrivals stop after this much virtual time; in-flight transactions
    /// are drained to completion.
    pub duration_us: u64,
    /// Mean exponential inter-arrival gap per terminal (open loop: the
    /// offered rate is `terminals / mean_think_us`, independent of how
    /// fast the system completes work).
    pub mean_think_us: f64,
    /// Zipf skew of the account picks (`0` = uniform; ~1 = heavy hotspot).
    pub zipf_theta: f64,
    /// Admission-control gate: at most this many transactions in flight;
    /// excess arrivals queue FIFO.
    pub max_inflight: usize,
    /// Pause before re-polling a lock held by someone else.
    pub lock_retry_us: u64,
    /// Give up on a transaction after this many doomed-and-retried
    /// attempts (it then counts as [`LoadOutcome::gave_up`]).
    pub max_txn_retries: u32,
    /// Base backoff before retrying a doomed transaction (doubles per
    /// attempt, capped at 64x).
    pub retry_backoff_us: u64,
    /// When true (the default), each transaction performs its three
    /// balance updates in a per-transaction random order. Real mixed
    /// workloads touch resources in inconsistent orders — this is what
    /// makes waits-for *cycles* (not just convoys) reachable.
    pub shuffle_steps: bool,
    /// Virtual-time interval of the telemetry sampler: every this many
    /// microseconds the engine closes an [`IntervalSample`] — throughput,
    /// latencies, the wait-ledger delta, and the busiest MEASURE entity of
    /// the interval. `0` (the default) disables sampling; enabling it
    /// perturbs no clock and no pre-existing counter, so a sampled run
    /// commits the identical transaction history.
    pub sample_every_us: u64,
    /// RNG seed; runs are exactly reproducible per seed.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            terminals: 8,
            duration_us: 200_000,
            mean_think_us: 5_000.0,
            zipf_theta: 0.8,
            max_inflight: 4,
            lock_retry_us: 300,
            max_txn_retries: 8,
            retry_backoff_us: 400,
            shuffle_steps: true,
            sample_every_us: 0,
            seed: 1,
        }
    }
}

/// One closed interval of the telemetry sampler: what the engine saw in
/// `[start_us, end_us)` of virtual time.
///
/// Because the virtual clock only moves through *attributed* advances, the
/// interval's wait-ledger delta decomposes its span exactly:
/// `wait_us` sums to `end_us - start_us` — every microsecond of the
/// interval is blamed on some category. The bottleneck report is therefore
/// not a sample or an estimate; it is the ledger itself, windowed.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSample {
    /// Interval start (virtual µs).
    pub start_us: u64,
    /// Interval end (virtual µs); `end_us - start_us` is the exact span.
    pub end_us: u64,
    /// Transactions that arrived during the interval.
    pub arrivals: u64,
    /// Transactions that committed during the interval.
    pub committed: u64,
    /// Transaction attempts aborted during the interval.
    pub aborted: u64,
    /// Latencies of the commits that landed in this interval, sorted.
    pub latencies_us: Vec<u64>,
    /// Wait-ledger delta over the interval, indexed by [`Wait::index`];
    /// sums to exactly `end_us - start_us`.
    pub wait_us: [u64; Wait::COUNT],
    /// The MEASURE entity with the largest summed counter delta over the
    /// interval (`kind/name`, e.g. `process/$DATA1`); empty when nothing
    /// moved.
    pub top_entity: String,
    /// That entity's summed counter delta.
    pub top_entity_delta: u64,
}

impl IntervalSample {
    /// Committed transactions per second of virtual time in this interval.
    pub fn tps(&self) -> f64 {
        let span = self.end_us.saturating_sub(self.start_us);
        if span == 0 {
            0.0
        } else {
            self.committed as f64 * 1_000_000.0 / span as f64
        }
    }

    /// Total attributed wait over the interval (equals the span exactly).
    pub fn wait_total_us(&self) -> u64 {
        self.wait_us.iter().sum()
    }

    /// The interval's bottleneck: the wait category with the largest
    /// ledger delta (ties break in ledger order).
    pub fn top_wait(&self) -> Wait {
        let mut best = WAIT_CATEGORIES[0];
        let mut best_us = self.wait_us[0];
        for w in WAIT_CATEGORIES {
            if self.wait_us[w.index()] > best_us {
                best = w;
                best_us = self.wait_us[w.index()];
            }
        }
        best
    }

    /// Latency percentile within the interval (`p` in `[0, 100]`; 0 when
    /// nothing committed).
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let last = self.latencies_us.len() - 1;
        let idx = ((p.clamp(0.0, 100.0) / 100.0) * last as f64).round() as usize;
        self.latencies_us[idx.min(last)]
    }
}

/// What one run observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadOutcome {
    /// Transactions that arrived during the run window.
    pub arrivals: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transaction attempts aborted (doomed victims; each may retry).
    pub aborted: u64,
    /// Automatic retries after a doom (deadlock victim or lock timeout).
    pub deadlock_retries: u64,
    /// Dooms whose reason was the lock-wait timeout.
    pub lock_timeouts: u64,
    /// Arrivals that had to queue at the admission gate.
    pub admission_queued: u64,
    /// Transactions abandoned after exhausting their retry budget.
    pub gave_up: u64,
    /// Attempts aborted by non-doom errors (fault-plane chaos).
    pub other_errors: u64,
    /// Per-commit latency (commit instant minus arrival instant), sorted.
    pub latencies_us: Vec<u64>,
    /// Total time committed transactions spent queued at the admission
    /// gate (grant instant minus arrival instant).
    pub admission_wait_us: u64,
    /// Net delta applied by committed transactions (conservation checks:
    /// final total balance must equal initial plus this).
    pub net_delta: f64,
    /// Virtual time the whole run took, including drain.
    pub elapsed_us: u64,
    /// Telemetry sampler output: one entry per closed interval, in time
    /// order (empty when [`LoadConfig::sample_every_us`] is 0). The last
    /// interval is the partial one that covers the drain tail.
    pub intervals: Vec<IntervalSample>,
}

impl LoadOutcome {
    /// Latency percentile in microseconds (`p` in `[0, 100]`); 0 when
    /// nothing committed.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let last = self.latencies_us.len() - 1;
        let idx = ((p.clamp(0.0, 100.0) / 100.0) * last as f64).round() as usize;
        self.latencies_us[idx.min(last)]
    }

    /// Committed transactions per second of virtual time.
    pub fn tps(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.committed as f64 * 1_000_000.0 / self.elapsed_us as f64
        }
    }

    /// Offered transactions per second (arrivals over the arrival window).
    pub fn offered_tps(&self, duration_us: u64) -> f64 {
        if duration_us == 0 {
            0.0
        } else {
            self.arrivals as f64 * 1_000_000.0 / duration_us as f64
        }
    }
}

/// One transaction's inputs and retry bookkeeping.
#[derive(Debug, Clone)]
struct Job {
    arrival: u64,
    admitted: u64,
    attempt: u32,
    aid: i32,
    tid: i32,
    bid: i32,
    delta: f64,
    /// Order of the three balance-update steps (the history insert is
    /// always last).
    order: [usize; 3],
}

enum TermState {
    /// Waiting for the next arrival at `t_next`.
    Think,
    /// Arrived, queued at the admission gate; a freed slot wakes us.
    Queued(Job),
    /// Executing `job` as transaction `txn`; `step` messages already sent.
    Run { job: Job, txn: TxnId, step: usize },
    /// Sleeping out a retry backoff; the admission slot is retained.
    Backoff(Job),
    /// Past the arrival window with nothing in flight.
    Done,
}

struct Terminal {
    rng: SimRng,
    t_next: u64,
    /// What the gap until `t_next` is: charged to the clock's ledger when
    /// this terminal's event is the one that advances the clock.
    reason: Wait,
    state: TermState,
}

/// The engine's shared mutable bookkeeping (admission gate + tallies),
/// separated from the terminal array so helpers can borrow both.
struct Engine {
    gate: VecDeque<usize>,
    inflight: usize,
    out: LoadOutcome,
}

/// The interval sampler: high-water marks of the run tallies plus the
/// previous boundary's wait-ledger and MEASURE snapshots, so each closed
/// interval is an exact delta. Inactive (and cost-free) when `every == 0`.
struct Sampler {
    every: u64,
    next_at: u64,
    start: u64,
    prev_wait: WaitProfile,
    prev_measure: MeasureSnapshot,
    prev_arrivals: u64,
    prev_committed: u64,
    prev_aborted: u64,
    prev_lat: usize,
}

impl Sampler {
    fn new(sim: &Sim, start: u64, every: u64) -> Sampler {
        Sampler {
            every,
            next_at: start.saturating_add(every.max(1)),
            start,
            prev_wait: sim.wait_profile(),
            prev_measure: sim.measure.snapshot(start),
            prev_arrivals: 0,
            prev_committed: 0,
            prev_aborted: 0,
            prev_lat: 0,
        }
    }

    /// Close the interval `[self.start, at)` into `out.intervals`. The
    /// caller has already advanced the clock exactly to `at`, so the
    /// ledger delta sums to `at - self.start` with no remainder.
    fn close(&mut self, sim: &Sim, out: &mut LoadOutcome, at: u64) {
        sim.measure
            .entity(EntityKind::Process, "SAMPLER")
            .bump(Ctr::SamplerIntervals);
        let wait_now = sim.wait_profile();
        let delta = wait_now - self.prev_wait;
        let mut wait_us = [0u64; Wait::COUNT];
        for (w, us) in delta.iter() {
            wait_us[w.index()] = us;
        }
        let measure_now = sim.measure.snapshot(at);
        let (top_entity, top_entity_delta) = busiest_entity(&self.prev_measure, &measure_now);
        let mut latencies_us = out.latencies_us[self.prev_lat..].to_vec();
        latencies_us.sort_unstable();
        out.intervals.push(IntervalSample {
            start_us: self.start,
            end_us: at,
            arrivals: out.arrivals - self.prev_arrivals,
            committed: out.committed - self.prev_committed,
            aborted: out.aborted - self.prev_aborted,
            latencies_us,
            wait_us,
            top_entity,
            top_entity_delta,
        });
        self.start = at;
        self.next_at = at.saturating_add(self.every.max(1));
        self.prev_wait = wait_now;
        self.prev_measure = measure_now;
        self.prev_arrivals = out.arrivals;
        self.prev_committed = out.committed;
        self.prev_aborted = out.aborted;
        self.prev_lat = out.latencies_us.len();
    }
}

/// The MEASURE entity whose counters moved the most between two snapshots,
/// as `(kind/name, summed delta)`. Ties break on `BTreeMap` iteration
/// order (entity kind, then name), so the answer is deterministic.
fn busiest_entity(before: &MeasureSnapshot, after: &MeasureSnapshot) -> (String, u64) {
    let mut best = (String::new(), 0u64);
    for ((kind, name), vals) in &after.entities {
        let zero = [0u64; Ctr::COUNT];
        let prev = before.entities.get(&(*kind, name.clone())).unwrap_or(&zero);
        let sum: u64 = vals
            .iter()
            .zip(prev.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .sum();
        if sum > best.1 {
            best = (format!("{}/{}", kind.tag(), name), sum);
        }
    }
    best
}

/// Run the multi-terminal engine against a loaded [`Bank`]. Deterministic
/// per `cfg.seed`: same seed, same cluster shape, same outcome.
pub fn run_load(db: &Cluster, bank: &Bank, cfg: &LoadConfig) -> LoadOutcome {
    assert!(cfg.terminals > 0, "need at least one terminal");
    assert!(cfg.max_inflight > 0, "admission gate needs capacity");
    let session = db.session();
    let fs = session.fs();
    let cpu = session.cpu();
    let sim = &db.sim;
    let rec = sim.measure.entity(EntityKind::Txn, TMF_ENTITY);
    let zipf = Zipf::new(bank.accounts as u64, cfg.zipf_theta);

    let start = sim.now();
    let cutoff = start + cfg.duration_us;
    let mut eng = Engine {
        gate: VecDeque::new(),
        inflight: 0,
        out: LoadOutcome::default(),
    };
    let mut sampler =
        (cfg.sample_every_us > 0).then(|| Sampler::new(sim, start, cfg.sample_every_us));

    let mut terminals: Vec<Terminal> = (0..cfg.terminals)
        .map(|i| {
            let mut rng =
                SimRng::seed_from(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let first = start + rng.exp_us(cfg.mean_think_us);
            Terminal {
                rng,
                t_next: first,
                reason: Wait::Other,
                state: if first > cutoff {
                    TermState::Done
                } else {
                    TermState::Think
                },
            }
        })
        .collect();

    loop {
        // Next event: the runnable terminal with the earliest local time
        // (ties break deterministically by terminal id). Queued and Done
        // terminals have no self-scheduled event of their own.
        let next = terminals
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.state, TermState::Done | TermState::Queued(_)))
            .min_by_key(|&(i, t)| (t.t_next, i))
            .map(|(i, _)| i);
        let Some(i) = next else { break };

        // Advance the shared clock to this event, charging any skipped
        // span to whatever this terminal was waiting on. Sampler boundaries
        // split the advance: the clock stops exactly on each boundary, so
        // every interval's ledger delta sums to its span with no remainder.
        let (t_next, reason) = (terminals[i].t_next, terminals[i].reason);
        if let Some(s) = sampler.as_mut() {
            while s.next_at <= t_next {
                // The clock may already sit past the boundary (handlers
                // advance it at message granularity); close at wherever it
                // actually is so the interval delta stays exact.
                let at = s.next_at.max(sim.now());
                sim.clock.advance_to_in(reason, at);
                s.close(sim, &mut eng.out, at);
            }
        }
        sim.clock.advance_to_in(reason, t_next);
        let now = sim.now();

        match std::mem::replace(&mut terminals[i].state, TermState::Done) {
            TermState::Think => {
                // An arrival. Draw the transaction, then face the gate.
                eng.out.arrivals += 1;
                let t = &mut terminals[i];
                let aid = zipf.draw(&mut t.rng) as i32;
                let tid = t.rng.below(bank.tellers as u64) as i32;
                let mut order = [0usize, 1, 2];
                if cfg.shuffle_steps {
                    t.rng.shuffle(&mut order);
                }
                let job = Job {
                    arrival: now,
                    admitted: now,
                    attempt: 0,
                    aid,
                    tid,
                    bid: tid / 10,
                    delta: t.rng.between(-500, 500) as f64,
                    order,
                };
                if eng.inflight < cfg.max_inflight {
                    eng.inflight += 1;
                    begin_run(db, &mut terminals[i], job, now);
                } else {
                    rec.bump(Ctr::AdmissionQueued);
                    eng.out.admission_queued += 1;
                    eng.gate.push_back(i);
                    terminals[i].state = TermState::Queued(job);
                    terminals[i].t_next = u64::MAX;
                }
            }
            TermState::Backoff(job) => {
                // Backoff expired: run the same transaction again under a
                // fresh TMF transaction (the slot was retained).
                begin_run(db, &mut terminals[i], job, now);
            }
            TermState::Run { job, txn, step } => {
                // One FS-DP message of this transaction, under a span on
                // this terminal's track for critical-path attribution.
                let span = sim.span_root("DEBITCREDIT STEP", &format!("terminal-{i}"));
                let actual = if step < job.order.len() {
                    job.order[step]
                } else {
                    DEBIT_CREDIT_STEPS - 1
                };
                let sent =
                    bank.debit_credit_step(fs, txn, actual, job.aid, job.tid, job.bid, job.delta);
                drop(span);
                match sent {
                    Ok(()) if step + 1 < DEBIT_CREDIT_STEPS => {
                        let t = &mut terminals[i];
                        t.state = TermState::Run {
                            job,
                            txn,
                            step: step + 1,
                        };
                        t.t_next = sim.now();
                        t.reason = Wait::Other;
                    }
                    Ok(()) => match db.txnmgr.commit(txn, cpu) {
                        Ok(()) => {
                            let done = sim.now();
                            eng.out.committed += 1;
                            eng.out.net_delta += job.delta;
                            eng.out.latencies_us.push(done.saturating_sub(job.arrival));
                            eng.out.admission_wait_us += job.admitted.saturating_sub(job.arrival);
                            release_slot(db, &mut terminals, &mut eng, done);
                            think_next(&mut terminals[i], done, cutoff, cfg);
                        }
                        Err(TxnError::Doomed(_)) => {
                            // Dooming flipped the commit into an abort.
                            eng.out.aborted += 1;
                            retry(
                                db,
                                &mut terminals,
                                i,
                                &mut eng,
                                &rec,
                                cfg,
                                cutoff,
                                job,
                                true,
                            );
                        }
                        Err(_) => {
                            let _ = db.txnmgr.abort(txn, cpu);
                            eng.out.other_errors += 1;
                            retry(
                                db,
                                &mut terminals,
                                i,
                                &mut eng,
                                &rec,
                                cfg,
                                cutoff,
                                job,
                                false,
                            );
                        }
                    },
                    Err(FsError::Doomed { reason }) => {
                        // Deadlock victim or lock-timeout straggler: abort
                        // (full UNDO via the audit trail) and retry.
                        let _ = db.txnmgr.abort(txn, cpu);
                        eng.out.aborted += 1;
                        if reason.contains("timeout") {
                            eng.out.lock_timeouts += 1;
                        }
                        retry(
                            db,
                            &mut terminals,
                            i,
                            &mut eng,
                            &rec,
                            cfg,
                            cutoff,
                            job,
                            true,
                        );
                    }
                    Err(FsError::Dp(DpError::Locked { .. })) => {
                        // Queued behind the holder at the Disk Process:
                        // re-poll shortly; FIFO order is kept over there.
                        let t = &mut terminals[i];
                        t.state = TermState::Run { job, txn, step };
                        t.t_next = sim.now() + cfg.lock_retry_us;
                        t.reason = Wait::Lock;
                    }
                    Err(_) => {
                        // Chaos-plane casualty (unavailable server, bus
                        // fault...): abort cleanly and retry like a doom,
                        // but tallied separately.
                        let _ = db.txnmgr.abort(txn, cpu);
                        eng.out.other_errors += 1;
                        retry(
                            db,
                            &mut terminals,
                            i,
                            &mut eng,
                            &rec,
                            cfg,
                            cutoff,
                            job,
                            false,
                        );
                    }
                }
            }
            TermState::Queued(_) | TermState::Done => {
                debug_assert!(false, "queued/done terminals are never scheduled");
            }
        }
    }
    debug_assert!(eng.gate.is_empty(), "admission queue drained");
    debug_assert_eq!(eng.inflight, 0, "all slots released");

    // Close the partial interval covering the drain tail, so the series
    // decomposes the whole run: interval spans sum to elapsed_us.
    if let Some(s) = sampler.as_mut() {
        let now = sim.now();
        if now > s.start {
            s.close(sim, &mut eng.out, now);
        }
    }

    let mut out = eng.out;
    out.elapsed_us = sim.now().saturating_sub(start);
    out.latencies_us.sort_unstable();
    out
}

/// Begin a fresh TMF transaction for `job` and schedule its first message
/// immediately.
fn begin_run(db: &Cluster, t: &mut Terminal, job: Job, now: u64) {
    let txn = db.txnmgr.begin();
    t.state = TermState::Run { job, txn, step: 0 };
    t.t_next = now;
    t.reason = Wait::Other;
}

/// Free one admission slot and, when someone is queued, hand it straight
/// to the head of the FIFO (its admission wait ends now).
fn release_slot(db: &Cluster, terminals: &mut [Terminal], eng: &mut Engine, now: u64) {
    eng.inflight -= 1;
    if let Some(j) = eng.gate.pop_front() {
        let prev = std::mem::replace(&mut terminals[j].state, TermState::Done);
        let TermState::Queued(mut job) = prev else {
            debug_assert!(false, "gate entries are always Queued");
            return;
        };
        job.admitted = now;
        eng.inflight += 1;
        begin_run(db, &mut terminals[j], job, now);
        // The grant happens at a completion instant, so this charge is
        // normally zero — nonzero only when the gate itself is the
        // critical path.
        terminals[j].reason = Wait::Admission;
    }
}

/// Schedule the terminal's next arrival from `now`, or finish it past the
/// cutoff.
fn think_next(t: &mut Terminal, now: u64, cutoff: u64, cfg: &LoadConfig) {
    let at = now.saturating_add(t.rng.exp_us(cfg.mean_think_us));
    if at > cutoff {
        t.state = TermState::Done;
        t.t_next = u64::MAX;
    } else {
        t.state = TermState::Think;
        t.t_next = at;
        t.reason = Wait::Other;
    }
}

/// Put a doomed/errored transaction on the retry path: exponential backoff
/// while keeping the admission slot, or give up past the retry budget
/// (which frees the slot for the queue).
#[allow(clippy::too_many_arguments)]
fn retry(
    db: &Cluster,
    terminals: &mut [Terminal],
    i: usize,
    eng: &mut Engine,
    rec: &std::sync::Arc<nsql_sim::MeasureRecord>,
    cfg: &LoadConfig,
    cutoff: u64,
    mut job: Job,
    doomed: bool,
) {
    let now = db.sim.now();
    job.attempt += 1;
    if job.attempt > cfg.max_txn_retries {
        eng.out.gave_up += 1;
        release_slot(db, terminals, eng, now);
        think_next(&mut terminals[i], now, cutoff, cfg);
        return;
    }
    if doomed {
        rec.bump(Ctr::DeadlockRetries);
        eng.out.deadlock_retries += 1;
    }
    let shift = (job.attempt - 1).min(6);
    let backoff = cfg.retry_backoff_us.saturating_mul(1u64 << shift).max(1);
    let t = &mut terminals[i];
    t.t_next = now + backoff;
    t.reason = Wait::Retry;
    t.state = TermState::Backoff(job);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_core::ClusterBuilder;

    fn hot_db() -> (Cluster, Bank) {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let bank = Bank::create(&db, 1, 40, "$DATA1").expect("bank load");
        (db, bank)
    }

    fn contended_cfg(seed: u64) -> LoadConfig {
        LoadConfig {
            terminals: 10,
            duration_us: 150_000,
            mean_think_us: 1_200.0,
            zipf_theta: 1.0,
            max_inflight: 6,
            seed,
            ..LoadConfig::default()
        }
    }

    #[test]
    fn contended_run_commits_conserves_money_and_resolves_deadlocks() {
        let (db, bank) = hot_db();
        let initial = bank.total_balance(&db).expect("initial balance");
        let out = run_load(&db, &bank, &contended_cfg(7));
        assert!(out.committed > 10, "outcome {out:?}");
        assert_eq!(out.gave_up, 0, "retry budget never exhausted");
        assert_eq!(out.other_errors, 0, "no chaos in a clean run");
        // Exact conservation: aborted attempts rolled back fully.
        let total = bank.total_balance(&db).expect("final balance");
        assert!(
            (total - (initial + out.net_delta)).abs() < 1e-6,
            "conservation: {total} vs {} + {}",
            initial,
            out.net_delta
        );
        // The hotspot makes real contention: some attempt aborted on a
        // deadlock and was retried to success.
        assert!(out.aborted > 0, "expected doomed attempts under skew");
        assert_eq!(out.deadlock_retries, out.aborted);
        assert_eq!(out.latencies_us.len() as u64, out.committed);
        assert!(out.percentile_us(99.0) >= out.percentile_us(50.0));
    }

    #[test]
    fn same_seed_same_outcome() {
        let (db1, bank1) = hot_db();
        let (db2, bank2) = hot_db();
        let a = run_load(&db1, &bank1, &contended_cfg(11));
        let b = run_load(&db2, &bank2, &contended_cfg(11));
        assert_eq!(a, b, "virtual-clock runs are exactly reproducible");
        let c = run_load(&db1, &bank1, &contended_cfg(12));
        assert_ne!(a.latencies_us, c.latencies_us, "seeds matter");
    }

    #[test]
    fn admission_gate_queues_overload_and_everyone_still_finishes() {
        let (db, bank) = hot_db();
        let cfg = LoadConfig {
            terminals: 12,
            duration_us: 120_000,
            mean_think_us: 600.0, // far beyond saturation
            max_inflight: 2,      // tiny gate
            zipf_theta: 0.5,
            seed: 3,
            ..LoadConfig::default()
        };
        let out = run_load(&db, &bank, &cfg);
        assert!(out.admission_queued > 0, "overload must queue");
        assert!(out.admission_wait_us > 0, "queued txns waited measurably");
        assert_eq!(
            out.arrivals,
            out.committed + out.gave_up,
            "every arrival either committed or exhausted its retries"
        );
        // The gate capped concurrency, so the lock table stayed sane and
        // the run drained completely; conservation still holds.
        let total = bank.total_balance(&db).expect("final balance");
        assert!((total - (40.0 * 1000.0 + out.net_delta)).abs() < 1e-6);
    }

    #[test]
    fn sampler_intervals_decompose_the_run_exactly_and_perturb_nothing() {
        let (db1, bank1) = hot_db();
        let (db2, bank2) = hot_db();
        let plain = run_load(&db1, &bank1, &contended_cfg(21));
        let mut cfg = contended_cfg(21);
        cfg.sample_every_us = 20_000;
        let sampled = run_load(&db2, &bank2, &cfg);
        // Sampling is a pure observer: the committed history is identical.
        assert_eq!(plain.committed, sampled.committed);
        assert_eq!(plain.latencies_us, sampled.latencies_us);
        assert_eq!(plain.elapsed_us, sampled.elapsed_us);
        assert!(
            sampled.intervals.len() >= 3,
            "{:?}",
            sampled.intervals.len()
        );

        // Intervals tile the run with no gaps, and each one's wait-ledger
        // delta decomposes its span *exactly* — the bottleneck report is
        // the attributed clock itself, windowed.
        let run_start = sampled.intervals[0].start_us;
        let mut expect_start = run_start;
        let (mut arrivals, mut committed, mut aborted) = (0, 0, 0);
        let mut lats = Vec::new();
        for iv in &sampled.intervals {
            assert_eq!(iv.start_us, expect_start, "no gap between intervals");
            assert!(iv.end_us > iv.start_us);
            assert_eq!(
                iv.wait_total_us(),
                iv.end_us - iv.start_us,
                "ledger covers the interval exactly"
            );
            assert_eq!(
                iv.wait_us[iv.top_wait().index()],
                *iv.wait_us.iter().max().unwrap()
            );
            arrivals += iv.arrivals;
            committed += iv.committed;
            aborted += iv.aborted;
            lats.extend(iv.latencies_us.iter().copied());
            expect_start = iv.end_us;
        }
        assert_eq!(expect_start - run_start, sampled.elapsed_us);
        assert_eq!(arrivals, sampled.arrivals);
        assert_eq!(committed, sampled.committed);
        assert_eq!(aborted, sampled.aborted);
        lats.sort_unstable();
        assert_eq!(
            lats, sampled.latencies_us,
            "per-interval latencies partition the run's"
        );
        // Under this hotspot some interval is bottlenecked on something
        // other than pure CPU, and some entity did measurable work.
        assert!(sampled.intervals.iter().all(|iv| !iv.top_entity.is_empty()));
    }

    #[test]
    fn lock_wait_timeout_dooms_stragglers_when_armed() {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        // Arm a short lock-wait timeout on every volume.
        db.set_lock_wait_timeout(2_000);
        let bank = Bank::create(&db, 1, 10, "$DATA1").expect("bank load");
        let cfg = LoadConfig {
            terminals: 10,
            duration_us: 120_000,
            mean_think_us: 800.0,
            zipf_theta: 1.2, // brutal hotspot -> convoys
            max_inflight: 8,
            seed: 5,
            ..LoadConfig::default()
        };
        let out = run_load(&db, &bank, &cfg);
        assert!(out.committed > 0);
        assert!(
            out.lock_timeouts > 0,
            "convoy stragglers should time out: {out:?}"
        );
        let total = bank.total_balance(&db).expect("final balance");
        assert!((total - (10.0 * 1000.0 + out.net_delta)).abs() < 1e-6);
    }
}
