#![warn(missing_docs)]
//! Workload generators for the paper's evaluation.
//!
//! * [`wisconsin`] — the classic Wisconsin benchmark relation and its
//!   selection/projection queries, which the paper cites for the VSBB
//!   speed-ups ("VSBB gives NonStop SQL an additional factor of three over
//!   RSBB on many of the Wisconsin benchmark queries").
//! * [`bank`] — a DebitCredit/ET1-style banking workload (branch, teller,
//!   account, history), standing in for the \[Benchmark\] workbook's OLTP
//!   load, with both a NonStop SQL implementation and an ENSCRIBE
//!   record-at-a-time implementation of the same transaction.
//! * [`load`] — an open-loop multi-terminal engine that interleaves many
//!   concurrent debit-credit transactions at FS-DP message granularity,
//!   with Poisson arrivals, Zipf-skewed hotspots, an admission-control
//!   gate, and automatic retry of doomed (deadlock-victim / lock-timeout)
//!   transactions.

pub mod bank;
pub mod load;
pub mod wisconsin;

pub use bank::{Bank, DEBIT_CREDIT_STEPS};
pub use load::{run_load, IntervalSample, LoadConfig, LoadOutcome};
pub use wisconsin::Wisconsin;
