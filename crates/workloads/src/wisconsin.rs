//! The Wisconsin benchmark relation and query suite (1983 form).
//!
//! The relation has thirteen integer attributes and three 52-character
//! strings (~208-byte records, a blocking factor of ~18 in 4 KB blocks).
//! `UNIQUE2` is the sequential primary key (clustered); `UNIQUE1` is a
//! random permutation (non-clustered selections / secondary index).

use nsql_core::{Cluster, DbError, Session};
use nsql_fs::BlockedInserter;
use nsql_records::Value;
use nsql_sim::SimRng;

/// A loaded Wisconsin table.
pub struct Wisconsin {
    /// Table name.
    pub name: String,
    /// Row count.
    pub rows: u32,
}

impl Wisconsin {
    /// CREATE the table (optionally partitioned over `volumes`) and load
    /// `rows` tuples deterministically from `seed`. Loading uses the
    /// blocked-insert interface so setup does not distort experiment
    /// metrics.
    pub fn create(
        db: &Cluster,
        name: &str,
        rows: u32,
        volumes: &[&str],
        seed: u64,
    ) -> Result<Wisconsin, DbError> {
        let mut session = db.session();
        let partition = match volumes.len() {
            0 | 1 => volumes
                .first()
                .map(|v| format!("ON '{v}'"))
                .unwrap_or_default(),
            n => {
                let step = rows / n as u32;
                let splits: Vec<String> = (1..n).map(|i| (i as u32 * step).to_string()).collect();
                let vols: Vec<String> = volumes.iter().map(|v| format!("'{v}'")).collect();
                format!(
                    "PARTITION BY VALUES ({}) ON ({})",
                    splits.join(", "),
                    vols.join(", ")
                )
            }
        };
        session.execute(&format!(
            "CREATE TABLE {name} (\
             UNIQUE2 INT NOT NULL, UNIQUE1 INT NOT NULL, \
             TWO INT NOT NULL, FOUR INT NOT NULL, TEN INT NOT NULL, \
             TWENTY INT NOT NULL, HUNDRED INT NOT NULL, THOUSAND INT NOT NULL, \
             TWOTHOUS INT NOT NULL, FIVETHOUS INT NOT NULL, TENTHOUS INT NOT NULL, \
             ODD100 INT NOT NULL, EVEN100 INT NOT NULL, \
             STRINGU1 CHAR(52) NOT NULL, STRINGU2 CHAR(52) NOT NULL, \
             STRING4 CHAR(52) NOT NULL, \
             PRIMARY KEY (UNIQUE2)) {partition}"
        ))?;

        // Random permutation for UNIQUE1.
        let mut rng = SimRng::seed_from(seed);
        let mut unique1: Vec<u32> = (0..rows).collect();
        rng.shuffle(&mut unique1);

        let info = db.catalog.table(name).map_err(|e| DbError(e.to_string()))?;
        let txn = db.txnmgr.begin();
        {
            let fs = session.fs();
            let mut inserter = BlockedInserter::new(fs, &info.open, txn);
            for u2 in 0..rows {
                inserter
                    .push(&Self::row(u2, unique1[u2 as usize], rows))
                    .map_err(|e| DbError(e.to_string()))?;
            }
            inserter.flush().map_err(|e| DbError(e.to_string()))?;
        }
        db.txnmgr
            .commit(txn, session.cpu())
            .map_err(|e| DbError(e.to_string()))?;
        db.catalog.bump_rows(name, rows as i64);
        Ok(Wisconsin {
            name: name.to_string(),
            rows,
        })
    }

    /// One tuple, per the benchmark's attribute definitions.
    pub fn row(unique2: u32, unique1: u32, _rows: u32) -> Vec<Value> {
        let u1 = unique1 as i32;
        let u2 = unique2 as i32;
        vec![
            Value::Int(u2),
            Value::Int(u1),
            Value::Int(u1 % 2),
            Value::Int(u1 % 4),
            Value::Int(u1 % 10),
            Value::Int(u1 % 20),
            Value::Int(u1 % 100),
            Value::Int(u1 % 1000),
            Value::Int(u1 % 2000),
            Value::Int(u1 % 5000),
            Value::Int(u1 % 10000),
            Value::Int((u1 % 100) * 2 + 1),
            Value::Int((u1 % 100) * 2),
            Value::Str(wisc_string(unique1)),
            Value::Str(wisc_string(unique2)),
            Value::Str(wisc_string(unique1 % 4)),
        ]
    }

    /// The standard 1% clustered selection on the primary key.
    pub fn q_select_1pct_clustered(&self) -> String {
        let hi = self.rows / 100;
        format!(
            "SELECT * FROM {} WHERE UNIQUE2 BETWEEN 0 AND {}",
            self.name,
            hi.saturating_sub(1)
        )
    }

    /// 10% clustered selection.
    pub fn q_select_10pct_clustered(&self) -> String {
        let hi = self.rows / 10;
        format!(
            "SELECT * FROM {} WHERE UNIQUE2 BETWEEN 0 AND {}",
            self.name,
            hi.saturating_sub(1)
        )
    }

    /// 1% non-clustered selection (scan + predicate, or a secondary index
    /// when one exists on UNIQUE1).
    pub fn q_select_1pct_nonclustered(&self) -> String {
        let hi = self.rows / 100;
        format!(
            "SELECT * FROM {} WHERE UNIQUE1 BETWEEN 0 AND {}",
            self.name,
            hi.saturating_sub(1)
        )
    }

    /// The projection query: two columns of the 1% subset (heavily reduced
    /// reply volume — VSBB's best case).
    pub fn q_project_1pct(&self) -> String {
        let hi = self.rows / 100;
        format!(
            "SELECT UNIQUE2, UNIQUE1 FROM {} WHERE UNIQUE1 BETWEEN 0 AND {}",
            self.name,
            hi.saturating_sub(1)
        )
    }

    /// Whole-relation scan (`SELECT *` — travels via RSBB).
    pub fn q_scan_all(&self) -> String {
        format!("SELECT * FROM {}", self.name)
    }

    /// Aggregate: MIN of a column grouped by a 1% attribute.
    pub fn q_agg_min_grouped(&self) -> String {
        format!(
            "SELECT HUNDRED, MIN(THOUSAND) AS M FROM {} GROUP BY HUNDRED",
            self.name
        )
    }

    /// Set-oriented update: raise a 1% slice.
    pub fn q_update_1pct(&self) -> String {
        let hi = self.rows / 100;
        format!(
            "UPDATE {} SET THOUSAND = THOUSAND + 1 WHERE UNIQUE2 BETWEEN 0 AND {}",
            self.name,
            hi.saturating_sub(1)
        )
    }

    /// The two-relation join: every row of the 1% subset of this table
    /// joined to `other` on UNIQUE2 (the benchmark's joinAselB shape).
    pub fn q_join_1pct(&self, other: &Wisconsin) -> String {
        let hi = self.rows / 100;
        format!(
            "SELECT A.UNIQUE2, B.UNIQUE1 FROM {} A, {} B \
             WHERE A.UNIQUE2 = B.UNIQUE2 AND A.UNIQUE2 < {hi}",
            self.name, other.name
        )
    }

    /// Run a query in a fresh session and return the row count.
    pub fn run_count(&self, db: &Cluster, sql: &str) -> Result<usize, DbError> {
        let mut s: Session = db.session();
        Ok(s.query(sql)?.rows.len())
    }
}

/// The benchmark's cyclic string attribute: `$xxxxxxx` patterns of 52
/// characters derived from a number. (We use a simpler derivation with the
/// same length and cardinality behaviour.)
pub fn wisc_string(n: u32) -> String {
    let mut s = String::with_capacity(52);
    let letters = [b'A', b'B', b'C', b'D', b'E', b'F', b'G', b'H', b'I', b'J'];
    let digits = format!("{n:08}");
    for d in digits.bytes() {
        s.push(letters[(d - b'0') as usize] as char);
    }
    while s.len() < 52 {
        s.push('X');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_core::ClusterBuilder;

    fn db() -> Cluster {
        ClusterBuilder::new()
            .volume("$DATA1", 0, 1)
            .volume("$DATA2", 0, 2)
            .build()
    }

    #[test]
    fn load_and_counts() {
        let db = db();
        let w = Wisconsin::create(&db, "WISC", 1000, &["$DATA1"], 42).unwrap();
        let mut s = db.session();
        let r = s.query("SELECT COUNT(*) FROM WISC").unwrap();
        assert_eq!(r.rows[0].0[0], Value::LargeInt(1000));
        // UNIQUE1 is a permutation: every value 0..1000 appears once.
        let r = s
            .query("SELECT COUNT(*) FROM WISC WHERE UNIQUE1 < 100")
            .unwrap();
        assert_eq!(r.rows[0].0[0], Value::LargeInt(100));
        assert_eq!(w.rows, 1000);
    }

    #[test]
    fn one_percent_selections_select_one_percent() {
        let db = db();
        let w = Wisconsin::create(&db, "WISC", 1000, &["$DATA1", "$DATA2"], 7).unwrap();
        assert_eq!(w.run_count(&db, &w.q_select_1pct_clustered()).unwrap(), 10);
        assert_eq!(
            w.run_count(&db, &w.q_select_1pct_nonclustered()).unwrap(),
            10
        );
        assert_eq!(
            w.run_count(&db, &w.q_select_10pct_clustered()).unwrap(),
            100
        );
        assert_eq!(w.run_count(&db, &w.q_project_1pct()).unwrap(), 10);
        assert_eq!(w.run_count(&db, &w.q_scan_all()).unwrap(), 1000);
    }

    #[test]
    fn attribute_modulos_hold() {
        let row = Wisconsin::row(5, 123, 1000);
        assert_eq!(row[0], Value::Int(5));
        assert_eq!(row[1], Value::Int(123));
        assert_eq!(row[2], Value::Int(1)); // 123 % 2
        assert_eq!(row[4], Value::Int(3)); // 123 % 10
        assert_eq!(row[6], Value::Int(23)); // 123 % 100
        let Value::Str(s) = &row[13] else { panic!() };
        assert_eq!(s.len(), 52);
    }

    #[test]
    fn deterministic_loads() {
        let a = {
            let db = db();
            Wisconsin::create(&db, "W", 200, &["$DATA1"], 99).unwrap();
            let mut s = db.session();
            s.query("SELECT UNIQUE1 FROM W WHERE UNIQUE2 = 100")
                .unwrap()
                .rows[0]
                .0[0]
                .clone()
        };
        let b = {
            let db = db();
            Wisconsin::create(&db, "W", 200, &["$DATA1"], 99).unwrap();
            let mut s = db.session();
            s.query("SELECT UNIQUE1 FROM W WHERE UNIQUE2 = 100")
                .unwrap()
                .rows[0]
                .0[0]
                .clone()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn update_query_touches_one_percent() {
        let db = db();
        let w = Wisconsin::create(&db, "WISC", 500, &["$DATA1"], 3).unwrap();
        let mut s = db.session();
        let n = s.execute(&w.q_update_1pct()).unwrap().count();
        assert_eq!(n, 5);
    }
}
#[cfg(test)]
mod join_tests {
    use super::*;
    use nsql_core::ClusterBuilder;

    #[test]
    fn join_query_matches() {
        let db = ClusterBuilder::new()
            .volume("$DATA1", 0, 1)
            .volume("$DATA2", 0, 2)
            .build();
        let a = Wisconsin::create(&db, "WA", 500, &["$DATA1"], 1).unwrap();
        let b = Wisconsin::create(&db, "WB", 500, &["$DATA2"], 2).unwrap();
        let mut s = db.session();
        let r = s.query(&a.q_join_1pct(&b)).unwrap();
        assert_eq!(r.rows.len(), 5, "1% of 500 joined 1:1 on the key");
    }
}
