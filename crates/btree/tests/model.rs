//! Property-based model checking: the disk-block B-tree must behave
//! exactly like `std::collections::BTreeMap` under arbitrary operation
//! sequences, while maintaining its structural invariants.

use nsql_btree::{BTreeFile, MemStore, ScanControl, TreeError};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u8),
    Update(u16, u8),
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    ScanFrom(u16, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Update(k % 512, v)),
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Delete(k % 512)),
        any::<u16>().prop_map(|k| Op::Get(k % 512)),
        (any::<u16>(), 1u8..32).prop_map(|(k, n)| Op::ScanFrom(k % 512, n)),
    ]
}

fn key(k: u16) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

fn val(v: u8) -> Vec<u8> {
    // Variable-length values stress the size-based split logic.
    vec![v; 1 + (v as usize % 40)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_equals_model(ops in proptest::collection::vec(arb_op(), 1..400)) {
        // A small block size forces multi-level trees, splits and merges.
        let store = MemStore::with_block_size(256);
        let root = BTreeFile::create(&store);
        let tree = BTreeFile::open(&store, root);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    let (k, v) = (key(*k), val(*v));
                    let expected = if model.contains_key(&k) {
                        Err(TreeError::DuplicateKey)
                    } else {
                        model.insert(k.clone(), v.clone());
                        Ok(())
                    };
                    prop_assert_eq!(tree.insert(&k, &v), expected);
                }
                Op::Update(k, v) => {
                    let (k, v) = (key(*k), val(*v));
                    let expected = if model.contains_key(&k) {
                        model.insert(k.clone(), v.clone());
                        Ok(())
                    } else {
                        Err(TreeError::NotFound)
                    };
                    prop_assert_eq!(tree.update(&k, &v), expected);
                }
                Op::Put(k, v) => {
                    let (k, v) = (key(*k), val(*v));
                    model.insert(k.clone(), v.clone());
                    prop_assert_eq!(tree.put(&k, &v), Ok(()));
                }
                Op::Delete(k) => {
                    let k = key(*k);
                    match model.remove(&k) {
                        Some(old) => prop_assert_eq!(tree.delete(&k), Ok(old)),
                        None => prop_assert_eq!(tree.delete(&k), Err(TreeError::NotFound)),
                    }
                }
                Op::Get(k) => {
                    let k = key(*k);
                    prop_assert_eq!(tree.get(&k), model.get(&k).cloned());
                }
                Op::ScanFrom(k, n) => {
                    let k = key(*k);
                    let mut got = Vec::new();
                    tree.scan(Bound::Included(&k), |key, value| {
                        got.push((key.to_vec(), value.to_vec()));
                        if got.len() >= *n as usize {
                            ScanControl::Stop
                        } else {
                            ScanControl::Continue
                        }
                    });
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(k..)
                        .take(*n as usize)
                        .map(|(a, b)| (a.clone(), b.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }

        // Full structural validation and final equality.
        tree.validate();
        let got = tree.entries();
        let want: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Blocks freed by deletes are reusable: a grow/shrink cycle must not
    /// leak more than the tree's final height in blocks.
    #[test]
    fn space_is_reclaimed(n in 50u16..300) {
        let store = MemStore::with_block_size(256);
        let root = BTreeFile::create(&store);
        let tree = BTreeFile::open(&store, root);
        for i in 0..n {
            tree.insert(&key(i), &val((i % 250) as u8)).unwrap();
        }
        for i in 0..n {
            tree.delete(&key(i)).unwrap();
        }
        tree.validate();
        prop_assert!(store.live_blocks() <= 4, "{} live blocks after emptying", store.live_blocks());
    }
}
