//! Randomised model checking: the disk-block B-tree must behave exactly
//! like `std::collections::BTreeMap` under arbitrary operation sequences,
//! while maintaining its structural invariants. Operation sequences are
//! drawn from a seeded RNG so every run is reproducible.

use nsql_btree::{BTreeFile, MemStore, ScanControl, TreeError};
use nsql_sim::SimRng;
use std::collections::BTreeMap;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u8),
    Update(u16, u8),
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    ScanFrom(u16, u8),
}

fn draw_op(rng: &mut SimRng) -> Op {
    let k = rng.below(512) as u16;
    let v = rng.below(256) as u8;
    match rng.below(6) {
        0 => Op::Insert(k, v),
        1 => Op::Update(k, v),
        2 => Op::Put(k, v),
        3 => Op::Delete(k),
        4 => Op::Get(k),
        _ => Op::ScanFrom(k, 1 + rng.below(31) as u8),
    }
}

fn key(k: u16) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

fn val(v: u8) -> Vec<u8> {
    // Variable-length values stress the size-based split logic.
    vec![v; 1 + (v as usize % 40)]
}

#[test]
fn btree_equals_model() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from(0xB7EE + case);
        let nops = 1 + rng.below(400) as usize;
        // A small block size forces multi-level trees, splits and merges.
        let store = MemStore::with_block_size(256);
        let root = BTreeFile::create(&store);
        let tree = BTreeFile::open(&store, root);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for _ in 0..nops {
            match draw_op(&mut rng) {
                Op::Insert(k, v) => {
                    let (k, v) = (key(k), val(v));
                    let expected = if model.contains_key(&k) {
                        Err(TreeError::DuplicateKey)
                    } else {
                        model.insert(k.clone(), v.clone());
                        Ok(())
                    };
                    assert_eq!(tree.insert(&k, &v), expected);
                }
                Op::Update(k, v) => {
                    let (k, v) = (key(k), val(v));
                    let expected = if model.contains_key(&k) {
                        model.insert(k.clone(), v.clone());
                        Ok(())
                    } else {
                        Err(TreeError::NotFound)
                    };
                    assert_eq!(tree.update(&k, &v), expected);
                }
                Op::Put(k, v) => {
                    let (k, v) = (key(k), val(v));
                    model.insert(k.clone(), v.clone());
                    assert_eq!(tree.put(&k, &v), Ok(()));
                }
                Op::Delete(k) => {
                    let k = key(k);
                    match model.remove(&k) {
                        Some(old) => assert_eq!(tree.delete(&k), Ok(old)),
                        None => assert_eq!(tree.delete(&k), Err(TreeError::NotFound)),
                    }
                }
                Op::Get(k) => {
                    let k = key(k);
                    assert_eq!(tree.get(&k), model.get(&k).cloned());
                }
                Op::ScanFrom(k, n) => {
                    let k = key(k);
                    let mut got = Vec::new();
                    tree.scan(Bound::Included(&k), |key, value| {
                        got.push((key.to_vec(), value.to_vec()));
                        if got.len() >= n as usize {
                            ScanControl::Stop
                        } else {
                            ScanControl::Continue
                        }
                    });
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(k..)
                        .take(n as usize)
                        .map(|(a, b)| (a.clone(), b.clone()))
                        .collect();
                    assert_eq!(got, want);
                }
            }
        }

        // Full structural validation and final equality.
        tree.validate();
        let got = tree.entries();
        let want: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
        assert_eq!(got, want);
    }
}

/// Blocks freed by deletes are reusable: a grow/shrink cycle must not leak
/// more than the tree's final height in blocks.
#[test]
fn space_is_reclaimed() {
    for case in 0..16u64 {
        let mut rng = SimRng::seed_from(0x5ACE + case);
        let n = 50 + rng.below(250) as u16;
        let store = MemStore::with_block_size(256);
        let root = BTreeFile::create(&store);
        let tree = BTreeFile::open(&store, root);
        for i in 0..n {
            tree.insert(&key(i), &val((i % 250) as u8)).unwrap();
        }
        for i in 0..n {
            tree.delete(&key(i)).unwrap();
        }
        tree.validate();
        assert!(
            store.live_blocks() <= 4,
            "{} live blocks after emptying",
            store.live_blocks()
        );
    }
}
