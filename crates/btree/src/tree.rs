//! Key-sequenced files: a disk-block B-tree.
//!
//! Keys are order-preserving encoded byte strings (see `nsql-records`);
//! values are encoded records. The root block number is stable for the
//! file's lifetime (it is recorded in the volume's file label): root splits
//! copy the old root aside, root collapses copy the last child back in.
//!
//! Range scans walk the leaf chain through [`BlockStore::read_for_scan`],
//! which is where the Disk Process's bulk-I/O and pre-fetch policies attach.

use crate::node::Node;
use crate::{BlockNo, BlockStore};
use std::ops::Bound;

/// Errors from key-sequenced file operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeError {
    /// Insert of an existing key.
    DuplicateKey,
    /// Update/delete of a missing key.
    NotFound,
    /// Key+record too large for the block format.
    EntryTooLarge,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::DuplicateKey => write!(f, "duplicate key"),
            TreeError::NotFound => write!(f, "record not found"),
            TreeError::EntryTooLarge => write!(f, "entry too large for block"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Scan continuation decision from the visitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanControl {
    /// Keep scanning.
    Continue,
    /// Stop (limits reached, end of range, ...).
    Stop,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum WriteMode {
    Insert,
    Update,
    Put,
}

/// A key-sequenced file rooted at a fixed block.
pub struct BTreeFile<'a, S: BlockStore> {
    store: &'a S,
    root: BlockNo,
}

impl<'a, S: BlockStore> BTreeFile<'a, S> {
    /// Create a new empty file; returns its root block number.
    pub fn create(store: &'a S) -> BlockNo {
        let root = store.alloc();
        store.write(root, Node::empty_leaf().encode());
        root
    }

    /// Open an existing file by root block.
    pub fn open(store: &'a S, root: BlockNo) -> Self {
        BTreeFile { store, root }
    }

    /// The root block number.
    pub fn root(&self) -> BlockNo {
        self.root
    }

    fn cap(&self) -> usize {
        self.store.block_size()
    }

    fn load(&self, block: BlockNo) -> Node {
        Node::decode(&self.store.read(block))
    }

    fn save(&self, block: BlockNo, node: &Node) {
        self.store.write(block, node.encode());
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut block = self.root;
        loop {
            match self.load(block) {
                Node::Internal { seps, children } => {
                    let ci = seps.partition_point(|s| s.as_slice() <= key);
                    block = children[ci];
                }
                Node::Leaf { entries, .. } => {
                    return entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1.clone());
                }
            }
        }
    }

    /// Insert a new record; errors on duplicate key.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), TreeError> {
        self.write_entry(key, value, WriteMode::Insert)
    }

    /// Replace an existing record; errors when missing.
    pub fn update(&self, key: &[u8], value: &[u8]) -> Result<(), TreeError> {
        self.write_entry(key, value, WriteMode::Update)
    }

    /// Insert-or-replace (idempotent redo).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), TreeError> {
        self.write_entry(key, value, WriteMode::Put)
    }

    fn write_entry(&self, key: &[u8], value: &[u8], mode: WriteMode) -> Result<(), TreeError> {
        // Each entry must fit in half a block so splits always succeed, and
        // separator keys must fit comfortably in internal nodes.
        if 4 + key.len() + value.len() > (self.cap() - 7) / 2
            || 6 + key.len() > (self.cap() - 7) / 2
        {
            return Err(TreeError::EntryTooLarge);
        }
        if let Some((sep, right)) = self.write_rec(self.root, key, value, mode)? {
            // Root split: move the (already updated) root contents aside,
            // then make the root an internal node over the two halves.
            let left = self.store.alloc();
            self.store.write(left, self.store.read(self.root));
            // Fix: if the old root was a leaf, the leaf that pointed at it
            // is none (root was leftmost); nothing else referenced the root
            // as a leaf, so the copy is safe.
            let new_root = Node::Internal {
                seps: vec![sep],
                children: vec![left, right],
            };
            self.save(self.root, &new_root);
        }
        Ok(())
    }

    fn write_rec(
        &self,
        block: BlockNo,
        key: &[u8],
        value: &[u8],
        mode: WriteMode,
    ) -> Result<Option<(Vec<u8>, BlockNo)>, TreeError> {
        let mut node = self.load(block);
        if matches!(node, Node::Leaf { .. }) {
            {
                let Node::Leaf { entries, .. } = &mut node else {
                    unreachable!()
                };
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        if mode == WriteMode::Insert {
                            return Err(TreeError::DuplicateKey);
                        }
                        entries[i].1 = value.to_vec();
                    }
                    Err(i) => {
                        if mode == WriteMode::Update {
                            return Err(TreeError::NotFound);
                        }
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                    }
                }
            }
            if node.size() <= self.cap() {
                self.save(block, &node);
                return Ok(None);
            }
            // Split by cumulative size.
            let right_block = self.store.alloc();
            let (sep, right) = {
                let Node::Leaf { next, entries } = &mut node else {
                    unreachable!()
                };
                let sizes: Vec<usize> =
                    entries.iter().map(|(k, v)| 4 + k.len() + v.len()).collect();
                let split = split_point(&sizes, self.cap());
                let right_entries = entries.split_off(split);
                let sep = right_entries[0].0.clone();
                let right = Node::Leaf {
                    next: *next,
                    entries: right_entries,
                };
                *next = Some(right_block);
                (sep, right)
            };
            self.save(block, &node);
            self.save(right_block, &right);
            return Ok(Some((sep, right_block)));
        }

        // Internal node.
        let ci = {
            let Node::Internal { seps, .. } = &node else {
                unreachable!()
            };
            seps.partition_point(|s| s.as_slice() <= key)
        };
        let child = {
            let Node::Internal { children, .. } = &node else {
                unreachable!()
            };
            children[ci]
        };
        let Some((sep, right)) = self.write_rec(child, key, value, mode)? else {
            return Ok(None);
        };
        {
            let Node::Internal { seps, children } = &mut node else {
                unreachable!()
            };
            seps.insert(ci, sep);
            children.insert(ci + 1, right);
        }
        if node.size() <= self.cap() {
            self.save(block, &node);
            return Ok(None);
        }
        // Split the internal node: promote the middle separator.
        let right_block = self.store.alloc();
        let (promoted, right) = {
            let Node::Internal { seps, children } = &mut node else {
                unreachable!()
            };
            let sizes: Vec<usize> = seps.iter().map(|k| 6 + k.len()).collect();
            let m = split_point(&sizes, self.cap());
            let promoted = seps[m - 1].clone();
            // Separators [0, m-1) stay left, separator m-1 is promoted,
            // [m, ..) go right; children split at m.
            let right_seps = seps.split_off(m);
            seps.pop(); // the promoted separator moves up
            let right_children = children.split_off(m);
            (
                promoted,
                Node::Internal {
                    seps: right_seps,
                    children: right_children,
                },
            )
        };
        self.save(block, &node);
        self.save(right_block, &right);
        Ok(Some((promoted, right_block)))
    }

    /// Delete a record, returning its old value.
    pub fn delete(&self, key: &[u8]) -> Result<Vec<u8>, TreeError> {
        let (old, _) = self.delete_rec(self.root, key)?;
        // Root collapse: while the root is an internal node with a single
        // child, pull that child up into the root block (the paper's
        // "collapses").
        loop {
            let node = self.load(self.root);
            match node {
                Node::Internal { seps, children } if seps.is_empty() => {
                    let child = children[0];
                    let child_node = self.load(child);
                    self.save(self.root, &child_node);
                    self.store.free(child);
                }
                _ => break,
            }
        }
        Ok(old)
    }

    fn delete_rec(&self, block: BlockNo, key: &[u8]) -> Result<(Vec<u8>, bool), TreeError> {
        let mut node = self.load(block);
        match &mut node {
            Node::Leaf { entries, .. } => {
                let i = entries
                    .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                    .map_err(|_| TreeError::NotFound)?;
                let old = entries.remove(i).1;
                let under = node.size() < self.cap() / 4 || node.is_empty();
                self.save(block, &node);
                Ok((old, under))
            }
            Node::Internal { seps, children } => {
                let ci = seps.partition_point(|s| s.as_slice() <= key);
                let child = children[ci];
                let (old, under) = self.delete_rec(child, key)?;
                if under {
                    self.rebalance(&mut node, ci);
                }
                let parent_under = node.size() < self.cap() / 4 || node.is_empty();
                self.save(block, &node);
                Ok((old, parent_under))
            }
        }
    }

    /// Fix an underfull child `ci` of `parent` by merging with or borrowing
    /// from an adjacent sibling.
    fn rebalance(&self, parent: &mut Node, ci: usize) {
        let Node::Internal { seps, children } = parent else {
            unreachable!("rebalance on leaf");
        };
        if children.len() < 2 {
            return; // nothing to merge with; root collapse handles the rest
        }
        let (li, ri) = if ci + 1 < children.len() {
            (ci, ci + 1)
        } else {
            (ci - 1, ci)
        };
        let (lb, rb) = (children[li], children[ri]);
        let mut left = self.load(lb);
        let mut right = self.load(rb);

        // Merge when both halves fit in one block.
        if left.size() + right.size() - 7 + extra_merge_size(&left, &seps[li]) <= self.cap() {
            match (&mut left, right) {
                (
                    Node::Leaf { next, entries },
                    Node::Leaf {
                        next: rnext,
                        entries: rentries,
                    },
                ) => {
                    entries.extend(rentries);
                    *next = rnext;
                }
                (
                    Node::Internal {
                        seps: lseps,
                        children: lchildren,
                    },
                    Node::Internal {
                        seps: rseps,
                        children: rchildren,
                    },
                ) => {
                    lseps.push(seps[li].clone());
                    lseps.extend(rseps);
                    lchildren.extend(rchildren);
                }
                _ => unreachable!("siblings at the same level share a kind"),
            }
            self.save(lb, &left);
            self.store.free(rb);
            seps.remove(li);
            children.remove(ri);
            return;
        }

        // Borrow one entry from the bigger sibling, when it can spare one.
        let (lsize, rsize) = (left.size(), right.size());
        match (&mut left, &mut right) {
            (Node::Leaf { entries: le, .. }, Node::Leaf { entries: re, .. }) => {
                if le.len() >= 2 && (re.is_empty() || lsize > rsize) {
                    let moved = le.pop().expect("len >= 2");
                    re.insert(0, moved);
                    seps[li] = re[0].0.clone();
                } else if re.len() >= 2 {
                    let moved = re.remove(0);
                    le.push(moved);
                    seps[li] = re[0].0.clone();
                } else {
                    return; // cannot improve; tolerate the underflow
                }
            }
            (
                Node::Internal {
                    seps: lseps,
                    children: lchildren,
                },
                Node::Internal {
                    seps: rseps,
                    children: rchildren,
                },
            ) => {
                if lseps.len() >= 2 && (rseps.is_empty() || lseps.len() > rseps.len()) {
                    // Rotate right through the parent.
                    rseps.insert(0, seps[li].clone());
                    seps[li] = lseps.pop().expect("len >= 2");
                    rchildren.insert(0, lchildren.pop().expect("children"));
                } else if rseps.len() >= 2 {
                    // Rotate left through the parent.
                    lseps.push(seps[li].clone());
                    seps[li] = rseps.remove(0);
                    lchildren.push(rchildren.remove(0));
                } else {
                    return;
                }
            }
            _ => unreachable!(),
        }
        self.save(lb, &left);
        self.save(rb, &right);
    }

    /// Scan in key order from `start`, invoking `visit` per record until it
    /// returns [`ScanControl::Stop`] or the file ends.
    pub fn scan<F>(&self, start: Bound<&[u8]>, mut visit: F)
    where
        F: FnMut(&[u8], &[u8]) -> ScanControl,
    {
        // Descend to the leaf that may contain the first qualifying key.
        let seek: Option<&[u8]> = match start {
            Bound::Unbounded => None,
            Bound::Included(k) | Bound::Excluded(k) => Some(k),
        };
        let mut block = self.root;
        loop {
            match Node::decode(&self.store.read_for_scan(block)) {
                Node::Internal { seps, children } => {
                    let ci = match seek {
                        None => 0,
                        Some(k) => seps.partition_point(|s| s.as_slice() <= k),
                    };
                    block = children[ci];
                }
                Node::Leaf { next, entries } => {
                    // Announce the next leaf so the cache can pre-fetch it
                    // while this leaf's records are being processed.
                    if let Some(nb) = next {
                        self.store.will_need(nb);
                    }
                    let from = match start {
                        Bound::Unbounded => 0,
                        Bound::Included(k) => entries.partition_point(|(ek, _)| ek.as_slice() < k),
                        Bound::Excluded(k) => entries.partition_point(|(ek, _)| ek.as_slice() <= k),
                    };
                    for (k, v) in &entries[from..] {
                        if visit(k, v) == ScanControl::Stop {
                            return;
                        }
                    }
                    let mut cur = next;
                    while let Some(nb) = cur {
                        let Node::Leaf { next, entries } =
                            Node::decode(&self.store.read_for_scan(nb))
                        else {
                            panic!("leaf chain reached an internal node");
                        };
                        if let Some(nn) = next {
                            self.store.will_need(nn);
                        }
                        for (k, v) in &entries {
                            if visit(k, v) == ScanControl::Stop {
                                return;
                            }
                        }
                        cur = next;
                    }
                    return;
                }
            }
        }
    }

    /// All entries (tests / small files).
    pub fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        self.scan(Bound::Unbounded, |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            ScanControl::Continue
        });
        out
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        let mut n = 0;
        self.scan(Bound::Unbounded, |_, _| {
            n += 1;
            ScanControl::Continue
        });
        n
    }

    /// True when the file holds no records.
    pub fn is_empty(&self) -> bool {
        matches!(self.load_leftmost(), Node::Leaf { entries, .. } if entries.is_empty())
    }

    fn load_leftmost(&self) -> Node {
        let mut block = self.root;
        loop {
            let node = self.load(block);
            match node {
                Node::Internal { children, .. } => block = children[0],
                leaf => return leaf,
            }
        }
    }

    /// Check structural invariants (tests): keys sorted and deduplicated,
    /// separators consistent with subtree contents, leaf chain in order.
    pub fn validate(&self) {
        fn walk<S: BlockStore>(
            t: &BTreeFile<S>,
            block: BlockNo,
            lo: Option<&[u8]>,
            hi: Option<&[u8]>,
            leaves: &mut Vec<BlockNo>,
        ) {
            match t.load(block) {
                Node::Leaf { entries, .. } => {
                    for w in entries.windows(2) {
                        assert!(w[0].0 < w[1].0, "leaf keys out of order");
                    }
                    for (k, _) in &entries {
                        if let Some(lo) = lo {
                            assert!(k.as_slice() >= lo, "key below subtree bound");
                        }
                        if let Some(hi) = hi {
                            assert!(k.as_slice() < hi, "key above subtree bound");
                        }
                    }
                    leaves.push(block);
                }
                Node::Internal { seps, children } => {
                    assert_eq!(children.len(), seps.len() + 1);
                    for w in seps.windows(2) {
                        assert!(w[0] < w[1], "separators out of order");
                    }
                    for (i, child) in children.iter().enumerate() {
                        let clo = if i == 0 {
                            lo
                        } else {
                            Some(seps[i - 1].as_slice())
                        };
                        let chi = if i == seps.len() {
                            hi
                        } else {
                            Some(seps[i].as_slice())
                        };
                        walk(t, *child, clo, chi, leaves);
                    }
                }
            }
        }
        let mut leaves = Vec::new();
        walk(self, self.root, None, None, &mut leaves);
        // The leaf chain must visit exactly the leaves, in order.
        let mut chain = Vec::new();
        let mut node = Some({
            let mut block = self.root;
            loop {
                match self.load(block) {
                    Node::Internal { children, .. } => block = children[0],
                    Node::Leaf { .. } => break block,
                }
            }
        });
        while let Some(b) = node {
            chain.push(b);
            node = match self.load(b) {
                Node::Leaf { next, .. } => next,
                _ => panic!("chain left the leaf level"),
            };
        }
        assert_eq!(chain, leaves, "leaf chain does not match tree order");
    }
}

/// Split index for an overflowing node: aims for the cumulative-size
/// midpoint, then adjusts so that both halves (plus the 7-byte header) fit
/// in `cap`. Always leaves at least one element on each side.
fn split_point(sizes: &[usize], cap: usize) -> usize {
    let n = sizes.len();
    debug_assert!(n >= 2, "cannot split a node with fewer than 2 entries");
    let total: usize = sizes.iter().sum();
    let mut acc = 0;
    let mut idx = n - 1;
    for (i, s) in sizes.iter().enumerate() {
        acc += s;
        if acc >= total / 2 {
            idx = i + 1;
            break;
        }
    }
    let mut idx = idx.clamp(1, n - 1);
    let left = |i: usize| sizes[..i].iter().sum::<usize>();
    while left(idx) + 7 > cap && idx > 1 {
        idx -= 1;
    }
    while total - left(idx) + 7 > cap && idx < n - 1 {
        idx += 1;
    }
    idx
}

/// Extra bytes a merge adds beyond the two nodes' sizes (internal merges
/// pull the parent separator down).
fn extra_merge_size(left: &Node, parent_sep: &[u8]) -> usize {
    match left {
        Node::Internal { .. } => 6 + parent_sep.len(),
        Node::Leaf { .. } => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use std::collections::BTreeMap;

    fn key(i: u32) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    fn val(i: u32) -> Vec<u8> {
        format!("value-{i:08}").into_bytes()
    }

    #[test]
    fn insert_get_small() {
        let store = MemStore::new();
        let root = BTreeFile::create(&store);
        let t = BTreeFile::open(&store, root);
        for i in 0..100 {
            t.insert(&key(i), &val(i)).unwrap();
        }
        for i in 0..100 {
            assert_eq!(t.get(&key(i)), Some(val(i)));
        }
        assert_eq!(t.get(&key(100)), None);
        t.validate();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let store = MemStore::new();
        let t = BTreeFile::open(&store, BTreeFile::create(&store));
        t.insert(&key(1), &val(1)).unwrap();
        assert_eq!(t.insert(&key(1), &val(2)), Err(TreeError::DuplicateKey));
        assert_eq!(t.get(&key(1)), Some(val(1)));
    }

    #[test]
    fn update_and_put() {
        let store = MemStore::new();
        let t = BTreeFile::open(&store, BTreeFile::create(&store));
        assert_eq!(t.update(&key(1), &val(9)), Err(TreeError::NotFound));
        t.insert(&key(1), &val(1)).unwrap();
        t.update(&key(1), &val(2)).unwrap();
        assert_eq!(t.get(&key(1)), Some(val(2)));
        t.put(&key(1), &val(3)).unwrap();
        t.put(&key(2), &val(4)).unwrap();
        assert_eq!(t.get(&key(1)), Some(val(3)));
        assert_eq!(t.get(&key(2)), Some(val(4)));
    }

    #[test]
    fn splits_to_multiple_levels() {
        let store = MemStore::with_block_size(256);
        let t = BTreeFile::open(&store, BTreeFile::create(&store));
        for i in 0..500 {
            t.insert(&key(i), &val(i)).unwrap();
        }
        assert!(store.live_blocks() > 10, "tree should have split widely");
        for i in 0..500 {
            assert_eq!(t.get(&key(i)), Some(val(i)), "key {i}");
        }
        t.validate();
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn reverse_and_random_insert_orders() {
        for seed in [0u64, 1, 2] {
            let store = MemStore::with_block_size(256);
            let t = BTreeFile::open(&store, BTreeFile::create(&store));
            let mut keys: Vec<u32> = (0..300).collect();
            // Simple deterministic shuffle.
            let mut s = seed.wrapping_add(12345);
            for i in (1..keys.len()).rev() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                keys.swap(i, j);
            }
            for &i in &keys {
                t.insert(&key(i), &val(i)).unwrap();
            }
            t.validate();
            let got: Vec<u32> = t
                .entries()
                .iter()
                .map(|(k, _)| u32::from_be_bytes(k[..4].try_into().unwrap()))
                .collect();
            assert_eq!(got, (0..300).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn delete_leaf_simple() {
        let store = MemStore::new();
        let t = BTreeFile::open(&store, BTreeFile::create(&store));
        t.insert(&key(1), &val(1)).unwrap();
        t.insert(&key(2), &val(2)).unwrap();
        assert_eq!(t.delete(&key(1)).unwrap(), val(1));
        assert_eq!(t.get(&key(1)), None);
        assert_eq!(t.get(&key(2)), Some(val(2)));
        assert_eq!(t.delete(&key(1)), Err(TreeError::NotFound));
    }

    #[test]
    fn delete_everything_collapses_tree() {
        let store = MemStore::with_block_size(256);
        let t = BTreeFile::open(&store, BTreeFile::create(&store));
        for i in 0..400 {
            t.insert(&key(i), &val(i)).unwrap();
        }
        let peak = store.live_blocks();
        for i in 0..400 {
            t.delete(&key(i)).unwrap();
            if i.is_multiple_of(97) {
                t.validate();
            }
        }
        t.validate();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(
            store.live_blocks() < peak / 4,
            "collapse should free blocks ({} of peak {peak} live)",
            store.live_blocks()
        );
    }

    #[test]
    fn interleaved_inserts_and_deletes_match_model() {
        let store = MemStore::with_block_size(256);
        let t = BTreeFile::open(&store, BTreeFile::create(&store));
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut s = 99u64;
        for step in 0..3000u32 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = key((s >> 33) as u32 % 200);
            let v = val(step);
            let exists = model.contains_key(&k);
            if (s >> 7).is_multiple_of(3) && exists {
                t.delete(&k).unwrap();
                model.remove(&k);
            } else {
                if exists {
                    t.update(&k, &v).unwrap();
                } else {
                    t.insert(&k, &v).unwrap();
                }
                model.insert(k, v);
            }
        }
        t.validate();
        let got = t.entries();
        let want: Vec<_> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn scan_ranges_and_stop() {
        let store = MemStore::with_block_size(256);
        let t = BTreeFile::open(&store, BTreeFile::create(&store));
        for i in 0..100 {
            t.insert(&key(i), &val(i)).unwrap();
        }
        // From included bound.
        let mut seen = Vec::new();
        t.scan(Bound::Included(&key(40)[..]), |k, _| {
            seen.push(u32::from_be_bytes(k[..4].try_into().unwrap()));
            if seen.len() == 5 {
                ScanControl::Stop
            } else {
                ScanControl::Continue
            }
        });
        assert_eq!(seen, vec![40, 41, 42, 43, 44]);
        // Excluded bound (the re-drive continuation form).
        let mut seen = Vec::new();
        t.scan(Bound::Excluded(&key(40)[..]), |k, _| {
            seen.push(u32::from_be_bytes(k[..4].try_into().unwrap()));
            if seen.len() == 3 {
                ScanControl::Stop
            } else {
                ScanControl::Continue
            }
        });
        assert_eq!(seen, vec![41, 42, 43]);
        // Bound between keys.
        let mut first = None;
        t.scan(Bound::Included(&[0, 0, 0, 40, 1][..]), |k, _| {
            first = Some(u32::from_be_bytes(k[..4].try_into().unwrap()));
            ScanControl::Stop
        });
        assert_eq!(first, Some(41));
    }

    #[test]
    fn oversized_entry_rejected() {
        let store = MemStore::with_block_size(256);
        let t = BTreeFile::open(&store, BTreeFile::create(&store));
        assert_eq!(
            t.insert(&key(1), &vec![0u8; 4096]),
            Err(TreeError::EntryTooLarge)
        );
    }

    #[test]
    fn empty_value_entries() {
        // Secondary indices store empty values.
        let store = MemStore::with_block_size(256);
        let t = BTreeFile::open(&store, BTreeFile::create(&store));
        for i in 0..200 {
            t.insert(&key(i), &[]).unwrap();
        }
        t.validate();
        assert_eq!(t.get(&key(77)), Some(Vec::new()));
        assert_eq!(t.len(), 200);
    }
}
