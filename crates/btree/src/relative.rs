//! Relative files: direct access by record number.
//!
//! "relative (direct access)" — ENSCRIBE's array-of-slots file structure.
//! A header block holds a directory of data blocks; each data block holds a
//! presence bitmap plus fixed-size record slots. Record number `r` maps to
//! slot `r % per_block` of data block `r / per_block`.

use crate::{BlockNo, BlockStore};

/// Errors from relative-file operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelativeError {
    /// Record number beyond the file's addressable range for this store.
    OutOfRange,
    /// Read/delete of an empty slot.
    NotFound,
    /// Record larger than the declared slot size.
    RecordTooLarge,
}

impl std::fmt::Display for RelativeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelativeError::OutOfRange => write!(f, "record number out of range"),
            RelativeError::NotFound => write!(f, "slot is empty"),
            RelativeError::RecordTooLarge => write!(f, "record exceeds slot size"),
        }
    }
}

impl std::error::Error for RelativeError {}

/// A relative file with fixed-size slots.
pub struct RelativeFile<'a, S: BlockStore> {
    store: &'a S,
    header: BlockNo,
    slot_size: usize,
}

// Header block: [slot_size: u32][ndata: u32][data block numbers: u32 ...]
// Data block:   [bitmap: ceil(per_block/8)][slots ...]

impl<'a, S: BlockStore> RelativeFile<'a, S> {
    /// Create a new relative file with `slot_size`-byte records; returns the
    /// header block number.
    pub fn create(store: &'a S, slot_size: usize) -> BlockNo {
        assert!(slot_size >= 1 && slot_size < store.block_size() - 8);
        let header = store.alloc();
        let mut h = Vec::with_capacity(8);
        h.extend_from_slice(&(slot_size as u32).to_be_bytes());
        h.extend_from_slice(&0u32.to_be_bytes());
        store.write(header, h);
        header
    }

    /// Open an existing relative file by header block.
    pub fn open(store: &'a S, header: BlockNo) -> Self {
        let h = store.read(header);
        let slot_size = u32::from_be_bytes(h[0..4].try_into().unwrap()) as usize;
        RelativeFile {
            store,
            header,
            slot_size,
        }
    }

    /// Records per data block.
    pub fn per_block(&self) -> usize {
        // bitmap + slots must fit: n/8 (rounded up) + n*slot <= cap
        let cap = self.store.block_size();
        let mut n = cap / self.slot_size;
        while n > 0 && n.div_ceil(8) + n * self.slot_size > cap {
            n -= 1;
        }
        n.max(1)
    }

    fn directory(&self) -> Vec<BlockNo> {
        let h = self.store.read(self.header);
        let ndata = u32::from_be_bytes(h[4..8].try_into().unwrap()) as usize;
        (0..ndata)
            .map(|i| u32::from_be_bytes(h[8 + 4 * i..12 + 4 * i].try_into().unwrap()))
            .collect()
    }

    fn save_directory(&self, dir: &[BlockNo]) {
        let mut h = Vec::with_capacity(8 + 4 * dir.len());
        h.extend_from_slice(&(self.slot_size as u32).to_be_bytes());
        h.extend_from_slice(&(dir.len() as u32).to_be_bytes());
        for b in dir {
            h.extend_from_slice(&b.to_be_bytes());
        }
        assert!(
            h.len() <= self.store.block_size(),
            "relative file too large"
        );
        self.store.write(self.header, h);
    }

    fn locate(&self, recnum: u64) -> (usize, usize) {
        let pb = self.per_block() as u64;
        ((recnum / pb) as usize, (recnum % pb) as usize)
    }

    /// Write (insert or replace) the record at `recnum`.
    pub fn write_record(&self, recnum: u64, data: &[u8]) -> Result<(), RelativeError> {
        if data.len() > self.slot_size {
            return Err(RelativeError::RecordTooLarge);
        }
        let (bi, si) = self.locate(recnum);
        let mut dir = self.directory();
        let max_dir = (self.store.block_size() - 8) / 4;
        if bi >= max_dir {
            return Err(RelativeError::OutOfRange);
        }
        while dir.len() <= bi {
            let b = self.store.alloc();
            let pb = self.per_block();
            self.store
                .write(b, vec![0u8; pb.div_ceil(8) + pb * self.slot_size]);
            dir.push(b);
        }
        self.save_directory(&dir);
        let mut block = self.store.read(dir[bi]);
        block[si / 8] |= 1 << (si % 8);
        let off = self.per_block().div_ceil(8) + si * self.slot_size;
        block[off..off + data.len()].copy_from_slice(data);
        for b in &mut block[off + data.len()..off + self.slot_size] {
            *b = 0;
        }
        self.store.write(dir[bi], block);
        Ok(())
    }

    /// Read the record at `recnum`.
    pub fn read_record(&self, recnum: u64) -> Result<Vec<u8>, RelativeError> {
        let (bi, si) = self.locate(recnum);
        let dir = self.directory();
        let block_no = *dir.get(bi).ok_or(RelativeError::NotFound)?;
        let block = self.store.read(block_no);
        if block[si / 8] & (1 << (si % 8)) == 0 {
            return Err(RelativeError::NotFound);
        }
        let off = self.per_block().div_ceil(8) + si * self.slot_size;
        Ok(block[off..off + self.slot_size].to_vec())
    }

    /// Delete the record at `recnum`.
    pub fn delete_record(&self, recnum: u64) -> Result<(), RelativeError> {
        let (bi, si) = self.locate(recnum);
        let dir = self.directory();
        let block_no = *dir.get(bi).ok_or(RelativeError::NotFound)?;
        let mut block = self.store.read(block_no);
        if block[si / 8] & (1 << (si % 8)) == 0 {
            return Err(RelativeError::NotFound);
        }
        block[si / 8] &= !(1 << (si % 8));
        self.store.write(block_no, block);
        Ok(())
    }

    /// Visit every present record as `(recnum, bytes)`.
    pub fn scan<F: FnMut(u64, &[u8])>(&self, mut visit: F) {
        let pb = self.per_block();
        for (bi, block_no) in self.directory().into_iter().enumerate() {
            let block = self.store.read_for_scan(block_no);
            for si in 0..pb {
                if block[si / 8] & (1 << (si % 8)) != 0 {
                    let off = pb.div_ceil(8) + si * self.slot_size;
                    visit((bi * pb + si) as u64, &block[off..off + self.slot_size]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn write_read_delete() {
        let store = MemStore::new();
        let f = RelativeFile::open(&store, RelativeFile::create(&store, 64));
        f.write_record(5, b"hello").unwrap();
        let got = f.read_record(5).unwrap();
        assert_eq!(&got[..5], b"hello");
        assert_eq!(got.len(), 64, "slot-sized read");
        assert_eq!(f.read_record(4), Err(RelativeError::NotFound));
        f.delete_record(5).unwrap();
        assert_eq!(f.read_record(5), Err(RelativeError::NotFound));
    }

    #[test]
    fn spans_blocks() {
        let store = MemStore::with_block_size(512);
        let f = RelativeFile::open(&store, RelativeFile::create(&store, 100));
        for r in 0..40u64 {
            f.write_record(r, format!("rec{r}").as_bytes()).unwrap();
        }
        assert!(store.live_blocks() > 5, "several data blocks allocated");
        for r in 0..40u64 {
            assert_eq!(
                &f.read_record(r).unwrap()[..4],
                format!("rec{r}").as_bytes().get(..4).unwrap()
            );
        }
    }

    #[test]
    fn sparse_records_allowed() {
        let store = MemStore::new();
        let f = RelativeFile::open(&store, RelativeFile::create(&store, 32));
        f.write_record(0, b"a").unwrap();
        f.write_record(100, b"b").unwrap();
        let mut seen = Vec::new();
        f.scan(|r, _| seen.push(r));
        assert_eq!(seen, vec![0, 100]);
    }

    #[test]
    fn oversized_record_rejected() {
        let store = MemStore::new();
        let f = RelativeFile::open(&store, RelativeFile::create(&store, 16));
        assert_eq!(
            f.write_record(0, &[0u8; 17]),
            Err(RelativeError::RecordTooLarge)
        );
    }

    #[test]
    fn replace_in_place() {
        let store = MemStore::new();
        let f = RelativeFile::open(&store, RelativeFile::create(&store, 16));
        f.write_record(3, b"first").unwrap();
        f.write_record(3, b"two").unwrap();
        let got = f.read_record(3).unwrap();
        assert_eq!(&got[..3], b"two");
        assert_eq!(got[3], 0, "slot tail zeroed on replace");
    }
}
