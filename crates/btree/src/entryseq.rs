//! Entry-sequenced files: insert at EOF only, direct access for reads.
//!
//! ENSCRIBE's append-only structure (history/log tables). An entry's
//! address — `(block index, offset)` packed into a `u64` — is stable for
//! the file's lifetime; there is no delete.

use crate::{BlockNo, BlockStore};

/// Errors from entry-sequenced file operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntrySeqError {
    /// Address does not point at an entry.
    BadAddress,
    /// Entry larger than a block can hold.
    EntryTooLarge,
    /// The block directory is full (file at maximum size).
    FileFull,
}

impl std::fmt::Display for EntrySeqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntrySeqError::BadAddress => write!(f, "bad entry address"),
            EntrySeqError::EntryTooLarge => write!(f, "entry too large"),
            EntrySeqError::FileFull => write!(f, "entry-sequenced file full"),
        }
    }
}

impl std::error::Error for EntrySeqError {}

/// An append-only entry-sequenced file.
pub struct EntrySequencedFile<'a, S: BlockStore> {
    store: &'a S,
    header: BlockNo,
}

// Header block: [ndata: u32][tail_used: u32][data blocks: u32...]
// Data block:   [nentries: u16]([len: u16][bytes])*

impl<'a, S: BlockStore> EntrySequencedFile<'a, S> {
    /// Create an empty file; returns the header block number.
    pub fn create(store: &'a S) -> BlockNo {
        let header = store.alloc();
        let mut h = Vec::with_capacity(8);
        h.extend_from_slice(&0u32.to_be_bytes());
        h.extend_from_slice(&0u32.to_be_bytes());
        store.write(header, h);
        header
    }

    /// Open by header block.
    pub fn open(store: &'a S, header: BlockNo) -> Self {
        EntrySequencedFile { store, header }
    }

    fn load_header(&self) -> (Vec<BlockNo>, usize) {
        let h = self.store.read(self.header);
        let ndata = u32::from_be_bytes(h[0..4].try_into().unwrap()) as usize;
        let tail_used = u32::from_be_bytes(h[4..8].try_into().unwrap()) as usize;
        let dir = (0..ndata)
            .map(|i| u32::from_be_bytes(h[8 + 4 * i..12 + 4 * i].try_into().unwrap()))
            .collect();
        (dir, tail_used)
    }

    fn save_header(&self, dir: &[BlockNo], tail_used: usize) {
        let mut h = Vec::with_capacity(8 + 4 * dir.len());
        h.extend_from_slice(&(dir.len() as u32).to_be_bytes());
        h.extend_from_slice(&(tail_used as u32).to_be_bytes());
        for b in dir {
            h.extend_from_slice(&b.to_be_bytes());
        }
        self.store.write(self.header, h);
    }

    /// Append an entry at EOF; returns its stable address.
    pub fn append(&self, data: &[u8]) -> Result<u64, EntrySeqError> {
        let cap = self.store.block_size();
        if 2 + 2 + data.len() > cap {
            return Err(EntrySeqError::EntryTooLarge);
        }
        let (mut dir, mut tail_used) = self.load_header();
        let needs_new_block = dir.is_empty() || tail_used + 2 + data.len() > cap;
        if needs_new_block {
            if 8 + 4 * (dir.len() + 1) > cap {
                return Err(EntrySeqError::FileFull);
            }
            let b = self.store.alloc();
            self.store.write(b, vec![0u8; 2]); // nentries = 0
            dir.push(b);
            tail_used = 2;
        }
        let bi = dir.len() - 1;
        let block_no = dir[bi];
        let mut block = self.store.read(block_no);
        block.resize(tail_used.max(block.len()), 0);
        let offset = tail_used;
        let n = u16::from_be_bytes(block[0..2].try_into().unwrap()) + 1;
        block[0..2].copy_from_slice(&n.to_be_bytes());
        block.truncate(offset);
        block.extend_from_slice(&(data.len() as u16).to_be_bytes());
        block.extend_from_slice(data);
        tail_used = block.len();
        self.store.write(block_no, block);
        self.save_header(&dir, tail_used);
        Ok(((bi as u64) << 32) | offset as u64)
    }

    /// Read the entry at `address`.
    pub fn read_at(&self, address: u64) -> Result<Vec<u8>, EntrySeqError> {
        let (bi, offset) = ((address >> 32) as usize, (address & 0xFFFF_FFFF) as usize);
        let (dir, _) = self.load_header();
        let block_no = *dir.get(bi).ok_or(EntrySeqError::BadAddress)?;
        let block = self.store.read(block_no);
        if offset + 2 > block.len() || offset < 2 {
            return Err(EntrySeqError::BadAddress);
        }
        let len = u16::from_be_bytes(block[offset..offset + 2].try_into().unwrap()) as usize;
        block
            .get(offset + 2..offset + 2 + len)
            .map(|s| s.to_vec())
            .ok_or(EntrySeqError::BadAddress)
    }

    /// Visit every entry in append order as `(address, bytes)`.
    pub fn scan<F: FnMut(u64, &[u8])>(&self, mut visit: F) {
        let (dir, _) = self.load_header();
        for (bi, block_no) in dir.into_iter().enumerate() {
            let block = self.store.read_for_scan(block_no);
            let n = u16::from_be_bytes(block[0..2].try_into().unwrap()) as usize;
            let mut offset = 2usize;
            for _ in 0..n {
                let len =
                    u16::from_be_bytes(block[offset..offset + 2].try_into().unwrap()) as usize;
                visit(
                    ((bi as u64) << 32) | offset as u64,
                    &block[offset + 2..offset + 2 + len],
                );
                offset += 2 + len;
            }
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        let mut n = 0;
        self.scan(|_, _| n += 1);
        n
    }

    /// True when no entries have been appended.
    pub fn is_empty(&self) -> bool {
        self.load_header().0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn append_and_read_back() {
        let store = MemStore::new();
        let f = EntrySequencedFile::open(&store, EntrySequencedFile::create(&store));
        let a1 = f.append(b"first").unwrap();
        let a2 = f.append(b"second").unwrap();
        assert_eq!(f.read_at(a1).unwrap(), b"first");
        assert_eq!(f.read_at(a2).unwrap(), b"second");
        assert_ne!(a1, a2);
    }

    #[test]
    fn addresses_stable_across_blocks() {
        let store = MemStore::with_block_size(128);
        let f = EntrySequencedFile::open(&store, EntrySequencedFile::create(&store));
        let addrs: Vec<u64> = (0..50)
            .map(|i| f.append(format!("entry-{i:03}").as_bytes()).unwrap())
            .collect();
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(f.read_at(*a).unwrap(), format!("entry-{i:03}").as_bytes());
        }
        assert!(store.live_blocks() > 4);
    }

    #[test]
    fn scan_in_append_order() {
        let store = MemStore::with_block_size(128);
        let f = EntrySequencedFile::open(&store, EntrySequencedFile::create(&store));
        for i in 0..30 {
            f.append(format!("e{i}").as_bytes()).unwrap();
        }
        let mut seen = Vec::new();
        f.scan(|_, bytes| seen.push(String::from_utf8(bytes.to_vec()).unwrap()));
        assert_eq!(seen.len(), 30);
        assert_eq!(seen[0], "e0");
        assert_eq!(seen[29], "e29");
        assert_eq!(f.len(), 30);
    }

    #[test]
    fn bad_addresses_rejected() {
        let store = MemStore::new();
        let f = EntrySequencedFile::open(&store, EntrySequencedFile::create(&store));
        assert_eq!(f.read_at(0), Err(EntrySeqError::BadAddress));
        f.append(b"x").unwrap();
        assert_eq!(f.read_at(1 << 32), Err(EntrySeqError::BadAddress));
        assert_eq!(f.read_at(1), Err(EntrySeqError::BadAddress));
    }

    #[test]
    fn oversized_entry_rejected() {
        let store = MemStore::with_block_size(64);
        let f = EntrySequencedFile::open(&store, EntrySequencedFile::create(&store));
        assert_eq!(f.append(&[0u8; 64]), Err(EntrySeqError::EntryTooLarge));
    }

    #[test]
    fn empty_file_is_empty() {
        let store = MemStore::new();
        let f = EntrySequencedFile::open(&store, EntrySequencedFile::create(&store));
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        f.append(b"x").unwrap();
        assert!(!f.is_empty());
    }
}
