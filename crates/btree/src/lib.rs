#![warn(missing_docs)]
//! The record management component of the Disk Process.
//!
//! "The record management component of the Disk Process implements the
//! access methods supporting the file structures common to ENSCRIBE and
//! NonStop SQL: key-sequenced (B-Tree); relative (direct access);
//! entry-sequenced (direct access for reads, insert at EOF only)."
//!
//! All three access methods operate on 4 KB blocks obtained through a
//! [`BlockStore`] — in production the Disk Process's buffer pool, in tests
//! a [`MemStore`]. The B-tree implements splits and *collapses* (the
//! paper's term for structure shrinkage), which is what breaks physical
//! clustering and shortens the cache's bulk-I/O strings.

pub mod entryseq;
pub mod node;
pub mod relative;
pub mod tree;

pub use entryseq::EntrySequencedFile;
pub use relative::RelativeFile;
pub use tree::{BTreeFile, ScanControl, TreeError};

use std::cell::RefCell;
use std::collections::HashMap;

/// Block index within a volume (mirrors `nsql_disk::BlockNo` without the
/// dependency).
pub type BlockNo = u32;

/// Abstract block storage: the Disk Process's cache, or memory in tests.
pub trait BlockStore {
    /// Block size in bytes.
    fn block_size(&self) -> usize;
    /// Read a block (point access).
    fn read(&self, block: BlockNo) -> Vec<u8>;
    /// Read a block as part of a sequential scan. Implementations may apply
    /// bulk I/O; by default identical to [`BlockStore::read`].
    fn read_for_scan(&self, block: BlockNo) -> Vec<u8> {
        self.read(block)
    }
    /// Advise that `block` will be needed soon (the B-tree scan announces
    /// the next leaf in the chain). Implementations may pre-fetch
    /// asynchronously; by default a no-op.
    fn will_need(&self, _block: BlockNo) {}
    /// Write (replace) a block.
    fn write(&self, block: BlockNo, data: Vec<u8>);
    /// Allocate a fresh block number.
    fn alloc(&self) -> BlockNo;
    /// Return a block to the free pool.
    fn free(&self, block: BlockNo);
}

/// In-memory block store for unit and property tests.
#[derive(Default)]
pub struct MemStore {
    blocks: RefCell<HashMap<BlockNo, Vec<u8>>>,
    next: RefCell<BlockNo>,
    free_list: RefCell<Vec<BlockNo>>,
    block_size: usize,
}

impl MemStore {
    /// A store with the standard 4 KB blocks.
    pub fn new() -> Self {
        Self::with_block_size(4096)
    }

    /// A store with custom-size blocks (small blocks force deep trees in
    /// tests).
    pub fn with_block_size(block_size: usize) -> Self {
        MemStore {
            blocks: RefCell::new(HashMap::new()),
            next: RefCell::new(0),
            free_list: RefCell::new(Vec::new()),
            block_size,
        }
    }

    /// Number of live (allocated, not freed) blocks.
    pub fn live_blocks(&self) -> usize {
        self.blocks.borrow().len()
    }
}

impl BlockStore for MemStore {
    fn block_size(&self) -> usize {
        self.block_size
    }
    fn read(&self, block: BlockNo) -> Vec<u8> {
        self.blocks
            .borrow()
            .get(&block)
            .unwrap_or_else(|| panic!("read of unallocated block {block}"))
            .clone()
    }
    fn write(&self, block: BlockNo, data: Vec<u8>) {
        assert!(data.len() <= self.block_size, "block overflow");
        self.blocks.borrow_mut().insert(block, data);
    }
    fn alloc(&self) -> BlockNo {
        if let Some(b) = self.free_list.borrow_mut().pop() {
            self.blocks.borrow_mut().insert(b, Vec::new());
            return b;
        }
        let mut next = self.next.borrow_mut();
        let b = *next;
        *next += 1;
        self.blocks.borrow_mut().insert(b, Vec::new());
        b
    }
    fn free(&self, block: BlockNo) {
        self.blocks.borrow_mut().remove(&block);
        self.free_list.borrow_mut().push(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memstore_alloc_reuses_freed() {
        let s = MemStore::new();
        let a = s.alloc();
        let b = s.alloc();
        assert_ne!(a, b);
        s.free(a);
        let c = s.alloc();
        assert_eq!(c, a, "freed block is recycled");
        assert_eq!(s.live_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn memstore_read_unallocated_panics() {
        let s = MemStore::new();
        s.read(7);
    }
}
