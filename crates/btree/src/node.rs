//! B-tree node serialization.
//!
//! Nodes serialize into a block as:
//!
//! ```text
//! leaf:     [0x01][nkeys: u16][next_leaf: u32]([klen u16][vlen u16][key][value])*
//! internal: [0x02][nkeys: u16][child0: u32]([klen u16][key][child u32])*
//! ```
//!
//! `next_leaf == u32::MAX` means "no next leaf". An internal node with
//! `nkeys` separators has `nkeys + 1` children; separator `i` is a copy of
//! the smallest key reachable under child `i + 1`.

use crate::BlockNo;

/// Sentinel for "no next leaf".
pub const NO_LEAF: BlockNo = u32::MAX;

/// An in-memory B-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Leaf: sorted `(key, record)` entries plus the leaf chain pointer.
    Leaf {
        /// Next leaf in key order (`None` at the right edge).
        next: Option<BlockNo>,
        /// Sorted entries.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// Internal: `children.len() == seps.len() + 1`.
    Internal {
        /// Separator keys.
        seps: Vec<Vec<u8>>,
        /// Child block numbers.
        children: Vec<BlockNo>,
    },
}

impl Node {
    /// An empty leaf.
    pub fn empty_leaf() -> Node {
        Node::Leaf {
            next: None,
            entries: Vec::new(),
        }
    }

    /// Serialized size in bytes.
    pub fn size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                7 + entries
                    .iter()
                    .map(|(k, v)| 4 + k.len() + v.len())
                    .sum::<usize>()
            }
            Node::Internal { seps, .. } => 7 + seps.iter().map(|k| 6 + k.len()).sum::<usize>(),
        }
    }

    /// Number of entries (leaf) or separators (internal).
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { seps, .. } => seps.len(),
        }
    }

    /// True when the node holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize into block bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size());
        match self {
            Node::Leaf { next, entries } => {
                out.push(0x01);
                out.extend_from_slice(&(entries.len() as u16).to_be_bytes());
                out.extend_from_slice(&next.unwrap_or(NO_LEAF).to_be_bytes());
                for (k, v) in entries {
                    out.extend_from_slice(&(k.len() as u16).to_be_bytes());
                    out.extend_from_slice(&(v.len() as u16).to_be_bytes());
                    out.extend_from_slice(k);
                    out.extend_from_slice(v);
                }
            }
            Node::Internal { seps, children } => {
                assert_eq!(children.len(), seps.len() + 1, "malformed internal node");
                out.push(0x02);
                out.extend_from_slice(&(seps.len() as u16).to_be_bytes());
                out.extend_from_slice(&children[0].to_be_bytes());
                for (k, c) in seps.iter().zip(&children[1..]) {
                    out.extend_from_slice(&(k.len() as u16).to_be_bytes());
                    out.extend_from_slice(k);
                    out.extend_from_slice(&c.to_be_bytes());
                }
            }
        }
        out
    }

    /// Deserialize from block bytes.
    ///
    /// # Panics
    /// Panics on malformed bytes — block corruption is a simulation bug,
    /// not a runtime condition.
    pub fn decode(bytes: &[u8]) -> Node {
        let tag = bytes[0];
        let nkeys = u16::from_be_bytes([bytes[1], bytes[2]]) as usize;
        let mut pos;
        let read_u16 = |pos: &mut usize| {
            let v = u16::from_be_bytes([bytes[*pos], bytes[*pos + 1]]);
            *pos += 2;
            v
        };
        match tag {
            0x01 => {
                let next = u32::from_be_bytes(bytes[3..7].try_into().unwrap());
                pos = 7;
                let mut entries = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    let klen = read_u16(&mut pos) as usize;
                    let vlen = read_u16(&mut pos) as usize;
                    let k = bytes[pos..pos + klen].to_vec();
                    pos += klen;
                    let v = bytes[pos..pos + vlen].to_vec();
                    pos += vlen;
                    entries.push((k, v));
                }
                Node::Leaf {
                    next: (next != NO_LEAF).then_some(next),
                    entries,
                }
            }
            0x02 => {
                let child0 = u32::from_be_bytes(bytes[3..7].try_into().unwrap());
                pos = 7;
                let mut seps = Vec::with_capacity(nkeys);
                let mut children = Vec::with_capacity(nkeys + 1);
                children.push(child0);
                for _ in 0..nkeys {
                    let klen = read_u16(&mut pos) as usize;
                    let k = bytes[pos..pos + klen].to_vec();
                    pos += klen;
                    let c = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap());
                    pos += 4;
                    seps.push(k);
                    children.push(c);
                }
                Node::Internal { seps, children }
            }
            other => panic!("corrupt node tag {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_round_trip() {
        let n = Node::Leaf {
            next: Some(42),
            entries: vec![
                (b"alpha".to_vec(), b"1".to_vec()),
                (b"beta".to_vec(), vec![0u8; 100]),
            ],
        };
        let bytes = n.encode();
        assert_eq!(bytes.len(), n.size());
        assert_eq!(Node::decode(&bytes), n);
    }

    #[test]
    fn leaf_without_next_round_trip() {
        let n = Node::Leaf {
            next: None,
            entries: vec![],
        };
        assert_eq!(Node::decode(&n.encode()), n);
    }

    #[test]
    fn internal_round_trip() {
        let n = Node::Internal {
            seps: vec![b"m".to_vec(), b"t".to_vec()],
            children: vec![1, 2, 3],
        };
        let bytes = n.encode();
        assert_eq!(bytes.len(), n.size());
        assert_eq!(Node::decode(&bytes), n);
    }

    #[test]
    fn empty_values_allowed() {
        // Secondary index entries carry empty values.
        let n = Node::Leaf {
            next: None,
            entries: vec![(b"idxkey".to_vec(), Vec::new())],
        };
        assert_eq!(Node::decode(&n.encode()), n);
    }

    #[test]
    #[should_panic(expected = "corrupt")]
    fn bad_tag_panics() {
        Node::decode(&[9, 0, 0, 0, 0, 0, 0]);
    }
}
