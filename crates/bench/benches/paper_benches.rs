//! Wall-clock micro-benchmarks over the engine.
//!
//! These measure the *implementation's* real cost (wall time of the
//! simulation) for the operations behind each paper experiment; the
//! virtual-time/message-count results live in the `experiments` binary and
//! EXPERIMENTS.md. Run with `cargo bench`. One scenario per paper
//! table/figure family:
//!
//! * `scan_interfaces`  — E2/E3 (record-at-a-time vs RSBB vs VSBB)
//! * `update_pushdown`  — E4/E12 (expression + constraint shipping)
//! * `debitcredit`      — E9 (SQL vs ENSCRIBE transaction)
//! * `group_commit`     — E6/E7 (audit + commit grouping)
//! * `btree`            — the record-management substrate
//! * `blocked_insert`   — E10 (load interfaces)
//! * `recovery`         — crash + volume recovery

use nsql_bench::wall_clock;
use nsql_core::{Cluster, ClusterBuilder};
use nsql_dp::{ReadLock, SubsetMode};
use nsql_records::{CmpOp, Expr, KeyRange, Value};
use nsql_sim::SimRng;
use nsql_workloads::{Bank, Wisconsin};

/// Time `iters` runs of `f` (after one warm-up) and print mean µs/iter.
/// Wall-clock access goes through `nsql_bench::wall_clock`, the one
/// lint-allowlisted site in the workspace.
fn bench(group: &str, name: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let sw = wall_clock::start();
    for _ in 0..iters {
        f();
    }
    println!(
        "{group}/{name:<28} {:>10.1} µs/iter  ({iters} iters)",
        sw.elapsed_micros() / iters as f64
    );
}

fn wisconsin_db(rows: u32) -> Cluster {
    let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
    Wisconsin::create(&db, "WISC", rows, &["$DATA1"], 1).unwrap();
    db
}

fn bench_scan_interfaces() {
    let db = wisconsin_db(2_000);
    let info = db.catalog.table("WISC").unwrap();
    let session = db.session();
    let fs = session.fs();

    bench("scan_interfaces", "record_at_a_time_2k", 10, || {
        let mut cur = fs.ens_open(&info.open, None);
        let mut n = 0;
        while fs.ens_read_next(&mut cur).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 2_000);
    });
    bench("scan_interfaces", "rsbb_2k", 10, || {
        let txn = db.txnmgr.begin();
        let mut cur = fs.ens_open_sbb(&info.open, txn).unwrap();
        let mut n = 0;
        while fs.ens_read_next(&mut cur).unwrap().is_some() {
            n += 1;
        }
        db.txnmgr.commit(txn, session.cpu()).unwrap();
        assert_eq!(n, 2_000);
    });
    bench("scan_interfaces", "vsbb_select_project_2k", 10, || {
        let scan = fs
            .scan(
                None,
                &info.open,
                &KeyRange::all(),
                Some(&Expr::field_cmp(1, CmpOp::Lt, Value::Int(200))),
                Some(&[0, 1]),
                SubsetMode::Vsbb,
                ReadLock::None,
            )
            .unwrap();
        assert_eq!(scan.rows.len(), 200);
    });
}

fn bench_update_pushdown() {
    bench("update_pushdown", "update_subset_1k", 10, || {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let mut s = db.session();
        s.execute("CREATE TABLE A (K INT NOT NULL, BAL DOUBLE NOT NULL, PRIMARY KEY (K))")
            .unwrap();
        let info = db.catalog.table("A").unwrap();
        let txn = db.txnmgr.begin();
        {
            let mut ins = nsql_fs::BlockedInserter::new(s.fs(), &info.open, txn);
            for k in 0..1_000 {
                ins.push(&[Value::Int(k), Value::Double(10.0)]).unwrap();
            }
            ins.flush().unwrap();
        }
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        let n = s
            .execute("UPDATE A SET BAL = BAL * 1.07 WHERE BAL > 0")
            .unwrap()
            .count();
        assert_eq!(n, 1_000);
    });
    {
        use nsql_records::{ArithOp, SetList};
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let mut s = db.session();
        s.execute("CREATE TABLE P (K INT NOT NULL, Q INT NOT NULL, PRIMARY KEY (K))")
            .unwrap();
        s.execute("INSERT INTO P VALUES (1, 1000000)").unwrap();
        let info = db.catalog.table("P").unwrap();
        let key =
            nsql_records::key::encode_record_key(&info.open.desc, &[Value::Int(1), Value::Int(0)]);
        let sets = SetList {
            sets: vec![(
                1,
                Expr::Arith(
                    Box::new(Expr::Field(1)),
                    ArithOp::Sub,
                    Box::new(Expr::lit(Value::Int(1))),
                ),
            )],
        };
        let constraint = Expr::field_cmp(1, CmpOp::Ge, Value::Int(0));
        bench(
            "update_pushdown",
            "update_point_with_constraint",
            200,
            || {
                let txn = db.txnmgr.begin();
                s.fs()
                    .update_by_key(txn, &info.open, &key, &sets, Some(&constraint))
                    .unwrap();
                db.txnmgr.commit(txn, s.cpu()).unwrap();
            },
        );
    }
}

fn bench_debitcredit() {
    for (name, sql_path) in [("sql_txn", true), ("enscribe_txn", false)] {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let bank = Bank::create(&db, 1, 200, "$DATA1").unwrap();
        let session = db.session();
        let mut rng = SimRng::seed_from(9);
        bench("debitcredit", name, 100, || {
            let (aid, tid, bid, delta) = bank.draw(&mut rng);
            let txn = db.txnmgr.begin();
            if sql_path {
                bank.debit_credit_sql(session.fs(), txn, aid, tid, bid, delta)
                    .unwrap();
            } else {
                bank.debit_credit_enscribe(session.fs(), txn, aid, tid, bid, delta)
                    .unwrap();
            }
            db.txnmgr.commit(txn, session.cpu()).unwrap();
        });
    }
}

fn bench_group_commit() {
    use nsql_lock::TxnId;
    use nsql_tmf::{CommitTimer, LsnSource, Trail, TrailRequest};

    let sim = nsql_sim::Sim::new();
    let trail = Trail::new(
        sim.clone(),
        LsnSource::new(),
        CommitTimer::Adaptive {
            min: 500,
            max: 20_000,
            target_group: 8,
        },
    );
    let mut i = 0u64;
    bench("group_commit", "commit_arrivals_adaptive", 1_000, || {
        i += 1;
        trail.apply(TrailRequest::Commit { txn: TxnId(i) });
        sim.clock.advance(1_000);
    });
}

fn bench_btree() {
    use nsql_btree::{BTreeFile, MemStore};

    bench("btree", "insert_4k_blocks", 20, || {
        let store = MemStore::new();
        let root = BTreeFile::create(&store);
        let tree = BTreeFile::open(&store, root);
        for i in 0..1_000u32 {
            tree.insert(&i.to_be_bytes(), &[0u8; 100]).unwrap();
        }
    });
    {
        let store = MemStore::new();
        let root = BTreeFile::create(&store);
        let tree = BTreeFile::open(&store, root);
        for i in 0..10_000u32 {
            tree.insert(&i.to_be_bytes(), &[0u8; 100]).unwrap();
        }
        let mut i = 0u32;
        bench("btree", "point_get", 10_000, || {
            i = (i + 7919) % 10_000;
            assert!(tree.get(&i.to_be_bytes()).is_some());
        });
    }
}

fn bench_blocked_insert() {
    for (name, blocked) in [("per_record_1k", false), ("blocked_1k", true)] {
        bench("blocked_insert", name, 10, || {
            let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
            let mut s = db.session();
            s.execute("CREATE TABLE L (K INT NOT NULL, PRIMARY KEY (K))")
                .unwrap();
            let info = db.catalog.table("L").unwrap();
            let txn = db.txnmgr.begin();
            if blocked {
                let mut ins = nsql_fs::BlockedInserter::new(s.fs(), &info.open, txn);
                for k in 0..1_000 {
                    ins.push(&[Value::Int(k)]).unwrap();
                }
                ins.flush().unwrap();
            } else {
                for k in 0..1_000 {
                    s.fs()
                        .insert_row(txn, &info.open, &[Value::Int(k)])
                        .unwrap();
                }
            }
            db.txnmgr.commit(txn, s.cpu()).unwrap();
        });
    }
}

fn bench_recovery() {
    bench("recovery", "crash_recover_1k_rows", 10, || {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let mut s = db.session();
        s.execute("CREATE TABLE T (K INT NOT NULL, V INT NOT NULL, PRIMARY KEY (K))")
            .unwrap();
        let info = db.catalog.table("T").unwrap();
        let txn = db.txnmgr.begin();
        {
            let mut ins = nsql_fs::BlockedInserter::new(s.fs(), &info.open, txn);
            for k in 0..1_000 {
                ins.push(&[Value::Int(k), Value::Int(k)]).unwrap();
            }
            ins.flush().unwrap();
        }
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        db.crash_and_recover_all();
        let r = s.query("SELECT COUNT(*) FROM T").unwrap();
        assert_eq!(r.rows[0].0[0], Value::LargeInt(1_000));
    });
}

fn main() {
    bench_scan_interfaces();
    bench_update_pushdown();
    bench_debitcredit();
    bench_group_commit();
    bench_btree();
    bench_blocked_insert();
    bench_recovery();
}
