//! The experiment harness: one function per experiment of DESIGN.md §4.
//!
//! Every experiment builds a fresh deterministic cluster, runs a workload,
//! and reports the counters the paper argues about (FS-DP messages, bytes,
//! disk I/O, audit volume, CPU work units, virtual elapsed time). Each
//! function returns the rendered report so tests can assert on the shapes.

use crate::report::{ms, ratio, Table};
use nsql_core::{Cluster, ClusterBuilder, DiskProcessConfig, FaultConfig, GroupCommitTimer};
use nsql_sim::{MetricsSnapshot, SimRng};
use nsql_workloads::{Bank, Wisconsin};

/// Run one experiment by id (`"e1"`..`"e22"`), all with `"all"`, the
/// chaos harness with `"chaos"`, or the exhaustive contention grid with
/// `"load"`.
pub fn run(which: &str) -> String {
    if which == "chaos" {
        return crate::chaos::run_chaos();
    }
    if which == "load" {
        return load_sweep();
    }
    type ExperimentFn = fn() -> String;
    let all: Vec<(&str, ExperimentFn)> = vec![
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
        ("e14", e14),
        ("e15", e15),
        ("e16", e16),
        ("e17", e17),
        ("e18", e18),
        ("e19", e19),
        ("e20", e20),
        ("e21", e21),
        ("e22", e22),
    ];
    if which == "all" {
        return all.iter().map(|(_, f)| f()).collect::<Vec<_>>().join("\n");
    }
    for (id, f) in &all {
        if *id == which {
            return f();
        }
    }
    format!("unknown experiment {which}; try e1..e22, all, chaos, or load\n")
}

/// Run the experiments that feed `BENCH_results.json` and render them as a
/// JSON array, one record per experiment (see EXPERIMENTS.md for the
/// schema).
pub fn run_json() -> String {
    let (e22_series, e22_cdf) = e22_tables();
    let records = [
        e2_table().to_json("e2"),
        e4_table().to_json("e4"),
        e6_table().to_json("e6"),
        e9_table().to_json("e9"),
        e17_table().to_json("e17"),
        e18_table().to_json("e18"),
        e19_table().to_json("e19"),
        e20_table().to_json("e20"),
        e21_table().to_json("e21"),
        e22_series.to_json("e22"),
        e22_cdf.to_json("e22cdf"),
        measure_record(),
    ];
    format!("[\n{}\n]\n", records.join(",\n"))
}

fn d(db: &Cluster, before: &MetricsSnapshot) -> MetricsSnapshot {
    db.metrics().since(before)
}

/// Drop every volume's cache (cold-cache scans) after flushing dirt.
/// Catalog lookup for a table the experiment itself just created; a miss
/// is a harness bug, so this is the one sanctioned panic for it.
fn table_info(db: &Cluster, name: &str) -> nsql_sql::TableInfo {
    db.catalog.table(name).unwrap()
}

fn cold_caches(db: &Cluster) {
    for v in db.volumes() {
        let dp = db.dp(&v);
        dp.pool().flush_all().expect("flush");
        dp.pool().crash();
    }
}

// ----------------------------------------------------------------------
// E1 — Figure 1: architecture, distribution of data and execution
// ----------------------------------------------------------------------

/// Two nodes, four CPUs, a table partitioned across both nodes; shows that
/// execution is distributed and that remote partitions cost remote
/// messages.
pub fn e1() -> String {
    let db = ClusterBuilder::new()
        .volume("$DATA1", 0, 1)
        .volume("$DATA2", 0, 2)
        .volume("$REMOTE1", 1, 0)
        .volume("$REMOTE2", 1, 1)
        .build();
    let w = Wisconsin::create(
        &db,
        "WISC",
        4000,
        &["$DATA1", "$DATA2", "$REMOTE1", "$REMOTE2"],
        1,
    )
    .unwrap();

    let mut t = Table::new(
        "E1 — Figure 1: two-node cluster, table partitioned over 4 volumes",
        &["volume", "node", "rows"],
    );
    let mut s = db.session();
    for (i, vol) in ["$DATA1", "$DATA2", "$REMOTE1", "$REMOTE2"]
        .iter()
        .enumerate()
    {
        let lo = i as u32 * 1000;
        let hi = lo + 999;
        let r = s
            .query(&format!(
                "SELECT COUNT(*) FROM WISC WHERE UNIQUE2 BETWEEN {lo} AND {hi}"
            ))
            .unwrap();
        t.row(vec![
            vol.to_string(),
            if vol.starts_with("$R") { "1" } else { "0" }.into(),
            r.rows[0].0[0].to_string(),
        ]);
    }

    let before = db.snapshot();
    let t0 = db.sim.now();
    let n = w.run_count(&db, &w.q_scan_all()).unwrap();
    let delta = d(&db, &before);
    let mut t2 = Table::new(
        "E1 — full scan from a session on node 0",
        &["metric", "value"],
    );
    t2.row(vec!["rows returned".into(), n.to_string()]);
    t2.row(vec!["FS-DP messages".into(), delta.msgs_fs_dp.to_string()]);
    t2.row(vec![
        "messages crossing nodes".into(),
        delta.msgs_remote.to_string(),
    ]);
    t2.row(vec!["virtual elapsed".into(), ms(db.sim.now() - t0)]);
    t2.note("Half the partitions live on node 1: the requester reaches them only via inter-node messages, which is why the paper pushes selection to the data.");
    format!("{}{}", t.render(), t2.render())
}

// ----------------------------------------------------------------------
// E2 — record-at-a-time vs RSBB vs VSBB
// ----------------------------------------------------------------------

/// The headline claim: "RSBB gives a factor of three over the record-at-a-
/// time interface. VSBB gives NonStop SQL an additional factor of three
/// over RSBB."
pub fn e2() -> String {
    e2_table().render()
}

fn e2_table() -> Table {
    use nsql_dp::{ReadLock, SubsetMode};
    use nsql_records::{CmpOp, Expr, KeyRange, Value};

    let rows = 10_000u32;
    let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
    let _w = Wisconsin::create(&db, "WISC", rows, &["$DATA1"], 2).unwrap();
    let info = table_info(&db, "WISC");
    let of = &info.open;
    let session = db.session();
    let fs = session.fs();

    let mut t = Table::new(
        format!("E2 — sequential read interfaces, {rows}-row Wisconsin table (≈208 B records)"),
        &[
            "interface",
            "rows",
            "FS-DP msgs",
            "msg bytes",
            "elapsed",
            "msgs vs RAT",
            "mean B/msg",
        ],
    );

    // Record-at-a-time (the old ENSCRIBE discipline).
    cold_caches(&db);
    let before = db.snapshot();
    let t0 = db.sim.now();
    let mut cur = fs.ens_open(of, None);
    let mut n = 0u32;
    while fs.ens_read_next(&mut cur).unwrap().is_some() {
        n += 1;
    }
    let rat = d(&db, &before);
    let rat_time = db.sim.now() - t0;
    t.row(vec![
        "record-at-a-time".into(),
        n.to_string(),
        rat.msgs_fs_dp.to_string(),
        rat.msg_bytes_total.to_string(),
        ms(rat_time),
        "1.0x".into(),
        format!("{:.0}", rat.mean_bytes_per_message()),
    ]);

    // RSBB: one physical block copy per message.
    cold_caches(&db);
    let txn = db.txnmgr.begin();
    let before = db.snapshot();
    let t0 = db.sim.now();
    let mut cur = fs.ens_open_sbb(of, txn).unwrap();
    let mut n = 0u32;
    while fs.ens_read_next(&mut cur).unwrap().is_some() {
        n += 1;
    }
    let rsbb = d(&db, &before);
    let rsbb_time = db.sim.now() - t0;
    db.txnmgr.commit(txn, session.cpu()).unwrap();
    t.row(vec![
        "RSBB (block buffering)".into(),
        n.to_string(),
        rsbb.msgs_fs_dp.to_string(),
        rsbb.msg_bytes_total.to_string(),
        ms(rsbb_time),
        ratio(rat.msgs_fs_dp, rsbb.msgs_fs_dp),
        format!("{:.0}", rsbb.mean_bytes_per_message()),
    ]);

    // VSBB with a selective predicate and 2-field projection — the
    // Wisconsin selection shape the paper cites.
    cold_caches(&db);
    let before = db.snapshot();
    let t0 = db.sim.now();
    let scan = fs
        .scan(
            None,
            of,
            &KeyRange::all(),
            Some(&Expr::field_cmp(1, CmpOp::Lt, Value::Int(rows as i32 / 10))),
            Some(&[0, 1]),
            SubsetMode::Vsbb,
            ReadLock::None,
        )
        .unwrap();
    let vsbb = d(&db, &before);
    let vsbb_time = db.sim.now() - t0;
    t.row(vec![
        "VSBB (10% select + project)".into(),
        scan.rows.len().to_string(),
        vsbb.msgs_fs_dp.to_string(),
        vsbb.msg_bytes_total.to_string(),
        ms(vsbb_time),
        ratio(rat.msgs_fs_dp, vsbb.msgs_fs_dp),
        format!("{:.0}", vsbb.mean_bytes_per_message()),
    ]);

    t.note(format!(
        "RSBB carries {} over record-at-a-time on raw FS-DP messages (the paper's end-to-end \
         factor of three blends fixed CPU costs); VSBB adds another {} by filtering and \
         projecting at the data source.",
        ratio(rat.msgs_fs_dp, rsbb.msgs_fs_dp),
        ratio(rsbb.msgs_fs_dp, vsbb.msgs_fs_dp),
    ));
    t.note(format!(
        "Elapsed (virtual) time tells the blended story: {} / {} / {} — ratios {} and {}.",
        ms(rat_time),
        ms(rsbb_time),
        ms(vsbb_time),
        ratio(rat_time, rsbb_time),
        ratio(rsbb_time, vsbb_time),
    ));
    t
}

// ----------------------------------------------------------------------
// E3 — Wisconsin query suite across interfaces
// ----------------------------------------------------------------------

/// The Wisconsin selections/projections through the SQL planner (VSBB/RSBB
/// chosen automatically) vs the forced record-at-a-time interface.
pub fn e3() -> String {
    let db = ClusterBuilder::new()
        .volume("$DATA1", 0, 1)
        .volume("$IDX", 0, 2)
        .build();
    let w = Wisconsin::create(&db, "WISC", 10_000, &["$DATA1"], 3).unwrap();
    {
        let mut s = db.session();
        s.execute("CREATE INDEX WISC_U1 ON WISC (UNIQUE1) ON '$IDX'")
            .unwrap();
    }

    let w2 = Wisconsin::create(&db, "WISC2", 10_000, &["$DATA1"], 13).unwrap();
    let queries: Vec<(&str, String)> = vec![
        ("1% clustered selection", w.q_select_1pct_clustered()),
        ("10% clustered selection", w.q_select_10pct_clustered()),
        ("1% non-clustered (indexed)", w.q_select_1pct_nonclustered()),
        ("1% projection (2 cols)", w.q_project_1pct()),
        ("grouped MIN aggregate", w.q_agg_min_grouped()),
        ("1% join to second relation", w.q_join_1pct(&w2)),
    ];

    let mut t = Table::new(
        "E3 — Wisconsin queries: set-oriented interface vs record-at-a-time",
        &[
            "query",
            "rows",
            "msgs (set)",
            "bytes (set)",
            "msgs (RAT)",
            "bytes (RAT)",
            "msg ratio",
        ],
    );
    for (name, sql) in queries {
        let mut s = db.session();
        let before = db.snapshot();
        let rows = s.query(&sql).unwrap().rows.len();
        let set = d(&db, &before);
        let before = db.snapshot();
        let _ = s.query(&format!("{sql} FOR BROWSE RECORD ACCESS")).unwrap();
        let rat = d(&db, &before);
        t.row(vec![
            name.into(),
            rows.to_string(),
            set.msgs_fs_dp.to_string(),
            set.msg_bytes_total.to_string(),
            rat.msgs_fs_dp.to_string(),
            rat.msg_bytes_total.to_string(),
            ratio(rat.msgs_fs_dp, set.msgs_fs_dp),
        ]);
    }
    t.note("The selective queries show the VSBB advantage the paper cites on 'many of the Wisconsin benchmark queries'; the indexed non-clustered selection also avoids scanning entirely.");
    t.render()
}

// ----------------------------------------------------------------------
// E4 — update-expression pushdown
// ----------------------------------------------------------------------

/// `UPDATE ACCOUNT SET BALANCE = BALANCE * 1.07 WHERE BALANCE > 0` three
/// ways: set-oriented pushdown, per-record pushdown, ENSCRIBE
/// read-then-write.
pub fn e4() -> String {
    e4_table().render()
}

fn e4_table() -> Table {
    use nsql_records::{ArithOp, Expr, SetList, Value};

    let n_accounts = 2_000i32;
    let build = || {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let mut s = db.session();
        s.execute(
            "CREATE TABLE ACCOUNT (ACCTNO INT NOT NULL, BALANCE DOUBLE NOT NULL, \
             FILLER CHAR(84) NOT NULL, PRIMARY KEY (ACCTNO))",
        )
        .unwrap();
        let info = table_info(&db, "ACCOUNT");
        let txn = db.txnmgr.begin();
        {
            let mut ins = nsql_fs::BlockedInserter::new(s.fs(), &info.open, txn);
            for i in 0..n_accounts {
                ins.push(&[
                    Value::Int(i),
                    Value::Double(100.0),
                    Value::Str("F".repeat(84)),
                ])
                .unwrap();
            }
            ins.flush().unwrap();
        }
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        drop(s);
        db
    };

    let mut t = Table::new(
        format!("E4 — interest posting over {n_accounts} accounts"),
        &["method", "updated", "FS-DP msgs", "audit bytes", "elapsed"],
    );

    // (a) Set-oriented UPDATE^SUBSET (the paper's example 3).
    {
        let db = build();
        let mut s = db.session();
        let before = db.snapshot();
        let t0 = db.sim.now();
        let n = s
            .execute("UPDATE ACCOUNT SET BALANCE = BALANCE * 1.07 WHERE BALANCE > 0")
            .unwrap()
            .count();
        let delta = d(&db, &before);
        t.row(vec![
            "UPDATE^SUBSET (set-oriented pushdown)".into(),
            n.to_string(),
            delta.msgs_fs_dp.to_string(),
            delta.audit_bytes.to_string(),
            ms(db.sim.now() - t0),
        ]);
    }

    // (b) Per-record update with expression pushdown (1 msg/record).
    {
        let db = build();
        let s = db.session();
        let info = table_info(&db, "ACCOUNT");
        let sets = SetList {
            sets: vec![(
                1,
                Expr::Arith(
                    Box::new(Expr::Field(1)),
                    ArithOp::Mul,
                    Box::new(Expr::lit(Value::Double(1.07))),
                ),
            )],
        };
        let before = db.snapshot();
        let t0 = db.sim.now();
        let txn = db.txnmgr.begin();
        for i in 0..n_accounts {
            let key = nsql_records::key::encode_record_key(
                &info.open.desc,
                &[Value::Int(i), Value::Double(0.0), Value::Str(String::new())],
            );
            s.fs()
                .update_by_key(txn, &info.open, &key, &sets, None)
                .unwrap();
        }
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        let delta = d(&db, &before);
        t.row(vec![
            "per-record UPDATE w/ expression".into(),
            n_accounts.to_string(),
            delta.msgs_fs_dp.to_string(),
            delta.audit_bytes.to_string(),
            ms(db.sim.now() - t0),
        ]);
    }

    // (c) ENSCRIBE: READ then WRITE per record, full-image audit.
    {
        let db = build();
        let s = db.session();
        let info = table_info(&db, "ACCOUNT");
        let before = db.snapshot();
        let t0 = db.sim.now();
        let txn = db.txnmgr.begin();
        for i in 0..n_accounts {
            let key = nsql_records::key::encode_record_key(
                &info.open.desc,
                &[Value::Int(i), Value::Double(0.0), Value::Str(String::new())],
            );
            let old = s
                .fs()
                .ens_read(Some(txn), &info.open, &key, nsql_dp::ReadLock::Shared)
                .unwrap()
                .unwrap();
            let mut new = old.0.clone();
            let Value::Double(b) = new[1] else { panic!() };
            new[1] = Value::Double(b * 1.07);
            s.fs().ens_rewrite(txn, &info.open, &old.0, &new).unwrap();
        }
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        let delta = d(&db, &before);
        t.row(vec![
            "ENSCRIBE read-then-write".into(),
            n_accounts.to_string(),
            delta.msgs_fs_dp.to_string(),
            delta.audit_bytes.to_string(),
            ms(db.sim.now() - t0),
        ]);
    }
    t.note("Shipping the update expression eliminates the read-before-write message; shipping the whole subset eliminates the per-record messages too. Field-compressed audit shrinks audit volume alongside.");
    t
}

// ----------------------------------------------------------------------
// E5 — Figure 2: access via alternate key
// ----------------------------------------------------------------------

/// Point read and update through a secondary index: the two-message
/// pattern of Figure 2.
pub fn e5() -> String {
    use nsql_records::{Expr, SetList, Value};

    let db = ClusterBuilder::new()
        .volume("$DATA1", 0, 1)
        .volume("$IDX", 0, 2)
        .build();
    let mut s = db.session();
    s.execute(
        "CREATE TABLE EMP (EMPNO INT NOT NULL, NAME CHAR(12) NOT NULL, \
         SALARY DOUBLE NOT NULL, PRIMARY KEY (EMPNO)) ON '$DATA1'",
    )
    .unwrap();
    for i in 0..500 {
        s.execute(&format!("INSERT INTO EMP VALUES ({i}, 'E{i:05}', 1000)"))
            .unwrap();
    }
    s.execute("CREATE UNIQUE INDEX EMP_NAME ON EMP (NAME) ON '$IDX'")
        .unwrap();

    let mut t = Table::new(
        "E5 — Figure 2: operations via alternate (secondary) key",
        &["operation", "FS-DP msgs", "sequence"],
    );

    // Read via alternate key.
    let before = db.snapshot();
    let r = s
        .query("SELECT SALARY FROM EMP WHERE NAME = 'E00123'")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    let delta = d(&db, &before);
    t.row(vec![
        "read via alternate key".into(),
        delta.msgs_fs_dp.to_string(),
        "index DP (find primary key) → base DP (read record)".into(),
    ]);

    // Update via alternate key: find the primary key through the index,
    // then ship the update expression to the base partition.
    let info = table_info(&db, "EMP");
    let idx = info.open.indexes[0].clone();
    let before = db.snapshot();
    let txn = db.txnmgr.begin();
    let prefix = nsql_records::key::encode_key_prefix(&[(
        nsql_records::FieldType::Char(12),
        Value::Str("E00123".into()),
    )]);
    let entries = s
        .fs()
        .scan_index(
            Some(txn),
            &idx,
            &nsql_records::KeyRange::prefix(prefix),
            None,
            nsql_dp::ReadLock::Shared,
        )
        .unwrap();
    let base_key = idx.base_key_from_index_row(&info.open.desc, &entries[0].0);
    s.fs()
        .update_by_key(
            txn,
            &info.open,
            &base_key,
            &SetList {
                sets: vec![(2, Expr::lit(Value::Double(2000.0)))],
            },
            None,
        )
        .unwrap();
    db.txnmgr.commit(txn, s.cpu()).unwrap();
    let delta = d(&db, &before);
    t.row(vec![
        "update via alternate key".into(),
        delta.msgs_fs_dp.to_string(),
        "index DP (find primary key) → base DP (update expression)".into(),
    ]);
    t.note("Exactly the message flow of the paper's Figure 2: the File System first asks the index's Disk Process, then sends the operation to the Disk Process managing the primary-key partition.");
    t.render()
}

// ----------------------------------------------------------------------
// E6 — field-compressed audit
// ----------------------------------------------------------------------

/// One-field updates of ~190-byte records, audited with ENSCRIBE full
/// images vs SQL field compression.
pub fn e6() -> String {
    e6_table().render()
}

fn e6_table() -> Table {
    use nsql_records::{ArithOp, Expr, SetList, Value};

    let updates = 400i32;
    let build = || {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let mut s = db.session();
        s.execute(
            "CREATE TABLE ACCT (ID INT NOT NULL, BALANCE DOUBLE NOT NULL, \
             FILLER CHAR(180) NOT NULL, PRIMARY KEY (ID))",
        )
        .unwrap();
        let info = table_info(&db, "ACCT");
        let txn = db.txnmgr.begin();
        {
            let mut ins = nsql_fs::BlockedInserter::new(s.fs(), &info.open, txn);
            for i in 0..updates {
                ins.push(&[
                    Value::Int(i),
                    Value::Double(100.0),
                    Value::Str("F".repeat(180)),
                ])
                .unwrap();
            }
            ins.flush().unwrap();
        }
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        drop(s);
        db
    };

    let mut t = Table::new(
        format!("E6 — audit volume for {updates} one-field updates of ~190 B records (one txn per update)"),
        &[
            "audit mode",
            "audit bytes",
            "audit msgs to trail",
            "DP CPU work",
            "bytes/update",
        ],
    );

    // ENSCRIBE updates: by default full images, optionally with the costly
    // audit-compression option (the DP diffs the before/after images).
    for (label, mode) in [
        ("ENSCRIBE full-record images", nsql_dp::AuditMode::FullImage),
        (
            "ENSCRIBE audit-compression option (image diff at DP)",
            nsql_dp::AuditMode::FieldCompressed,
        ),
    ] {
        let db = build();
        let s = db.session();
        let info = table_info(&db, "ACCT");
        let before = db.snapshot();
        for i in 0..updates {
            let key = nsql_records::key::encode_record_key(
                &info.open.desc,
                &[Value::Int(i), Value::Double(0.0), Value::Str(String::new())],
            );
            let txn = db.txnmgr.begin();
            let old = s
                .fs()
                .ens_read(Some(txn), &info.open, &key, nsql_dp::ReadLock::Shared)
                .unwrap()
                .unwrap();
            let mut new = old.0.clone();
            let Value::Double(b) = new[1] else { panic!() };
            new[1] = Value::Double(b + 1.0);
            let record = nsql_records::row::encode_row(&info.open.desc, &new).unwrap();
            s.fs()
                .send(
                    &info.open.partitions[0].process,
                    nsql_dp::DpRequest::UpdateRecord {
                        txn,
                        file: info.open.partitions[0].file,
                        key,
                        record,
                        audit: mode,
                    },
                )
                .unwrap();
            db.txnmgr.commit(txn, s.cpu()).unwrap();
        }
        let delta = d(&db, &before);
        t.row(vec![
            label.into(),
            delta.audit_bytes.to_string(),
            delta.msgs_audit.to_string(),
            delta.cpu_dp.to_string(),
            format!("{:.0}", delta.audit_bytes_per_txn()),
        ]);
    }

    // SQL field-compressed updates.
    {
        let db = build();
        let s = db.session();
        let info = table_info(&db, "ACCT");
        let sets = SetList {
            sets: vec![(
                1,
                Expr::Arith(
                    Box::new(Expr::Field(1)),
                    ArithOp::Add,
                    Box::new(Expr::lit(Value::Double(1.0))),
                ),
            )],
        };
        let before = db.snapshot();
        for i in 0..updates {
            let key = nsql_records::key::encode_record_key(
                &info.open.desc,
                &[Value::Int(i), Value::Double(0.0), Value::Str(String::new())],
            );
            let txn = db.txnmgr.begin();
            s.fs()
                .update_by_key(txn, &info.open, &key, &sets, None)
                .unwrap();
            db.txnmgr.commit(txn, s.cpu()).unwrap();
        }
        let delta = d(&db, &before);
        t.row(vec![
            "SQL field-compressed images (free: syntax names fields)".into(),
            delta.audit_bytes.to_string(),
            delta.msgs_audit.to_string(),
            delta.cpu_dp.to_string(),
            format!("{:.0}", delta.audit_bytes_per_txn()),
        ]);
    }
    t.note("SQL syntax names the updated fields, so field-compressed audit is free; ENSCRIBE's optional compression must diff full images at the Disk Process ('its implementation is costly since the identity of the updated fields must be computed by comparing the record before- and after-images') — and the SQL path also saves the read-before-write message.");
    t
}

// ----------------------------------------------------------------------
// E7 — group commit and adaptive timers
// ----------------------------------------------------------------------

/// Synthetic commit arrival streams against the audit trail: commits per
/// flush and response time under fixed and adaptive timers.
pub fn e7() -> String {
    use nsql_lock::TxnId;
    use nsql_sim::Sim;
    use nsql_tmf::{LsnSource, Trail, TrailReply, TrailRequest};

    let mut t = Table::new(
        "E7 — group commit: 500 commits at each arrival rate",
        &[
            "timer",
            "inter-arrival",
            "flushes",
            "commits/flush",
            "mean latency",
        ],
    );

    let run = |timer: GroupCommitTimer, gap_us: u64| -> (u64, f64, u64) {
        let sim = Sim::new();
        let trail = Trail::new(sim.clone(), LsnSource::new(), timer);
        let n = 500u64;
        let mut total_latency = 0u64;
        for i in 0..n {
            let submit = sim.now();
            let TrailReply::Committed { completion } =
                trail.apply(TrailRequest::Commit { txn: TxnId(i) })
            else {
                panic!()
            };
            total_latency += completion.saturating_sub(submit);
            sim.clock.advance(gap_us);
        }
        sim.clock.advance(1_000_000);
        trail.durable_lsn(sim.now()); // settle the final group
        let flushes = sim.metrics.audit_flushes.get();
        (flushes, n as f64 / flushes as f64, total_latency / n)
    };

    for (name, timer) in [
        ("fixed 1 ms", GroupCommitTimer::Fixed(1_000)),
        ("fixed 10 ms", GroupCommitTimer::Fixed(10_000)),
        (
            "adaptive (target 8)",
            GroupCommitTimer::Adaptive {
                min: 500,
                max: 20_000,
                target_group: 8,
            },
        ),
    ] {
        for gap in [200u64, 2_000, 20_000] {
            let (flushes, per, latency) = run(timer, gap);
            t.row(vec![
                name.into(),
                ms(gap),
                flushes.to_string(),
                format!("{per:.1}"),
                ms(latency),
            ]);
        }
    }
    t.note("High arrival rates want a long timer (big groups, few audit writes); low rates want a short one (latency). The adaptive timer tracks the arrival rate and gets both — the [Helland] mechanism.");
    t.render()
}

// ----------------------------------------------------------------------
// E8 — bulk I/O, pre-fetch, write-behind
// ----------------------------------------------------------------------

/// A cold full-table scan with cache optimizations toggled, plus a subset
/// update with and without write-behind.
pub fn e8() -> String {
    let rows = 5_000u32;
    let scan_with = |bulk: bool, prefetch: bool| -> (MetricsSnapshot, u64) {
        let config = DiskProcessConfig {
            bulk_io: bulk,
            prefetch,
            cache_frames: 64, // smaller than the table: real I/O happens
            ..DiskProcessConfig::default()
        };
        let db = ClusterBuilder::new()
            .dp_config(config)
            .volume("$DATA1", 0, 1)
            .build();
        let w = Wisconsin::create(&db, "WISC", rows, &["$DATA1"], 4).unwrap();
        cold_caches(&db);
        let before = db.snapshot();
        let t0 = db.sim.now();
        let n = w.run_count(&db, &w.q_scan_all()).unwrap();
        assert_eq!(n, rows as usize);
        (db.metrics().since(&before), db.sim.now() - t0)
    };

    let mut t = Table::new(
        format!(
            "E8a — cold sequential scan of {rows} rows (~280 blocks), cache optimizations toggled"
        ),
        &[
            "configuration",
            "disk reads",
            "blocks read",
            "blocks/read",
            "prefetch hits",
            "elapsed",
        ],
    );
    for (name, bulk, prefetch) in [
        ("block-at-a-time", false, false),
        ("+ bulk I/O", true, false),
        ("+ bulk I/O + pre-fetch", true, true),
    ] {
        let (m, elapsed) = scan_with(bulk, prefetch);
        t.row(vec![
            name.into(),
            m.disk_reads.to_string(),
            m.disk_blocks_read.to_string(),
            format!(
                "{:.1}",
                m.disk_blocks_read as f64 / m.disk_reads.max(1) as f64
            ),
            m.prefetch_hits.to_string(),
            ms(elapsed),
        ]);
    }
    t.note("Advance knowledge of the key span lets the Disk Process read 7-block strings with one positioning delay each, and pre-fetch overlaps those reads with per-record CPU work.");

    // Write-behind: a subset update leaves dirty strings; with write-behind
    // they go out as asynchronous bulk writes during idle time.
    let update_with = |write_behind: bool| -> MetricsSnapshot {
        let config = DiskProcessConfig {
            write_behind,
            ..DiskProcessConfig::default()
        };
        let db = ClusterBuilder::new()
            .dp_config(config)
            .volume("$DATA1", 0, 1)
            .build();
        let w = Wisconsin::create(&db, "WISC", rows, &["$DATA1"], 4).unwrap();
        let mut s = db.session();
        let before = db.snapshot();
        s.execute(&format!(
            "UPDATE WISC SET THOUSAND = THOUSAND + 1 WHERE UNIQUE2 < {}",
            rows / 2
        ))
        .unwrap();
        let _ = w;
        db.metrics().since(&before)
    };
    let mut t2 = Table::new(
        "E8b — subset update: write-behind of aged dirty strings",
        &[
            "configuration",
            "write-behind writes",
            "blocks written",
            "bulk I/Os",
        ],
    );
    for (name, wb) in [("write-behind off", false), ("write-behind on", true)] {
        let m = update_with(wb);
        t2.row(vec![
            name.into(),
            m.writebehind_writes.to_string(),
            m.disk_blocks_written.to_string(),
            m.disk_bulk_ios.to_string(),
        ]);
    }
    t2.note("With write-behind on, strings of sequentially-dirtied blocks whose audit is already durable are written with asynchronous bulk I/O instead of waiting to be stolen one by one.");
    format!("{}{}", t.render(), t2.render())
}

// ----------------------------------------------------------------------
// E9 — DebitCredit: SQL vs ENSCRIBE
// ----------------------------------------------------------------------

/// The paper's bottom line: "an SQL system which today matches ... the
/// performance of its pre-existing DBMS."
pub fn e9() -> String {
    e9_table().render()
}

fn e9_table() -> Table {
    use nsql_sim::SimRng;

    let txns = 300u32;
    let run = |sql_path: bool| -> (MetricsSnapshot, u64) {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let bank = Bank::create(&db, 2, 500, "$DATA1").unwrap();
        let s = db.session();
        let mut rng = SimRng::seed_from(5);
        let before = db.snapshot();
        let t0 = db.sim.now();
        for _ in 0..txns {
            let (aid, tid, bid, delta) = bank.draw(&mut rng);
            let txn = db.txnmgr.begin();
            if sql_path {
                bank.debit_credit_sql(s.fs(), txn, aid, tid, bid, delta)
                    .unwrap();
            } else {
                bank.debit_credit_enscribe(s.fs(), txn, aid, tid, bid, delta)
                    .unwrap();
            }
            db.txnmgr.commit(txn, s.cpu()).unwrap();
        }
        (db.metrics().since(&before), db.sim.now() - t0)
    };

    let (sql, sql_time) = run(true);
    let (ens, ens_time) = run(false);

    let mut t = Table::new(
        format!("E9 — DebitCredit, {txns} transactions (2 branches x 500 accounts)"),
        &["metric", "NonStop SQL", "ENSCRIBE", "SQL/ENSCRIBE"],
    );
    let mut push = |name: &str, a: u64, b: u64| {
        t.row(vec![
            name.into(),
            a.to_string(),
            b.to_string(),
            format!("{:.2}", a as f64 / b.max(1) as f64),
        ]);
    };
    push("FS-DP messages", sql.msgs_fs_dp, ens.msgs_fs_dp);
    push("message bytes", sql.msg_bytes_total, ens.msg_bytes_total);
    push("audit bytes", sql.audit_bytes, ens.audit_bytes);
    push("audit messages", sql.msgs_audit, ens.msgs_audit);
    push("disk writes", sql.disk_writes, ens.disk_writes);
    push(
        "CPU work (executor+FS)",
        sql.cpu_executor + sql.cpu_fs,
        ens.cpu_executor + ens.cpu_fs,
    );
    push("CPU work (Disk Process)", sql.cpu_dp, ens.cpu_dp);
    push("virtual elapsed (µs)", sql_time, ens_time);
    let mut derived = |name: &str, a: f64, b: f64| {
        t.row(vec![
            name.into(),
            format!("{a:.1}"),
            format!("{b:.1}"),
            if b == 0.0 {
                "-".into()
            } else {
                format!("{:.2}", a / b)
            },
        ]);
    };
    derived(
        "mean bytes/message",
        sql.mean_bytes_per_message(),
        ens.mean_bytes_per_message(),
    );
    derived(
        "audit bytes/txn",
        sql.audit_bytes_per_txn(),
        ens.audit_bytes_per_txn(),
    );
    derived(
        "cache hit rate (%)",
        100.0 * sql.cache_hit_rate(),
        100.0 * ens.cache_hit_rate(),
    );
    t.note(format!(
        "Per-transaction virtual time: SQL {} vs ENSCRIBE {} — the SQL path matches the \
         pre-existing DBMS (and beats it on messages and audit volume) exactly as the paper claims.",
        ms(sql_time / txns as u64),
        ms(ens_time / txns as u64)
    ));
    t
}

// ----------------------------------------------------------------------
// E10 — blocked inserts (future-work extension)
// ----------------------------------------------------------------------

/// Sequential load through per-record inserts vs the blocked-insert
/// interface.
pub fn e10() -> String {
    use nsql_records::Value;

    let rows = 10_000u32;
    let build = || {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let mut s = db.session();
        s.execute("CREATE TABLE LOAD (K INT NOT NULL, V CHAR(80) NOT NULL, PRIMARY KEY (K))")
            .unwrap();
        drop(s);
        db
    };
    let row = |k: u32| vec![Value::Int(k as i32), Value::Str("V".repeat(80))];

    let mut t = Table::new(
        format!("E10 — sequential load of {rows} records"),
        &["interface", "FS-DP msgs", "msg bytes", "elapsed"],
    );

    {
        let db = build();
        let s = db.session();
        let info = table_info(&db, "LOAD");
        let before = db.snapshot();
        let t0 = db.sim.now();
        let txn = db.txnmgr.begin();
        for k in 0..rows {
            s.fs().insert_row(txn, &info.open, &row(k)).unwrap();
        }
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        let m = d(&db, &before);
        t.row(vec![
            "per-record inserts".into(),
            m.msgs_fs_dp.to_string(),
            m.msg_bytes_total.to_string(),
            ms(db.sim.now() - t0),
        ]);
    }
    {
        let db = build();
        let s = db.session();
        let info = table_info(&db, "LOAD");
        let before = db.snapshot();
        let t0 = db.sim.now();
        let txn = db.txnmgr.begin();
        {
            let mut ins = nsql_fs::BlockedInserter::new(s.fs(), &info.open, txn);
            for k in 0..rows {
                ins.push(&row(k)).unwrap();
            }
            ins.flush().unwrap();
        }
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        let m = d(&db, &before);
        t.row(vec![
            "blocked inserts (extension)".into(),
            m.msgs_fs_dp.to_string(),
            m.msg_bytes_total.to_string(),
            ms(db.sim.now() - t0),
        ]);
    }
    t.note("The paper's 'Opportunities for Future Performance Enhancements': accumulating sequential inserts in a File System buffer and shipping them in one message reduces message traffic by the blocking factor.");

    // Part 2: UPDATE/DELETE WHERE CURRENT, per-record vs buffered.
    let cursor_rows = 2_000u32;
    let build_loaded = || {
        let db = build();
        let s = db.session();
        let info = table_info(&db, "LOAD");
        let txn = db.txnmgr.begin();
        {
            let mut ins = nsql_fs::BlockedInserter::new(s.fs(), &info.open, txn);
            for k in 0..cursor_rows {
                ins.push(&row(k)).unwrap();
            }
            ins.flush().unwrap();
        }
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        drop(s);
        db
    };
    let mut t2 = Table::new(
        format!(
            "E10b — cursor writes over {cursor_rows} rows (update every 2nd, delete every 4th)"
        ),
        &["interface", "FS-DP msgs", "elapsed"],
    );
    for buffered in [false, true] {
        let db = build_loaded();
        let s = db.session();
        let info = table_info(&db, "LOAD");
        let txn = db.txnmgr.begin();
        let scan = s
            .fs()
            .scan(
                Some(txn),
                &info.open,
                &nsql_records::KeyRange::all(),
                None,
                None,
                nsql_dp::SubsetMode::Vsbb,
                nsql_dp::ReadLock::Shared,
            )
            .unwrap();
        let before = db.snapshot();
        let t0 = db.sim.now();
        if buffered {
            let mut cur = nsql_fs::CursorUpdater::new(s.fs(), &info.open, txn);
            for (i, r) in scan.rows.iter().enumerate() {
                if i % 4 == 0 {
                    cur.delete(&r.0).unwrap();
                } else if i % 2 == 0 {
                    let mut new = r.0.clone();
                    new[1] = Value::Str("U".repeat(80));
                    cur.update(&r.0, &new).unwrap();
                }
            }
            cur.flush().unwrap();
        } else {
            for (i, r) in scan.rows.iter().enumerate() {
                let key = nsql_records::key::encode_record_key(&info.open.desc, &r.0);
                if i % 4 == 0 {
                    s.fs().delete_by_key(txn, &info.open, &key).unwrap();
                } else if i % 2 == 0 {
                    let mut new = r.0.clone();
                    new[1] = Value::Str("U".repeat(80));
                    s.fs().ens_rewrite(txn, &info.open, &r.0, &new).unwrap();
                }
            }
        }
        let m = d(&db, &before);
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        t2.row(vec![
            if buffered {
                "buffered WHERE CURRENT (extension)".into()
            } else {
                "per-record WHERE CURRENT".into()
            },
            m.msgs_fs_dp.to_string(),
            ms(db.sim.now() - t0),
        ]);
    }
    t2.note("The paper's second future-work item: cursor updates and deletes accumulate in a File System buffer and ship to each Disk Process in one message.");
    format!("{}{}", t.render(), t2.render())
}

// ----------------------------------------------------------------------
// E11 — continuation re-drive limits
// ----------------------------------------------------------------------

/// Sweep the per-request record limit: total messages vs the longest time
/// one request execution can monopolize the Disk Process.
pub fn e11() -> String {
    let rows = 10_000u32;
    let mut t = Table::new(
        format!("E11 — re-drive limit sweep over a {rows}-row unselective scan"),
        &[
            "records/request limit",
            "FS-DP msgs",
            "re-drives",
            "max records per execution",
        ],
    );
    for limit in [250u32, 1_000, 5_000, 20_000] {
        let config = DiskProcessConfig {
            max_records_per_request: limit,
            ..DiskProcessConfig::default()
        };
        let db = ClusterBuilder::new()
            .dp_config(config)
            .volume("$DATA1", 0, 1)
            .build();
        let w = Wisconsin::create(&db, "WISC", rows, &["$DATA1"], 6).unwrap();
        let mut s = db.session();
        let before = db.snapshot();
        // Selective predicate on an unindexed column: the whole table is
        // examined at the Disk Process, little is returned.
        let n = s
            .query(&format!(
                "SELECT UNIQUE2 FROM {} WHERE HUNDRED = 50",
                w.name
            ))
            .unwrap()
            .rows
            .len();
        assert_eq!(n, rows as usize / 100);
        let m = d(&db, &before);
        t.row(vec![
            limit.to_string(),
            m.msgs_fs_dp.to_string(),
            m.msgs_redrive.to_string(),
            m.dp_records_examined.min(limit as u64).to_string(),
        ]);
    }
    t.note("Low limits bound how long one set-oriented request occupies the Disk Process (good for concurrent requesters) at the price of re-drive messages; the limit is the paper's elapsed/processor-time limit.");
    t.render()
}

// ----------------------------------------------------------------------
// E12 — constraint pushdown
// ----------------------------------------------------------------------

/// `CHECK QUANTITY >= 0` enforced at the Disk Process vs verified by a
/// preliminary read at the requester.
pub fn e12() -> String {
    use nsql_records::{ArithOp, CmpOp, Expr, SetList, Value};

    let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
    let mut s = db.session();
    s.execute(
        "CREATE TABLE PART (PARTNO INT NOT NULL, QUANTITY INT NOT NULL, \
         PRIMARY KEY (PARTNO), CHECK (QUANTITY >= 0))",
    )
    .unwrap();
    for i in 0..100 {
        s.execute(&format!("INSERT INTO PART VALUES ({i}, 10)"))
            .unwrap();
    }
    let info = table_info(&db, "PART");
    let key = |i: i32| {
        nsql_records::key::encode_record_key(&info.open.desc, &[Value::Int(i), Value::Int(0)])
    };
    let sets = SetList {
        sets: vec![(
            1,
            Expr::Arith(
                Box::new(Expr::Field(1)),
                ArithOp::Sub,
                Box::new(Expr::lit(Value::Int(1))),
            ),
        )],
    };
    let constraint = Expr::field_cmp(1, CmpOp::Ge, Value::Int(0));

    let mut t = Table::new(
        "E12 — guarded decrement of PART.QUANTITY (100 updates)",
        &["method", "FS-DP msgs", "msgs/update"],
    );

    // (a) Constraint shipped with the update: one message.
    let before = db.snapshot();
    let txn = db.txnmgr.begin();
    for i in 0..100 {
        s.fs()
            .update_by_key(txn, &info.open, &key(i), &sets, Some(&constraint))
            .unwrap();
    }
    db.txnmgr.commit(txn, s.cpu()).unwrap();
    let pushed = d(&db, &before);
    t.row(vec![
        "CHECK at the Disk Process".into(),
        pushed.msgs_fs_dp.to_string(),
        format!("{:.1}", pushed.msgs_fs_dp as f64 / 100.0),
    ]);

    // (b) Requester-side verification: read, check locally, then update.
    let before = db.snapshot();
    let txn = db.txnmgr.begin();
    for i in 0..100 {
        let row = s
            .fs()
            .read_by_key(Some(txn), &info.open, &key(i), nsql_dp::ReadLock::Shared)
            .unwrap()
            .unwrap();
        let Value::Int(q) = row.0[1] else { panic!() };
        if q > 0 {
            s.fs()
                .update_by_key(txn, &info.open, &key(i), &sets, None)
                .unwrap();
        }
    }
    db.txnmgr.commit(txn, s.cpu()).unwrap();
    let local = d(&db, &before);
    t.row(vec![
        "preliminary read at requester".into(),
        local.msgs_fs_dp.to_string(),
        format!("{:.1}", local.msgs_fs_dp as f64 / 100.0),
    ]);

    // The pushdown really enforces: drive quantity to zero then underflow.
    let txn = db.txnmgr.begin();
    let mut rejected = false;
    for _ in 0..20 {
        match s
            .fs()
            .update_by_key(txn, &info.open, &key(0), &sets, Some(&constraint))
        {
            Ok(()) => {}
            Err(nsql_fs::FsError::Dp(nsql_dp::DpError::ConstraintViolation)) => {
                rejected = true;
                break;
            }
            Err(e) => panic!("{e}"),
        }
    }
    db.txnmgr.abort(txn, s.cpu()).unwrap();
    assert!(rejected, "constraint must eventually reject");
    t.note("Enforcing the integrity constraint at the Disk Process 'obviates the need for a preliminary read by the File System for constraint verification prior to an update request via a second message'.");
    t.render()
}

// ----------------------------------------------------------------------
// E13 — VSBB locking vs ENSCRIBE SBB locking
// ----------------------------------------------------------------------

/// Concurrent reader and writer: ENSCRIBE SBB's mandatory file lock blocks
/// the writer everywhere; VSBB's virtual-block group lock only covers the
/// scanned span.
pub fn e13() -> String {
    use nsql_dp::{ReadLock, SubsetMode};
    use nsql_records::{Expr, KeyRange, OwnedBound, SetList, Value};

    let mut t = Table::new(
        "E13 — writer concurrency while a sequential reader is active",
        &[
            "reader interface",
            "write outside scanned span",
            "write inside scanned span",
        ],
    );

    let build = || {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let mut s = db.session();
        s.execute("CREATE TABLE T (K INT NOT NULL, V DOUBLE NOT NULL, PRIMARY KEY (K))")
            .unwrap();
        for k in 0..200 {
            s.execute(&format!("INSERT INTO T VALUES ({k}, 1.0)"))
                .unwrap();
        }
        drop(s);
        db
    };
    let sets = SetList {
        sets: vec![(1, Expr::lit(Value::Double(9.0)))],
    };
    let try_write = |db: &Cluster, k: i32, sets: &SetList| -> &'static str {
        let s = db.session();
        let info = table_info(db, "T");
        let key = nsql_records::key::encode_record_key(
            &info.open.desc,
            &[Value::Int(k), Value::Double(0.0)],
        );
        let txn = db.txnmgr.begin();
        let outcome = match s.fs().update_by_key(txn, &info.open, &key, sets, None) {
            Ok(()) => "proceeds",
            Err(nsql_fs::FsError::Dp(nsql_dp::DpError::Locked { .. })) => "BLOCKED",
            Err(e) => panic!("{e}"),
        };
        db.txnmgr.abort(txn, s.cpu()).unwrap();
        outcome
    };

    // ENSCRIBE SBB reader (file lock).
    {
        let db = build();
        let s = db.session();
        let info = table_info(&db, "T");
        let reader = db.txnmgr.begin();
        let mut cur = s.fs().ens_open_sbb(&info.open, reader).unwrap();
        // Read a few records of the front of the file.
        for _ in 0..10 {
            s.fs().ens_read_next(&mut cur).unwrap();
        }
        let outside = try_write(&db, 190, &sets);
        let inside = try_write(&db, 5, &sets);
        db.txnmgr.commit(reader, s.cpu()).unwrap();
        t.row(vec![
            "ENSCRIBE SBB (file lock)".into(),
            outside.into(),
            inside.into(),
        ]);
    }

    // VSBB reader (virtual-block group lock over K <= 50).
    {
        let db = build();
        let s = db.session();
        let info = table_info(&db, "T");
        let reader = db.txnmgr.begin();
        let hi = nsql_records::key::encode_record_key(
            &info.open.desc,
            &[Value::Int(50), Value::Double(0.0)],
        );
        s.fs()
            .scan(
                Some(reader),
                &info.open,
                &KeyRange {
                    begin: OwnedBound::Unbounded,
                    end: OwnedBound::Included(hi),
                },
                None,
                Some(&[0]),
                SubsetMode::Vsbb,
                ReadLock::Shared,
            )
            .unwrap();
        let outside = try_write(&db, 190, &sets);
        let inside = try_write(&db, 5, &sets);
        db.txnmgr.commit(reader, s.cpu()).unwrap();
        t.row(vec![
            "SQL VSBB (virtual-block group lock)".into(),
            outside.into(),
            inside.into(),
        ]);
    }
    t.note("'The locking restriction under ENSCRIBE (file locking only) which limited the usefulness of SBB has been removed for SQL. Record locking has been extended to a form of virtual block locking.'");
    t.render()
}

// ----------------------------------------------------------------------
// E14 — ablation: virtual-block (reply buffer) size
// ----------------------------------------------------------------------

/// Sweep the VSBB reply buffer: bigger virtual blocks mean fewer re-drives
/// but more data per reply and longer DP occupancy per request.
pub fn e14() -> String {
    let rows = 10_000u32;
    let mut t = Table::new(
        format!("E14 — ablation: virtual-block size for a 10% selection over {rows} rows"),
        &[
            "reply buffer",
            "FS-DP msgs",
            "msg bytes",
            "bytes/msg",
            "elapsed",
        ],
    );
    for buf in [1_024usize, 4_096, 16_384, 65_536] {
        let config = DiskProcessConfig {
            reply_buffer: buf,
            max_records_per_request: 1_000_000, // isolate the buffer limit
            ..DiskProcessConfig::default()
        };
        let db = ClusterBuilder::new()
            .dp_config(config)
            .volume("$DATA1", 0, 1)
            .build();
        let w = Wisconsin::create(&db, "WISC", rows, &["$DATA1"], 8).unwrap();
        let mut s = db.session();
        let before = db.snapshot();
        let t0 = db.sim.now();
        let n = s
            .query(&format!(
                "SELECT * FROM {} WHERE UNIQUE1 < {}",
                w.name,
                rows / 10
            ))
            .unwrap()
            .rows
            .len();
        assert_eq!(n, rows as usize / 10);
        let m = d(&db, &before);
        t.row(vec![
            format!("{} B", buf),
            m.msgs_fs_dp.to_string(),
            m.msg_bytes_total.to_string(),
            (m.msg_bytes_total / m.msgs_fs_dp.max(1)).to_string(),
            ms(db.sim.now() - t0),
        ]);
    }
    t.note("The paper fixes the virtual block at roughly a physical block; the sweep shows the trade: message count falls linearly with buffer size while each reply grows, so the cost per returned byte flattens once fixed message overhead is amortized.");
    t.render()
}

// ----------------------------------------------------------------------
// E15 — ablation: audit send-buffer threshold
// ----------------------------------------------------------------------

/// Sweep the Disk Process's audit send buffer: the batching that field
/// compression amplifies.
pub fn e15() -> String {
    use nsql_records::{ArithOp, Expr, SetList, Value};

    let updates = 500i32;
    let mut t = Table::new(
        format!("E15 — ablation: audit send-buffer threshold, {updates} small updates in one txn"),
        &["send threshold", "audit msgs to trail", "records/msg"],
    );
    for threshold in [256usize, 1_024, 4_096, 16_384] {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let mut s = db.session();
        s.execute("CREATE TABLE A (K INT NOT NULL, BAL DOUBLE NOT NULL, PRIMARY KEY (K))")
            .unwrap();
        let info = table_info(&db, "A");
        let txn = db.txnmgr.begin();
        {
            let mut ins = nsql_fs::BlockedInserter::new(s.fs(), &info.open, txn);
            for k in 0..updates {
                ins.push(&[Value::Int(k), Value::Double(1.0)]).unwrap();
            }
            ins.flush().unwrap();
        }
        db.txnmgr.commit(txn, s.cpu()).unwrap();

        db.dp("$DATA1").set_audit_send_threshold(threshold);
        let sets = SetList {
            sets: vec![(
                1,
                Expr::Arith(
                    Box::new(Expr::Field(1)),
                    ArithOp::Add,
                    Box::new(Expr::lit(Value::Double(1.0))),
                ),
            )],
        };
        let before = db.snapshot();
        let txn = db.txnmgr.begin();
        for k in 0..updates {
            let key = nsql_records::key::encode_record_key(
                &info.open.desc,
                &[Value::Int(k), Value::Double(0.0)],
            );
            s.fs()
                .update_by_key(txn, &info.open, &key, &sets, None)
                .unwrap();
        }
        db.txnmgr.commit(txn, s.cpu()).unwrap();
        let m = d(&db, &before);
        t.row(vec![
            format!("{} B", threshold),
            m.msgs_audit.to_string(),
            format!("{:.1}", m.audit_records as f64 / m.msgs_audit.max(1) as f64),
        ]);
    }
    t.note("Each audit message to the trail carries a batch of records; a bigger send buffer batches more. Field compression effectively multiplies the threshold — the system-wide benefit the paper attributes to smaller audit records.");
    t.render()
}

// ----------------------------------------------------------------------
// E16 — FastSort parallelism
// ----------------------------------------------------------------------

/// ORDER BY over a big result with the parallel sorter at 1/2/4/8 ways —
/// the paper's existing exploitation of intra-query parallelism.
pub fn e16() -> String {
    let rows = 10_000u32;
    let mut t = Table::new(
        format!("E16 — FastSort: ORDER BY over {rows} rows at increasing parallelism"),
        &["subsort processes", "executor CPU work", "elapsed"],
    );
    for ways in [1u32, 2, 4, 8] {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let w = Wisconsin::create(&db, "WISC", rows, &["$DATA1"], 16).unwrap();
        db.set_sort_parallelism(ways);
        let mut s = db.session();
        let before = db.snapshot();
        let t0 = db.sim.now();
        let r = s
            .query(&format!(
                "SELECT UNIQUE1, UNIQUE2 FROM {} ORDER BY UNIQUE1",
                w.name
            ))
            .unwrap();
        assert_eq!(r.rows.len(), rows as usize);
        let m = d(&db, &before);
        t.row(vec![
            ways.to_string(),
            m.cpu_executor.to_string(),
            ms(db.sim.now() - t0),
        ]);
    }
    t.note("FastSort [Tsukerman] 'uses multiple processors and disks if available': the path length (CPU work) is constant while elapsed time shrinks with the subsort fan-out — the intra-query parallelism the paper counts as already exploited.");
    t.render()
}

// ----------------------------------------------------------------------
// E17 — fault-rate sweep: message loss vs the FS recovery protocol
// ----------------------------------------------------------------------

/// Message-loss sweep over DebitCredit plus a scan: retries, sync-ID
/// duplicate suppression, re-drive chain length, and virtual-time overhead
/// against the fault-free baseline.
pub fn e17() -> String {
    e17_table().render()
}

/// The table behind E17, also emitted to `BENCH_results.json`. Each row
/// runs the identical seeded workload — only the message-loss rate of the
/// fault plane changes; at 0% the plane is never armed.
pub fn e17_table() -> Table {
    let txns = 150u32;
    let mut t = Table::new(
        format!(
            "E17 — fault-rate sweep: {txns} DebitCredit txns + HISTORY scan under message loss"
        ),
        &[
            "message loss",
            "committed",
            "FS retries",
            "dup suppressed",
            "re-drive chain max",
            "elapsed",
            "overhead",
        ],
    );
    let mut baseline_us = 0u64;
    for rate in [0.0f64, 0.01, 0.02, 0.05] {
        let db = ClusterBuilder::new()
            // A small reply buffer so the closing scan needs a re-drive
            // chain long enough to measure loss stretching it.
            .dp_config(DiskProcessConfig {
                max_records_per_request: 16,
                ..Default::default()
            })
            .volume_with_backup("$DATA1", 0, 1, 0, 3)
            .build();
        let bank = Bank::create(&db, 2, 50, "$DATA1").unwrap();
        let s = db.session();
        let fs = s.fs();
        let mut rng = SimRng::seed_from(0xE17);
        if rate > 0.0 {
            db.enable_faults(FaultConfig {
                drop: rate,
                ..FaultConfig::with_seed(17)
            });
        }
        let before = db.snapshot();
        let t0 = db.sim.now();
        let mut committed = 0u32;
        for _ in 0..txns {
            let (aid, tid, bid, delta) = bank.draw(&mut rng);
            let txn = db.txnmgr.begin();
            match bank.debit_credit_sql(fs, txn, aid, tid, bid, delta) {
                Ok(()) if db.txnmgr.commit(txn, s.cpu()).is_ok() => committed += 1,
                Ok(()) => {}
                Err(_) => {
                    let _ = db.txnmgr.abort(txn, s.cpu());
                }
            }
        }
        // A VSBB scan under the same loss rate: lost replies stretch the
        // GET^NEXT re-drive chain, which the retry protocol re-drives from
        // the last confirmed key.
        let mut s2 = db.session();
        s2.query("SELECT COUNT(*) FROM HISTORY").unwrap();
        db.disable_faults();
        let m = d(&db, &before);
        let elapsed = db.sim.now() - t0;
        if baseline_us == 0 {
            baseline_us = elapsed;
        }
        t.row(vec![
            format!("{:.0}%", rate * 100.0),
            committed.to_string(),
            m.fs_retries.to_string(),
            m.dp_dup_suppressed.to_string(),
            db.sim.hist.redrive_chain.max().to_string(),
            ms(elapsed),
            format!("{:.2}x", elapsed as f64 / baseline_us.max(1) as f64),
        ]);
    }
    t.note("Message loss is absorbed entirely inside the FS retry protocol: every transaction still commits, retries grow with the loss rate, and the Disk Process sync-ID cache answers retransmissions without re-applying updates. The virtual-time overhead stays within a small multiple of the loss-free run because each retry costs one timeout plus a bounded backoff.");
    t
}

// ----------------------------------------------------------------------
// E18 — MEASURE cross-check of the interface ratios
// ----------------------------------------------------------------------

/// E2's headline ratios re-derived purely from the MEASURE per-entity
/// counter deltas: the Disk Process's own `msgs.recv` counter must tell
/// the same ≈3x / ≈3x story the global metrics tell.
pub fn e18() -> String {
    e18_table().render()
}

/// The table behind E18, also emitted to `BENCH_results.json`. Every cell
/// comes from a `MeasureReport` delta around one interface run — no global
/// metrics — so the experiment doubles as an end-to-end check that the
/// per-entity counters attribute work to the right entities.
pub fn e18_table() -> Table {
    use nsql_dp::{ReadLock, SubsetMode};
    use nsql_records::{CmpOp, Expr, KeyRange, Value};
    use nsql_sim::{Ctr, EntityKind, MeasureReport};

    let rows = 10_000u32;
    let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
    let _w = Wisconsin::create(&db, "WISC", rows, &["$DATA1"], 2).unwrap();
    let info = table_info(&db, "WISC");
    let of = &info.open;
    let session = db.session();
    let fs = session.fs();

    let mut t = Table::new(
        format!(
            "E18 — MEASURE cross-check: per-entity counter deltas for the E2 interfaces, \
             {rows}-row Wisconsin table"
        ),
        &[
            "interface",
            "DP msgs recv",
            "DP bytes recv",
            "recs examined",
            "recs selected",
            "volume disk reads",
            "elapsed",
            "msgs vs RAT",
        ],
    );

    // Everything below reads one entity's counters out of a delta; the DP
    // process and its volume/file entities all answer to "$DATA1".
    let dp = |m: &MeasureReport, c: Ctr| m.snap.get(EntityKind::Process, "$DATA1", c);
    let file = |m: &MeasureReport, c: Ctr| m.snap.total(EntityKind::File, c);
    let vol = |m: &MeasureReport, c: Ctr| m.snap.get(EntityKind::Volume, "$DATA1", c);
    let push = |t: &mut Table, label: &str, m: &MeasureReport, elapsed: u64, rat_msgs: u64| {
        t.row(vec![
            label.into(),
            dp(m, Ctr::MsgsRecv).to_string(),
            dp(m, Ctr::BytesRecv).to_string(),
            file(m, Ctr::RecsExamined).to_string(),
            file(m, Ctr::RecsSelected).to_string(),
            vol(m, Ctr::DiskReads).to_string(),
            ms(elapsed),
            if rat_msgs == 0 {
                "1.0x".into()
            } else {
                ratio(rat_msgs, dp(m, Ctr::MsgsRecv))
            },
        ]);
    };

    // Record-at-a-time (the old ENSCRIBE discipline).
    cold_caches(&db);
    let before = MeasureReport::capture(&db.sim);
    let t0 = db.sim.now();
    let mut cur = fs.ens_open(of, None);
    while fs.ens_read_next(&mut cur).unwrap().is_some() {}
    let rat = MeasureReport::capture(&db.sim).since(&before);
    let rat_time = db.sim.now() - t0;
    push(&mut t, "record-at-a-time", &rat, rat_time, 0);

    // RSBB: one physical block copy per message.
    cold_caches(&db);
    let txn = db.txnmgr.begin();
    let before = MeasureReport::capture(&db.sim);
    let t0 = db.sim.now();
    let mut cur = fs.ens_open_sbb(of, txn).unwrap();
    while fs.ens_read_next(&mut cur).unwrap().is_some() {}
    let rsbb = MeasureReport::capture(&db.sim).since(&before);
    let rsbb_time = db.sim.now() - t0;
    db.txnmgr.commit(txn, session.cpu()).unwrap();
    push(
        &mut t,
        "RSBB (block buffering)",
        &rsbb,
        rsbb_time,
        dp(&rat, Ctr::MsgsRecv),
    );

    // VSBB with the Wisconsin 10% selection + 2-field projection.
    cold_caches(&db);
    let before = MeasureReport::capture(&db.sim);
    let t0 = db.sim.now();
    fs.scan(
        None,
        of,
        &KeyRange::all(),
        Some(&Expr::field_cmp(1, CmpOp::Lt, Value::Int(rows as i32 / 10))),
        Some(&[0, 1]),
        SubsetMode::Vsbb,
        ReadLock::None,
    )
    .unwrap();
    let vsbb = MeasureReport::capture(&db.sim).since(&before);
    let vsbb_time = db.sim.now() - t0;
    push(
        &mut t,
        "VSBB (10% select + project)",
        &vsbb,
        vsbb_time,
        dp(&rat, Ctr::MsgsRecv),
    );

    t.note(format!(
        "Measured from the Disk Process's own MEASURE record: RSBB receives {} fewer requests \
         than record-at-a-time and VSBB another {} fewer than RSBB — each carries at least the \
         paper's factor of three, reproduced from per-entity counter deltas alone (the global \
         metrics of E2 agree message for message).",
        ratio(dp(&rat, Ctr::MsgsRecv), dp(&rsbb, Ctr::MsgsRecv)),
        ratio(dp(&rsbb, Ctr::MsgsRecv), dp(&vsbb, Ctr::MsgsRecv)),
    ));
    t.note(format!(
        "Blended (virtual elapsed) ratios stay {} and {} — identical to E2, because the MEASURE \
         layer observes the run without perturbing it: always-on counters cost no virtual time.",
        ratio(rat_time, rsbb_time),
        ratio(rsbb_time, vsbb_time),
    ));
    t.note(format!(
        "The file entity confirms the DP does the same logical work each time (recs.examined \
         {} / {} / {}), so the ratios are pure interface effects, not workload drift.",
        file(&rat, Ctr::RecsExamined),
        file(&rsbb, Ctr::RecsExamined),
        file(&vsbb, Ctr::RecsExamined),
    ));
    t
}

/// E19 — critical-path wait profile: where the elapsed virtual time of the
/// E2/E4/E9 workloads goes, decomposed into exhaustive, non-overlapping
/// categories that sum *exactly* to the elapsed time (no tolerance), plus a
/// chaos variant showing retry/backoff time appearing under injected faults.
pub fn e19() -> String {
    e19_table().render()
}

/// The table behind E19, also emitted to `BENCH_results.json`. Every cell
/// is a raw integer of virtual microseconds, so the perf gate catches any
/// hop silently getting slower, per category.
pub fn e19_table() -> Table {
    use nsql_sim::{Wait, WaitProfile};

    let mut t = Table::new(
        "E19 — critical-path wait profile: exact decomposition of elapsed virtual time (µs)",
        &[
            "workload", "cpu", "msg", "disk", "lock", "commit", "retry", "other", "elapsed",
        ],
    );
    // E19's schema (and its pinned baseline) predates `wait.restart`:
    // the column set stays the original seven, and restart — which only
    // crash recovery can charge — is asserted zero instead. E20 owns the
    // restart category.
    const E19_CATEGORIES: [Wait; 7] = [
        Wait::Cpu,
        Wait::Msg,
        Wait::Disk,
        Wait::Lock,
        Wait::Commit,
        Wait::Retry,
        Wait::Other,
    ];
    let push = |t: &mut Table, label: &str, wait: &WaitProfile, elapsed: u64| {
        assert_eq!(
            wait.total(),
            elapsed,
            "{label}: wait categories must sum exactly to elapsed time"
        );
        assert_eq!(
            wait.get(Wait::Other),
            0,
            "{label}: every microsecond inside a workload must be attributed"
        );
        assert_eq!(
            wait.get(Wait::Restart),
            0,
            "{label}: no crash recovery runs inside these workloads"
        );
        let mut row = vec![label.to_string()];
        row.extend(E19_CATEGORIES.iter().map(|w| wait.get(*w).to_string()));
        row.push(elapsed.to_string());
        t.row(row);
    };

    // E2's winning interface: the VSBB 10% selection as one SQL statement.
    // Statement-level profile straight from QueryStats.
    {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let w = Wisconsin::create(&db, "WISC", 10_000, &["$DATA1"], 2).unwrap();
        cold_caches(&db);
        let mut s = db.session();
        s.query(&w.q_select_10pct_clustered()).unwrap();
        let stats = s.last_stats().unwrap();
        push(
            &mut t,
            "E2 VSBB scan (10% select)",
            &stats.wait,
            stats.elapsed_us,
        );
    }

    // E4's winning method: the set-oriented interest-posting UPDATE.
    {
        let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
        let w = Wisconsin::create(&db, "WISC", 2_000, &["$DATA1"], 2).unwrap();
        let _ = &w;
        let mut s = db.session();
        s.execute("UPDATE WISC SET UNIQUE1 = UNIQUE1 + 0 WHERE UNIQUE2 < 200")
            .unwrap();
        let stats = s.last_stats().unwrap();
        push(
            &mut t,
            "E4 set-oriented UPDATE (10%)",
            &stats.wait,
            stats.elapsed_us,
        );
    }

    // E9: the DebitCredit batch over the SQL path; the window profile
    // aggregates the per-statement ledgers (group-commit time shows up).
    let bank_run = |faults: Option<FaultConfig>| -> (WaitProfile, u64, u64) {
        let db = ClusterBuilder::new()
            .volume_with_backup("$DATA1", 0, 1, 0, 3)
            .build();
        let bank = Bank::create(&db, 2, 500, "$DATA1").unwrap();
        let s = db.session();
        let mut rng = SimRng::seed_from(5);
        if let Some(cfg) = faults {
            db.enable_faults(cfg);
        }
        let w0 = db.sim.wait_profile();
        let t0 = db.sim.now();
        for _ in 0..100 {
            let (aid, tid, bid, delta) = bank.draw(&mut rng);
            let txn = db.txnmgr.begin();
            match bank.debit_credit_sql(s.fs(), txn, aid, tid, bid, delta) {
                Ok(()) => {
                    let _ = db.txnmgr.commit(txn, s.cpu());
                }
                Err(_) => {
                    let _ = db.txnmgr.abort(txn, s.cpu());
                }
            }
        }
        let wait = db.sim.wait_profile() - w0;
        let elapsed = db.sim.now() - t0;
        db.disable_faults();
        (wait, elapsed, db.metrics().snapshot().fs_retries)
    };
    let (wait, elapsed, _) = bank_run(None);
    push(&mut t, "E9 DebitCredit x100 (fault-free)", &wait, elapsed);
    let (wait, elapsed, retries) = bank_run(Some(FaultConfig {
        drop: 0.08,
        ..FaultConfig::with_seed(21)
    }));
    assert!(retries > 0, "the chaos variant must exercise FS retries");
    push(
        &mut t,
        "E9 DebitCredit x100 (chaos: 8% drops)",
        &wait,
        elapsed,
    );

    t.note(
        "Each row decomposes the workload's elapsed virtual time into the exhaustive wait \
         categories of the per-statement ledger; the categories sum exactly (no tolerance) to \
         the elapsed column — the EXPLAIN ANALYZE discipline applied to latency."
            .to_string(),
    );
    t.note(
        "Under injected message drops the same workload grows a retry column (FS backoff \
         between retransmissions) and its msg share swells with virtual-time timeouts — the \
         breakdown names the hop that got slower, which counters alone cannot."
            .to_string(),
    );
    t
}

/// E20 — crash-restart recovery cost. The paper's availability story
/// rests on TMF: "transaction audit trails ... are the basis of both
/// transaction UNDO and REDO". This experiment measures what that REDO/
/// UNDO replay costs at restart, as a function of durable trail length,
/// plus the two media-recovery paths (trail rebuild and mirror copy-back).
pub fn e20() -> String {
    e20_table().render()
}

/// The table behind E20, also emitted to `BENCH_results.json`. All cells
/// are raw integers (record counts / virtual µs): the perf gate catches
/// recovery silently getting slower with zero tolerance.
pub fn e20_table() -> Table {
    use nsql_sim::{Ctr, EntityKind, MeasureReport, Wait};

    let mut t = Table::new(
        "E20 — crash-restart: audit-trail replay cost vs durable trail length (µs)",
        &[
            "scenario",
            "trail recs",
            "scanned",
            "redo",
            "undo",
            "restart us",
            "recovery us",
        ],
    );

    // A seeded cluster with `txns` committed DebitCredit transactions
    // (and optionally one in-flight loser with durable audit), measured
    // through the given recovery action. Fallible end to end so the
    // harness has exactly one panic site.
    let cells = |label: &str,
                 txns: u32,
                 in_flight: bool,
                 mirrored: bool,
                 recover: &dyn Fn(&Cluster) -> Result<(), String>|
     -> Result<Vec<String>, String> {
        let mut b = ClusterBuilder::new();
        b = if mirrored {
            b.volume("$DATA1", 0, 1)
        } else {
            b.volume_unmirrored("$DATA1", 0, 1)
        };
        let db = b.build();
        let bank = Bank::create(&db, 2, 100, "$DATA1").map_err(|e| e.to_string())?;
        let s = db.session();
        let mut rng = SimRng::seed_from(0xE20);
        for _ in 0..txns {
            let (aid, tid, bid, delta) = bank.draw(&mut rng);
            let txn = db.txnmgr.begin();
            bank.debit_credit_sql(s.fs(), txn, aid, tid, bid, delta)
                .map_err(|e| e.to_string())?;
            db.txnmgr.commit(txn, s.cpu()).map_err(|e| e.to_string())?;
        }
        if in_flight {
            // Its audit reaches the durable trail via an eager send plus
            // one committed writer's group flush — a genuine UNDO load.
            // Fixed, disjoint ids: the loser (branch 0) and the flushing
            // committed txn (branch 1) must not collide on locks.
            db.dp("$DATA1").set_audit_send_threshold(0);
            let txn = db.txnmgr.begin();
            bank.debit_credit_sql(s.fs(), txn, 5, 1, 0, 2.5)
                .map_err(|e| e.to_string())?;
            let committed = db.txnmgr.begin();
            bank.debit_credit_sql(s.fs(), committed, 150, 15, 1, -1.25)
                .map_err(|e| e.to_string())?;
            db.txnmgr
                .commit(committed, s.cpu())
                .map_err(|e| e.to_string())?;
        }
        let trail_recs = db.trail.durable_records(db.sim.now()).len();
        let before = MeasureReport::capture(&db.sim);
        let w0 = db.sim.wait_profile();
        let t0 = db.sim.now();
        recover(&db)?;
        let elapsed = db.sim.now() - t0;
        let wait = db.sim.wait_profile() - w0;
        let d = MeasureReport::capture(&db.sim).since(&before).snap;
        Ok(vec![
            label.to_string(),
            trail_recs.to_string(),
            d.get(EntityKind::Process, "$DATA1", Ctr::RecoveryScanned)
                .to_string(),
            d.get(EntityKind::Process, "$DATA1", Ctr::RecoveryRedo)
                .to_string(),
            d.get(EntityKind::Process, "$DATA1", Ctr::RecoveryUndo)
                .to_string(),
            wait.get(Wait::Restart).to_string(),
            elapsed.to_string(),
        ])
    };

    let restart = |db: &Cluster| -> Result<(), String> {
        db.crash_and_restart(0, 1);
        Ok(())
    };
    let rebuild = |db: &Cluster| -> Result<(), String> {
        db.disk("$DATA1").fail_drive(0);
        db.media_recover("$DATA1").map_err(|e| e.to_string())
    };
    let remirror = |db: &Cluster| -> Result<(), String> {
        db.dp("$DATA1")
            .pool()
            .flush_all()
            .map_err(|e| e.to_string())?;
        db.disk("$DATA1").fail_drive(1);
        db.media_recover("$DATA1").map_err(|e| e.to_string())
    };
    type Recover<'a> = &'a dyn Fn(&Cluster) -> Result<(), String>;
    let scenarios: [(&str, u32, bool, bool, Recover); 6] = [
        ("restart after 25 txns", 25, false, true, &restart),
        ("restart after 100 txns", 100, false, true, &restart),
        ("restart after 400 txns", 400, false, true, &restart),
        (
            "restart + in-flight loser (100 txns)",
            100,
            true,
            true,
            &restart,
        ),
        (
            "media rebuild, unmirrored (100 txns)",
            100,
            false,
            false,
            &rebuild,
        ),
        (
            "re-mirror copy-back (100 txns)",
            100,
            false,
            true,
            &remirror,
        ),
    ];
    for (label, txns, in_flight, mirrored, recover) in scenarios {
        let row = cells(label, txns, in_flight, mirrored, recover)
            .expect("E20 scenario must run to completion");
        t.row(row);
    }

    t.note(
        "Restart replay cost scales with the durable trail prefix: `scanned` counts every \
         record read back, `redo`/`undo` the winners re-applied and losers rolled back, and \
         `restart us` the virtual time charged to the wait.restart category (CPU replay work \
         plus, for media recovery, the cost-modelled disk transfer)."
            .to_string(),
    );
    t.note(
        "The two media paths differ structurally: a dead unmirrored volume is rebuilt by REDO \
         of the whole trail onto an empty store, while a mirrored volume's replacement half is \
         a pure sequential copy-back from the survivor (no Disk Process replay at all)."
            .to_string(),
    );
    t
}

/// E21 — contention survival. N simulated terminals issue DebitCredit
/// with Poisson arrivals and a Zipf-skewed account hotspot, interleaved
/// at FS-DP message granularity so transactions genuinely contend:
/// deadlocks are detected on the waits-for graph, the youngest cycle
/// member is doomed and rolled back via the audit trail, and the client
/// retries with bounded backoff. An admission gate bounds in-flight
/// transactions so overload queues instead of collapsing the lock table.
pub fn e21() -> String {
    e21_table().render()
}

/// One E21 row: build a fresh cluster + bank, run the open-loop load,
/// and report throughput, tail latency, and the contention-survival
/// counters. Conservation is asserted on every row — aborted attempts
/// must have rolled back exactly. Fallible end to end so the harness
/// has a single panic-free failure site (`push_row`).
fn e21_row(
    label: &str,
    cfg: &nsql_workloads::LoadConfig,
    accounts_per_branch: u32,
    lock_timeout_us: u64,
    faults: Option<FaultConfig>,
) -> Result<Vec<String>, String> {
    use nsql_workloads::run_load;
    let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
    if lock_timeout_us > 0 {
        db.set_lock_wait_timeout(lock_timeout_us);
    }
    // Ten branches so branch-row updates only occasionally collide; the
    // contention knob is the Zipf hotspot over the account rows, whose
    // population the caller picks (wide bank = load-bound, small bank =
    // contention-bound).
    let bank = Bank::create(&db, 10, accounts_per_branch, "$DATA1").map_err(|e| e.to_string())?;
    let initial = bank.total_balance(&db).map_err(|e| e.to_string())?;
    if let Some(f) = faults {
        db.enable_faults(f);
    }
    let out = run_load(&db, &bank, cfg);
    db.disable_faults();
    let total = bank.total_balance(&db).map_err(|e| e.to_string())?;
    assert!(
        (total - (initial + out.net_delta)).abs() < 1e-6,
        "E21 {label}: money not conserved ({total} vs {initial} + {})",
        out.net_delta
    );
    assert_eq!(
        out.arrivals,
        out.committed + out.gave_up,
        "E21 {label}: every arrival must commit or exhaust its retries"
    );
    Ok(vec![
        label.to_string(),
        format!("{:.1}", out.offered_tps(cfg.duration_us)),
        format!("{:.1}", out.tps()),
        out.percentile_us(50.0).to_string(),
        out.percentile_us(95.0).to_string(),
        out.percentile_us(99.0).to_string(),
        out.admission_wait_us.to_string(),
        out.deadlock_retries.to_string(),
        out.lock_timeouts.to_string(),
        out.gave_up.to_string(),
    ])
}

/// Push a completed experiment row, failing the run loudly (but
/// panic-token free) if the scenario errored. The one sanctioned failure
/// site for the fallible load-engine experiments (E21, E22, `load`).
fn push_row(t: &mut Table, what: &str, label: &str, row: Result<Vec<String>, String>) {
    assert!(row.is_ok(), "{what} {label}: {:?}", row.as_ref().err());
    if let Ok(cells) = row {
        t.row(cells);
    }
}

/// The table behind E21, also emitted to `BENCH_results.json`. tps cells
/// are fixed-precision floats of deterministic virtual-time ratios, so
/// the perf gate diffs them with zero tolerance like the integer cells.
pub fn e21_table() -> Table {
    use nsql_workloads::LoadConfig;

    let mut t = Table::new(
        "E21 — contention survival: throughput and tail latency vs offered load and skew",
        &[
            "scenario",
            "offered tps",
            "tps",
            "p50 us",
            "p95 us",
            "p99 us",
            "adm wait us",
            "dl retries",
            "timeouts",
            "gave up",
        ],
    );
    let base = LoadConfig {
        terminals: 12,
        duration_us: 400_000,
        zipf_theta: 0.8,
        max_inflight: 6,
        seed: 0xE21,
        ..LoadConfig::default()
    };
    // Offered-load sweep at moderate skew: shrinking think time pushes the
    // open-loop arrival rate through saturation.
    for (label, think_us) in [
        ("load: light (think 100ms)", 100_000.0),
        ("load: moderate (think 30ms)", 30_000.0),
        ("load: heavy (think 10ms)", 10_000.0),
        ("load: saturated (think 3ms)", 3_000.0),
    ] {
        let cfg = LoadConfig {
            mean_think_us: think_us,
            ..base.clone()
        };
        push_row(&mut t, "E21", label, e21_row(label, &cfg, 100, 0, None));
    }
    // Skew sweep at fixed offered load on a small hot bank (100 account
    // rows): a steeper Zipf hotspot turns the same arrival rate into
    // convoys and genuine waits-for cycles.
    for (label, theta) in [
        ("skew: uniform (theta 0)", 0.0),
        ("skew: mild (theta 0.6)", 0.6),
        ("skew: hot (theta 1.0)", 1.0),
        ("skew: scorching (theta 1.2)", 1.2),
    ] {
        let cfg = LoadConfig {
            mean_think_us: 10_000.0,
            zipf_theta: theta,
            ..base.clone()
        };
        push_row(&mut t, "E21", label, e21_row(label, &cfg, 10, 0, None));
    }
    // Lock-wait timeout armed: convoy stragglers are doomed instead of
    // waiting out the hotspot, trading aborts for bounded tail latency.
    let cfg = LoadConfig {
        mean_think_us: 10_000.0,
        zipf_theta: 1.2,
        ..base.clone()
    };
    let label = "timeout armed (2.5ms, theta 1.2)";
    push_row(&mut t, "E21", label, e21_row(label, &cfg, 10, 2_500, None));
    // Chaos variant: message drops and delays on top of contention; FS
    // retries and doom-retries compose, and conservation still holds.
    let cfg = LoadConfig {
        mean_think_us: 10_000.0,
        zipf_theta: 1.0,
        ..base.clone()
    };
    let faults = FaultConfig {
        drop: 0.02,
        delay: 0.02,
        ..FaultConfig::with_seed(0xE21)
    };
    let label = "chaos (2% drop, 2% delay, theta 1.0)";
    push_row(
        &mut t,
        "E21",
        label,
        e21_row(label, &cfg, 10, 0, Some(faults)),
    );

    t.note(
        "Open-loop arrivals: each of 12 terminals draws exponential think times, so offered \
         tps rises as think time shrinks while achieved tps saturates at the lock/commit \
         bottleneck — the gap drains into the admission queue (`adm wait us` is the summed \
         per-transaction wait between arrival and gate admission) instead of collapsing the \
         lock table."
            .to_string(),
    );
    t.note(
        "Skew turns load into contention: at uniform skew deadlocks are rare, while a \
         theta=1.2 hotspot produces genuine waits-for cycles — each is resolved by dooming \
         the youngest cycle member (rolled back via the audit trail) and retrying it with \
         bounded backoff (`dl retries`). Every row asserts exact money conservation, so every \
         abort demonstrably undid its partial work."
            .to_string(),
    );
    t
}

// ----------------------------------------------------------------------
// E22 — interval sampler: latency curves and bottleneck attribution
// ----------------------------------------------------------------------

/// E22: run the open-loop DebitCredit engine with the virtual-time
/// interval sampler on, at three offered-load levels, and report (a) the
/// per-interval time series — throughput, latency percentiles, and the
/// windowed wait-ledger bottleneck — and (b) the full log2 latency CDF of
/// each cell.
pub fn e22() -> String {
    let (series, cdf) = e22_tables();
    format!("{}\n{}", series.render(), cdf.render())
}

/// The three offered-load cells of E22 (one bank shape, think time is the
/// knob), each sampled every 50ms of virtual time.
fn e22_cells() -> Vec<(&'static str, nsql_workloads::LoadConfig)> {
    use nsql_workloads::LoadConfig;
    let base = LoadConfig {
        terminals: 12,
        duration_us: 400_000,
        zipf_theta: 0.8,
        max_inflight: 6,
        sample_every_us: 50_000,
        seed: 0xE22,
        ..LoadConfig::default()
    };
    vec![
        (
            "light (think 100ms)",
            LoadConfig {
                mean_think_us: 100_000.0,
                ..base.clone()
            },
        ),
        (
            "heavy (think 10ms)",
            LoadConfig {
                mean_think_us: 10_000.0,
                ..base.clone()
            },
        ),
        (
            "saturated (think 3ms)",
            LoadConfig {
                mean_think_us: 3_000.0,
                ..base
            },
        ),
    ]
}

/// Run one E22 cell and verify the sampler's exactness contract on every
/// interval: the windowed wait ledger must decompose the interval's span
/// with no remainder, the intervals must tile the run gaplessly, and the
/// reported bottleneck must be the ledger's own argmax. Fallible end to
/// end; the single failure site is `push_row`.
fn e22_run(
    label: &str,
    cfg: &nsql_workloads::LoadConfig,
) -> Result<nsql_workloads::LoadOutcome, String> {
    use nsql_workloads::run_load;
    let db = ClusterBuilder::new().volume("$DATA1", 0, 1).build();
    let bank = Bank::create(&db, 10, 100, "$DATA1").map_err(|e| e.to_string())?;
    let out = run_load(&db, &bank, cfg);
    if out.intervals.len() < 3 {
        return Err(format!(
            "{label}: expected >= 3 intervals, got {}",
            out.intervals.len()
        ));
    }
    let mut expect_start = out.intervals[0].start_us;
    for (i, iv) in out.intervals.iter().enumerate() {
        if iv.start_us != expect_start {
            return Err(format!(
                "{label} interval {i}: gap ({} != {expect_start})",
                iv.start_us
            ));
        }
        let span = iv.end_us.saturating_sub(iv.start_us);
        if iv.wait_total_us() != span {
            return Err(format!(
                "{label} interval {i}: ledger {} != span {span}",
                iv.wait_total_us()
            ));
        }
        let max = iv.wait_us.iter().fold(0u64, |a, &b| a.max(b));
        if iv.wait_us[iv.top_wait().index()] != max {
            return Err(format!(
                "{label} interval {i}: bottleneck is not the argmax"
            ));
        }
        expect_start = iv.end_us;
    }
    Ok(out)
}

/// Both E22 records from one pass over the cells: the per-interval time
/// series and the full log2 latency CDF per cell.
pub fn e22_tables() -> (Table, Table) {
    use nsql_sim::Histogram;

    let mut series = Table::new(
        "E22 — interval sampler: per-interval throughput, latency, and bottleneck attribution",
        &[
            "scenario",
            "ivl",
            "start us",
            "span us",
            "arrivals",
            "commits",
            "tps",
            "p50 us",
            "p95 us",
            "p99 us",
            "top wait",
            "wait us",
            "top entity",
            "entity ops",
        ],
    );
    let mut cdf = Table::new(
        "E22 — latency CDF per offered-load cell (log2 buckets, interpolated percentiles)",
        &[
            "scenario", "kind", "lo us", "hi us", "count", "cum", "cum %",
        ],
    );

    for (label, cfg) in e22_cells() {
        match e22_run(label, &cfg) {
            Ok(out) => {
                for (i, iv) in out.intervals.iter().enumerate() {
                    series.row(vec![
                        label.to_string(),
                        i.to_string(),
                        iv.start_us.to_string(),
                        (iv.end_us - iv.start_us).to_string(),
                        iv.arrivals.to_string(),
                        iv.committed.to_string(),
                        format!("{:.1}", iv.tps()),
                        iv.percentile_us(50.0).to_string(),
                        iv.percentile_us(95.0).to_string(),
                        iv.percentile_us(99.0).to_string(),
                        iv.top_wait().name().to_string(),
                        iv.wait_us[iv.top_wait().index()].to_string(),
                        iv.top_entity.clone(),
                        iv.top_entity_delta.to_string(),
                    ]);
                }
                let h = Histogram::new();
                for &v in &out.latencies_us {
                    h.record(v);
                }
                let n = h.count();
                let mut cum = 0u64;
                for (lo, hi, count) in h.buckets() {
                    cum += count;
                    cdf.row(vec![
                        label.to_string(),
                        "bucket".to_string(),
                        lo.to_string(),
                        hi.to_string(),
                        count.to_string(),
                        cum.to_string(),
                        format!("{:.1}", 100.0 * cum as f64 / n.max(1) as f64),
                    ]);
                }
                cdf.row(vec![
                    label.to_string(),
                    "p50/p95/p99/p999".to_string(),
                    h.percentile(0.50).to_string(),
                    h.percentile(0.95).to_string(),
                    h.percentile(0.99).to_string(),
                    h.percentile(0.999).to_string(),
                    "100.0".to_string(),
                ]);
            }
            Err(e) => push_row(&mut series, "E22", label, Err(e)),
        }
    }

    series.note(
        "Each row is one closed sampler interval (50ms of virtual time; the last row of a \
         cell is the partial drain tail). `top wait` is the argmax of the interval's windowed \
         wait ledger — the same attributed clock every statement decomposes into — so the \
         bottleneck column sums, with the other categories, to exactly `span us`. `top \
         entity` is the MEASURE entity with the largest counter delta in the window."
            .to_string(),
    );
    series.note(
        "Read as a bottleneck report: at every offered load the group-commit timer dominates \
         the windowed ledger (wait.commit), and the busiest entity alternates between the hot \
         data Disk Process and the audit trail as flush batches land — shortening think time \
         moves the latency columns, not the bottleneck. The report and the ledger cannot \
         disagree because they are the same numbers."
            .to_string(),
    );
    cdf.note(
        "Full latency distribution per cell, not just point percentiles: log2 buckets with \
         cumulative counts, plus a summary row of interpolated p50/p95/p99/p999 \
         (Histogram::percentile spreads each bucket uniformly). Offered load moves the whole \
         curve, not just the tail."
            .to_string(),
    );
    (series, cdf)
}

/// The exhaustive `experiments load` mode: a full offered-load × skew
/// grid at a longer horizon than the E21 record, for interactive study.
/// Not part of `BENCH_results.json` (CI runs the pinned E21 table).
pub fn load_sweep() -> String {
    use nsql_workloads::LoadConfig;

    let mut t = Table::new(
        "LOAD — exhaustive contention sweep: offered load x Zipf skew (12 terminals)",
        &[
            "scenario",
            "offered tps",
            "tps",
            "p50 us",
            "p95 us",
            "p99 us",
            "adm wait us",
            "dl retries",
            "timeouts",
            "gave up",
        ],
    );
    for (tag, think_us) in [
        ("6ms", 6_000.0),
        ("3ms", 3_000.0),
        ("1.5ms", 1_500.0),
        ("0.75ms", 750.0),
        ("0.4ms", 400.0),
    ] {
        for (skew, theta) in [("0.0", 0.0), ("0.8", 0.8), ("1.2", 1.2)] {
            let cfg = LoadConfig {
                terminals: 12,
                duration_us: 300_000,
                mean_think_us: think_us,
                zipf_theta: theta,
                max_inflight: 6,
                seed: 0xE21,
                ..LoadConfig::default()
            };
            let label = format!("think {tag}, theta {skew}");
            push_row(&mut t, "LOAD", &label, e21_row(&label, &cfg, 20, 0, None));
        }
    }
    t.note(
        "The full grid behind E21's two one-dimensional sweeps: every offered-load level \
         crossed with every skew level, at a 300ms virtual horizon. Run via `experiments \
         load`; the CI load-sweep job drives the same engine through the #[ignore]-gated \
         exhaustive tests."
            .to_string(),
    );
    t.render()
}

/// The `"measure"` record of `BENCH_results.json`: the full per-entity
/// counter delta for one canonical mixed workload (DebitCredit batch plus
/// a 10% Wisconsin selection). Deterministic per build, so the perf gate
/// can diff it against `BENCH_baseline.json` with zero tolerance.
pub fn measure_record() -> String {
    use nsql_sim::MeasureReport;

    let db = ClusterBuilder::new()
        .volume("$DATA1", 0, 1)
        .volume("$DATA2", 0, 2)
        .build();
    let w = Wisconsin::create(&db, "WISC", 5_000, &["$DATA1"], 2).unwrap();
    let bank = Bank::create(&db, 2, 50, "$DATA2").unwrap();
    let before = MeasureReport::capture(&db.sim);

    let s = db.session();
    let fs = s.fs();
    let mut rng = SimRng::seed_from(0xE18);
    for _ in 0..50 {
        let (aid, tid, bid, delta) = bank.draw(&mut rng);
        let txn = db.txnmgr.begin();
        bank.debit_credit_sql(fs, txn, aid, tid, bid, delta)
            .unwrap();
        db.txnmgr.commit(txn, s.cpu()).unwrap();
    }
    let mut s2 = db.session();
    let n = s2.query(&w.q_select_10pct_clustered()).unwrap().rows.len();
    assert_eq!(n, 500);

    MeasureReport::capture(&db.sim)
        .since(&before)
        .to_json("measure")
}

/// Chrome trace-event JSON (`chrome://tracing` / Perfetto) for the same
/// canonical workload `measure_record` runs, captured with the bounded
/// trace ring at its default capacity. Timestamps are virtual micros.
pub fn trace_json() -> String {
    use nsql_sim::chrome_trace;

    let db = ClusterBuilder::new()
        .volume("$DATA1", 0, 1)
        .volume("$DATA2", 0, 2)
        .build();
    db.sim.trace.enable_default();
    let w = Wisconsin::create(&db, "WISC", 5_000, &["$DATA1"], 2).unwrap();
    let bank = Bank::create(&db, 2, 50, "$DATA2").unwrap();

    let s = db.session();
    let fs = s.fs();
    let mut rng = SimRng::seed_from(0xE18);
    for _ in 0..50 {
        let (aid, tid, bid, delta) = bank.draw(&mut rng);
        let txn = db.txnmgr.begin();
        bank.debit_credit_sql(fs, txn, aid, tid, bid, delta)
            .unwrap();
        db.txnmgr.commit(txn, s.cpu()).unwrap();
    }
    let mut s2 = db.session();
    s2.query(&w.q_select_10pct_clustered()).unwrap();

    chrome_trace(&db.sim.trace.events())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each experiment is smoke-tested for the qualitative shape its report
    // claims; the full tables go to EXPERIMENTS.md.

    #[test]
    fn e2_shape_rsbb_and_vsbb_win() {
        let r = e2();
        assert!(r.contains("record-at-a-time"));
        // RSBB beats record-at-a-time by at least 3x on messages.
        let lines: Vec<&str> = r.lines().collect();
        let rsbb_line = lines.iter().find(|l| l.contains("RSBB (block")).unwrap();
        let factor: f64 = rsbb_line
            .split('|')
            .nth(6)
            .unwrap()
            .trim()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(factor >= 3.0, "RSBB factor {factor} < 3");
        let vsbb_line = lines.iter().find(|l| l.contains("VSBB (10%")).unwrap();
        let vfactor: f64 = vsbb_line
            .split('|')
            .nth(6)
            .unwrap()
            .trim()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(vfactor >= 3.0 * factor, "VSBB must beat RSBB by ≥3x again");
    }

    #[test]
    fn e4_shape_pushdown_wins() {
        let r = e4();
        let msgs = |needle: &str| -> u64 {
            r.lines()
                .find(|l| l.contains(needle))
                .unwrap()
                .split('|')
                .nth(3)
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let subset = msgs("UPDATE^SUBSET");
        let per_record = msgs("per-record UPDATE");
        let enscribe = msgs("ENSCRIBE read-then-write");
        assert!(subset * 10 < per_record);
        assert!(
            per_record * 2 <= enscribe + 1,
            "read-before-write doubles messages"
        );
    }

    #[test]
    fn e5_shape_two_messages() {
        let r = e5();
        let read_line = r
            .lines()
            .find(|l| l.contains("read via alternate key"))
            .unwrap();
        let msgs: u64 = read_line.split('|').nth(2).unwrap().trim().parse().unwrap();
        assert_eq!(msgs, 2, "Figure 2 is a two-message pattern");
    }

    #[test]
    fn e6_shape_field_compression_shrinks() {
        let r = e6();
        let bytes = |needle: &str| -> u64 {
            r.lines()
                .find(|l| l.contains(needle))
                .unwrap()
                .split('|')
                .nth(2)
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let full = bytes("ENSCRIBE full-record");
        let field = bytes("SQL field-compressed");
        assert!(field * 2 < full, "field {field} vs full {full}");
    }

    #[test]
    fn e7_shape_adaptive_groups() {
        let r = e7();
        assert!(r.contains("adaptive"));
        assert!(r.contains("commits/flush"));
    }

    #[test]
    fn e9_shape_sql_matches_enscribe() {
        let r = e9();
        let line = r.lines().find(|l| l.contains("virtual elapsed")).unwrap();
        let ratio: f64 = line.split('|').nth(4).unwrap().trim().parse().unwrap();
        assert!(
            ratio <= 1.1,
            "SQL path must match or beat ENSCRIBE (ratio {ratio})"
        );
    }

    #[test]
    fn e10_shape_blocking_factor() {
        let r = e10();
        let msgs = |needle: &str| -> u64 {
            r.lines()
                .find(|l| l.contains(needle))
                .unwrap()
                .split('|')
                .nth(2)
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(msgs("per-record inserts") > 50 * msgs("blocked inserts"));
    }

    #[test]
    fn e17_shape_loss_surfaces_as_retries_not_lost_txns() {
        let r = e17();
        let cell = |label: &str, idx: usize| -> String {
            r.lines()
                .find(|l| l.split('|').nth(1).is_some_and(|c| c.trim() == label))
                .unwrap_or_else(|| panic!("no row {label}"))
                .split('|')
                .nth(idx)
                .unwrap()
                .trim()
                .to_string()
        };
        // The fault-free baseline neither retries nor pays overhead.
        assert_eq!(cell("0%", 3), "0");
        assert_eq!(cell("0%", 7), "1.00x");
        // Loss surfaces as retries, monotonically with the rate ...
        let r1: u64 = cell("1%", 3).parse().unwrap();
        let r5: u64 = cell("5%", 3).parse().unwrap();
        assert!(r1 > 0, "1% loss must force at least one retry");
        assert!(r5 > r1, "retries must grow with the rate ({r1} -> {r5})");
        // ... never as lost transactions.
        for rate in ["0%", "1%", "2%", "5%"] {
            assert_eq!(cell(rate, 2), "150", "every txn commits at {rate}");
        }
    }

    #[test]
    fn e13_shape_vsbb_allows_outside_writer() {
        let r = e13();
        let sbb = r.lines().find(|l| l.contains("ENSCRIBE SBB")).unwrap();
        assert!(sbb.matches("BLOCKED").count() == 2);
        let vsbb = r.lines().find(|l| l.contains("SQL VSBB")).unwrap();
        assert!(vsbb.contains("proceeds") && vsbb.contains("BLOCKED"));
    }

    #[test]
    fn e18_shape_measure_counters_reproduce_the_ratios() {
        let r = e18();
        let lines: Vec<&str> = r.lines().collect();
        let msgs = |needle: &str| -> u64 {
            lines
                .iter()
                .find(|l| l.contains(needle))
                .unwrap()
                .split('|')
                .nth(2)
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let rat = msgs("record-at-a-time");
        let rsbb = msgs("RSBB (block");
        let vsbb = msgs("VSBB (10%");
        assert!(
            rat >= 3 * rsbb,
            "RSBB ≈3x on DP msgs.recv ({rat} vs {rsbb})"
        );
        assert!(rsbb >= 3 * vsbb, "VSBB ≈3x again ({rsbb} vs {vsbb})");
        // Same logical work each run, straight from the file entity.
        let examined = |needle: &str| -> u64 {
            lines
                .iter()
                .find(|l| l.contains(needle))
                .unwrap()
                .split('|')
                .nth(4)
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert_eq!(examined("record-at-a-time"), 10_000);
        assert_eq!(examined("VSBB (10%"), 10_000);
    }

    #[test]
    fn run_json_record_ids_and_gate_round_trip() {
        let json = run_json();
        let doc = crate::gate::parse(&json).unwrap();
        let ids: Vec<&str> = doc
            .as_arr()
            .unwrap()
            .iter()
            .map(|r| r.get("id").and_then(crate::gate::Json::as_str).unwrap())
            .collect();
        assert_eq!(
            ids,
            [
                "e2", "e4", "e6", "e9", "e17", "e18", "e19", "e20", "e21", "e22", "e22cdf",
                "measure"
            ]
        );
        // The same build's results gate cleanly against themselves, and the
        // measure record carries per-entity counters.
        assert!(crate::gate::perf_gate(&json, &json).is_ok());
        assert!(json.contains("\"kind\": \"measure\""), "{json}");
        assert!(json.contains("\"msgs.recv\""), "{json}");
    }

    #[test]
    fn trace_json_is_a_chrome_trace() {
        let t = trace_json();
        assert!(t.contains("\"traceEvents\""), "{t}");
        assert!(t.contains("\"ph\""), "{t}");
        // Causal spans render as duration slices with cross-track flow
        // arrows linking each request span to its DP-side handling span.
        assert!(t.contains("\"ph\": \"B\""), "{t}");
        assert!(t.contains("\"ph\": \"E\""), "{t}");
        assert!(t.contains("\"ph\": \"s\""), "{t}");
        assert!(t.contains("\"ph\": \"f\""), "{t}");
        // And the export stays machine-parseable JSON end to end.
        assert!(crate::gate::parse(&t).is_ok());
    }

    #[test]
    fn e19_shape_wait_profiles_sum_exactly_and_chaos_shows_retries() {
        let r = e19();
        assert!(r.contains("E2 VSBB scan"), "{r}");
        assert!(r.contains("E9 DebitCredit"), "{r}");
        // The chaos variant surfaces retry/backoff time; the fault-free
        // rows have none. Row cells are raw integers, so the perf gate
        // diffs every category with zero tolerance.
        let retry_of = |needle: &str| -> u64 {
            r.lines()
                .find(|l| l.contains(needle))
                .unwrap()
                .split('|')
                .nth(7)
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert_eq!(retry_of("E9 DebitCredit"), 0);
        assert!(retry_of("chaos") > 0, "{r}");
    }
}
