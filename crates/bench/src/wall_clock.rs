//! The workspace's only sanctioned wall-clock access.
//!
//! Everything inside the simulator runs on `nsql_sim` virtual time so that
//! traces replay byte-identically; `nsql-lint` bans `Instant`/`SystemTime`
//! everywhere else (see `lint.toml` `[wall_clock] allow`). The bench
//! harness legitimately needs real elapsed time — it measures the
//! *implementation's* cost, not the simulation's — so it goes through this
//! one audited helper.

use std::time::Instant;

/// A running wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

/// Start a stopwatch at the current wall-clock instant.
pub fn start() -> Stopwatch {
    Stopwatch(Instant::now())
}

impl Stopwatch {
    /// Seconds elapsed since [`start`] as a float.
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Microseconds elapsed since [`start`] as a float.
    pub fn elapsed_micros(&self) -> f64 {
        self.elapsed_secs() * 1e6
    }
}
