//! Chaos mode for the bench binary: `experiments chaos`.
//!
//! Runs the bank (DebitCredit) and Wisconsin workloads under seeded fault
//! schedules — 8 seeds x 5 fault mixes — and reports what the recovery
//! protocol absorbed. The invariants of `tests/chaos.rs` are re-asserted
//! here, so a violation aborts the run loudly instead of printing a table:
//! no committed transaction lost, no update applied twice, scans return
//! exactly the committed row set.

use crate::report::Table;
use nsql_core::{ClusterBuilder, FaultConfig};
use nsql_records::Value;
use nsql_sim::SimRng;
use nsql_workloads::{Bank, Wisconsin};

/// The fixed seed set (also used by the CI chaos job).
pub const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

const BANK_TXNS: u32 = 40;
const WISC_ROWS: u32 = 500;

/// The fault mixes every seed runs under; "crash" layers CPU failures on
/// top of message loss.
fn mixes(seed: u64) -> Vec<(&'static str, FaultConfig)> {
    vec![
        (
            "drop-heavy",
            FaultConfig {
                drop: 0.08,
                ..FaultConfig::with_seed(seed)
            },
        ),
        (
            "duplicate-heavy",
            FaultConfig {
                duplicate: 0.12,
                ..FaultConfig::with_seed(seed)
            },
        ),
        (
            "delay-heavy",
            FaultConfig {
                delay: 0.2,
                delay_us: (100, 5_000),
                ..FaultConfig::with_seed(seed)
            },
        ),
        (
            "everything",
            FaultConfig {
                drop: 0.05,
                duplicate: 0.05,
                delay: 0.05,
                error: 0.03,
                ..FaultConfig::with_seed(seed)
            },
        ),
        (
            "crash",
            FaultConfig {
                drop: 0.02,
                down_at: vec![30 + seed, 130 + seed],
                ..FaultConfig::with_seed(seed)
            },
        ),
    ]
}

/// Per-mix aggregate across all seeds.
#[derive(Default)]
struct Agg {
    faults: u64,
    retries: u64,
    dup_suppressed: u64,
    path_switches: u64,
    committed: i64,
    worst_conservation: f64,
    scan_rows: i64,
}

/// One bank run: `BANK_TXNS` debit-credit transactions under `cfg`,
/// committing what succeeds and aborting the rest, then a consistency
/// audit with the fault plane off.
fn bank_run(cfg: FaultConfig, agg: &mut Agg) {
    let db = ClusterBuilder::new()
        .volume_with_backup("$DATA1", 0, 1, 0, 3)
        .build();
    let bank = Bank::create(&db, 2, 25, "$DATA1").unwrap();
    let s = db.session();
    let fs = s.fs();
    let mut rng = SimRng::seed_from(cfg.seed ^ 0xB1);
    db.enable_faults(cfg);
    let mut committed = 0i64;
    let mut expected = 50.0 * 1000.0;
    for _ in 0..BANK_TXNS {
        let (aid, tid, bid, delta) = bank.draw(&mut rng);
        let txn = db.txnmgr.begin();
        match bank.debit_credit_sql(fs, txn, aid, tid, bid, delta) {
            Ok(()) if db.txnmgr.commit(txn, s.cpu()).is_ok() => {
                committed += 1;
                expected += delta;
            }
            Ok(()) => {}
            Err(_) => {
                let _ = db.txnmgr.abort(txn, s.cpu());
            }
        }
    }
    db.disable_faults();
    let err = bank.total_balance(&db).unwrap() - expected;
    assert!(
        err.abs() < 1e-6,
        "chaos: money lost or double-applied ({err:+})"
    );
    let mut s2 = db.session();
    let history = match s2.query("SELECT COUNT(*) FROM HISTORY").unwrap().rows[0].0[0] {
        Value::LargeInt(n) => n,
        ref other => panic!("expected COUNT, got {other:?}"),
    };
    assert_eq!(
        history, committed,
        "chaos: exactly one HISTORY row per committed transaction"
    );
    let m = db.snapshot();
    agg.faults += m.faults_injected;
    agg.retries += m.fs_retries;
    agg.dup_suppressed += m.dp_dup_suppressed;
    agg.path_switches += m.path_switches;
    agg.committed += committed;
    agg.worst_conservation = agg.worst_conservation.max(err.abs());
}

/// One Wisconsin run: a full scan under `cfg` must return exactly the
/// committed row set.
fn wisconsin_run(cfg: FaultConfig, agg: &mut Agg) {
    let db = ClusterBuilder::new()
        .volume_with_backup("$DATA1", 0, 1, 0, 3)
        .build();
    Wisconsin::create(&db, "WISC", WISC_ROWS, &["$DATA1"], 1).unwrap();
    db.enable_faults(cfg);
    let mut s = db.session();
    let r = s.query("SELECT UNIQUE1 FROM WISC").unwrap();
    db.disable_faults();
    let mut seen: Vec<i64> = r
        .rows
        .iter()
        .map(|row| match row.0[0] {
            Value::Int(n) => n as i64,
            ref other => panic!("expected INT, got {other:?}"),
        })
        .collect();
    seen.sort_unstable();
    assert_eq!(
        seen,
        (0..WISC_ROWS as i64).collect::<Vec<_>>(),
        "chaos: scan must return each committed row exactly once"
    );
    let m = db.snapshot();
    agg.faults += m.faults_injected;
    agg.retries += m.fs_retries;
    agg.dup_suppressed += m.dp_dup_suppressed;
    agg.path_switches += m.path_switches;
    agg.scan_rows += seen.len() as i64;
}

/// Run the full chaos matrix and render the per-mix report.
pub fn run_chaos() -> String {
    let mut t = Table::new(
        format!(
            "Chaos — bank ({BANK_TXNS} txns) + Wisconsin ({WISC_ROWS} rows) x {} seeds per mix",
            SEEDS.len()
        ),
        &[
            "fault mix",
            "faults injected",
            "FS retries",
            "dup suppressed",
            "path switches",
            "committed",
            "worst conservation",
            "scan rows ok",
        ],
    );
    let names: Vec<&'static str> = mixes(0).into_iter().map(|(n, _)| n).collect();
    for name in names {
        let mut agg = Agg::default();
        for seed in SEEDS {
            let cfg = mixes(seed)
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, c)| c)
                .unwrap();
            bank_run(cfg.clone(), &mut agg);
            wisconsin_run(cfg, &mut agg);
        }
        t.row(vec![
            name.to_string(),
            agg.faults.to_string(),
            agg.retries.to_string(),
            agg.dup_suppressed.to_string(),
            agg.path_switches.to_string(),
            format!(
                "{}/{}",
                agg.committed,
                BANK_TXNS as i64 * SEEDS.len() as i64
            ),
            format!("{:+.1e}", agg.worst_conservation),
            agg.scan_rows.to_string(),
        ]);
    }
    t.note("Every row re-asserts the fault-tolerance contract: account balances reconcile against the committed deltas, HISTORY holds exactly one row per commit, and the scan returns each committed row exactly once. Crashed-CPU mixes abort (doom) in-flight transactions — the committed column dips — but never lose a committed one.");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A slice of the matrix as a smoke test; the bench binary and CI run
    /// the full thing.
    #[test]
    fn chaos_mix_holds_invariants() {
        let mut agg = Agg::default();
        let cfg = mixes(3)
            .into_iter()
            .find(|(n, _)| *n == "everything")
            .map(|(_, c)| c)
            .unwrap();
        bank_run(cfg.clone(), &mut agg);
        wisconsin_run(cfg, &mut agg);
        assert!(agg.faults > 0, "the mix must actually inject faults");
        assert_eq!(agg.scan_rows, WISC_ROWS as i64);
    }
}
