//! Tabular report rendering for the experiment harness.

use std::fmt::Write as _;

/// A titled table of experiment results.
pub struct Table {
    /// Title line (experiment id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as a markdown-style table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(line, " {:<w$} |", c, w = widths[i]);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out
    }

    /// Render as one JSON object: `{"id", "title", "columns", "rows",
    /// "notes"}`, where `rows` maps each column header to the rendered
    /// cell. The `BENCH_results.json` record format.
    pub fn to_json(&self, id: &str) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"id\": {}, \"title\": {}, \"columns\": [",
            json_str(id),
            json_str(&self.title)
        );
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{}{}", if i > 0 { ", " } else { "" }, json_str(h));
        }
        let _ = write!(out, "], \"rows\": [");
        for (ri, r) in self.rows.iter().enumerate() {
            let _ = write!(out, "{}{{", if ri > 0 { ", " } else { "" });
            for (i, (h, c)) in self.headers.iter().zip(r).enumerate() {
                let _ = write!(
                    out,
                    "{}{}: {}",
                    if i > 0 { ", " } else { "" },
                    json_str(h),
                    json_str(c)
                );
            }
            let _ = write!(out, "}}");
        }
        let _ = write!(out, "], \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            let _ = write!(out, "{}{}", if i > 0 { ", " } else { "" }, json_str(n));
        }
        let _ = write!(out, "]}}");
        out
    }
}

/// Escape a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a ratio like `3.2x`.
pub fn ratio(num: u64, den: u64) -> String {
    if den == 0 {
        return "-".into();
    }
    format!("{:.1}x", num as f64 / den as f64)
}

/// Format microseconds as milliseconds.
pub fn ms(us: u64) -> String {
    format!("{:.2} ms", us as f64 / 1000.0)
}

/// Format microseconds as seconds.
pub fn secs(us: u64) -> String {
    format!("{:.3} s", us as f64 / 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("E0 — demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "123456".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("### E0 — demo"));
        assert!(s.contains("| alpha |"));
        assert!(s.contains("> a note"));
    }

    #[test]
    fn formats() {
        assert_eq!(ratio(6, 2), "3.0x");
        assert_eq!(ratio(1, 0), "-");
        assert_eq!(ms(1500), "1.50 ms");
        assert_eq!(secs(2_500_000), "2.500 s");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("µs ≈ x"), "\"µs ≈ x\"");
    }

    #[test]
    fn json_record_shape() {
        let mut t = Table::new("E0 — demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.note("a note");
        let j = t.to_json("e0");
        assert!(j.starts_with("{\"id\": \"e0\""));
        assert!(j.contains("\"columns\": [\"name\", \"value\"]"));
        assert!(j.contains("{\"name\": \"alpha\", \"value\": \"1\"}"));
        assert!(j.contains("\"notes\": [\"a note\"]"));
    }
}
