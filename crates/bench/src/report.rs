//! Tabular report rendering for the experiment harness.

use std::fmt::Write as _;

/// A titled table of experiment results.
pub struct Table {
    /// Title line (experiment id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as a markdown-style table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(line, " {:<w$} |", c, w = widths[i]);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out
    }
}

/// Format a ratio like `3.2x`.
pub fn ratio(num: u64, den: u64) -> String {
    if den == 0 {
        return "-".into();
    }
    format!("{:.1}x", num as f64 / den as f64)
}

/// Format microseconds as milliseconds.
pub fn ms(us: u64) -> String {
    format!("{:.2} ms", us as f64 / 1000.0)
}

/// Format microseconds as seconds.
pub fn secs(us: u64) -> String {
    format!("{:.3} s", us as f64 / 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("E0 — demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "123456".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("### E0 — demo"));
        assert!(s.contains("| alpha |"));
        assert!(s.contains("> a note"));
    }

    #[test]
    fn formats() {
        assert_eq!(ratio(6, 2), "3.0x");
        assert_eq!(ratio(1, 0), "-");
        assert_eq!(ms(1500), "1.50 ms");
        assert_eq!(secs(2_500_000), "2.500 s");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
