//! Benchmark harness: regenerates every experiment of DESIGN.md §4.
//!
//! `cargo run -p nsql-bench --bin experiments [--release] [-- e2 e9 ...]`
//! prints the report tables recorded in EXPERIMENTS.md; `-- --json` writes
//! machine-readable records to `BENCH_results.json`; `-- chaos` runs the
//! seeded fault-injection matrix over the bank and Wisconsin workloads;
//! `-- --trace-out trace.json` writes a Chrome trace-event file for the
//! canonical workload; `-- gate [baseline]` is the CI perf gate, diffing
//! fresh results against `BENCH_baseline.json` with zero tolerance on
//! message/IO/MEASURE counters.

pub mod chaos;
pub mod experiments;
pub mod gate;
pub mod report;
pub mod wall_clock;

pub use chaos::run_chaos;
pub use experiments::{run, run_json, trace_json};
pub use gate::perf_gate;
