//! CLI entry point: print experiment reports.
//!
//! - `--json`: also write one machine-readable record per core experiment
//!   to `BENCH_results.json` in the current directory.
//! - `--trace-out <path>`: run the canonical traced workload and write a
//!   Chrome trace-event JSON file (load into `chrome://tracing` or
//!   Perfetto; timestamps are virtual microseconds).
//! - `gate [baseline]`: the CI perf gate — run the JSON experiments and
//!   diff every message/IO/MEASURE counter against the checked-in
//!   baseline (default `BENCH_baseline.json`) with zero tolerance.
//!   Exits 1 and prints the per-counter diff on any regression.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("gate") {
        let baseline_path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_baseline.json");
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("perf gate: cannot read {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let current = nsql_bench::run_json();
        return match nsql_bench::perf_gate(&baseline, &current) {
            Ok(summary) => {
                print!("{summary}");
                ExitCode::SUCCESS
            }
            Err(report) => {
                print!("{report}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(pos) = args.iter().position(|a| a == "--trace-out") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--trace-out requires a path");
            return ExitCode::FAILURE;
        }
        let path = args.remove(pos);
        if let Err(e) = std::fs::write(&path, nsql_bench::trace_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
        if args.is_empty() {
            return ExitCode::SUCCESS;
        }
    }

    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        let json = nsql_bench::run_json();
        if let Err(e) = std::fs::write("BENCH_results.json", &json) {
            eprintln!("cannot write BENCH_results.json: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote BENCH_results.json");
        if args.is_empty() {
            return ExitCode::SUCCESS;
        }
    }

    if args.is_empty() {
        print!("{}", nsql_bench::run("all"));
        return ExitCode::SUCCESS;
    }
    for a in args {
        print!("{}", nsql_bench::run(&a));
    }
    ExitCode::SUCCESS
}
