//! CLI entry point: print experiment reports.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print!("{}", nsql_bench::run("all"));
        return;
    }
    for a in args {
        print!("{}", nsql_bench::run(&a));
    }
}
