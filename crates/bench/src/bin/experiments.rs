//! CLI entry point: print experiment reports.
//!
//! With `--json`, also write one machine-readable record per core
//! experiment to `BENCH_results.json` in the current directory.

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        let json = nsql_bench::run_json();
        std::fs::write("BENCH_results.json", &json).expect("write BENCH_results.json");
        eprintln!("wrote BENCH_results.json");
        if args.is_empty() {
            return;
        }
    }
    if args.is_empty() {
        print!("{}", nsql_bench::run("all"));
        return;
    }
    for a in args {
        print!("{}", nsql_bench::run(&a));
    }
}
