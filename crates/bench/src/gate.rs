//! The CI perf gate: diff a fresh `run_json()` output against the
//! checked-in `BENCH_baseline.json`.
//!
//! The simulation runs on a virtual clock, so every message, I/O, and
//! MEASURE counter in `BENCH_results.json` is exact per build. The gate
//! therefore compares with **zero tolerance**: any integer cell or counter
//! that moved is a behaviour change, and the author must either fix it or
//! regenerate the baseline in the same commit. Non-integer cells (rendered
//! times, ratios) are ignored — they restate the counters they derive from.
//!
//! The bench crate is dependency-free, so the gate carries its own minimal
//! JSON parser — just the subset `BENCH_results.json` uses.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer content, if this is a non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err("unterminated string".into()),
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

/// One detected regression (or baseline-shape problem).
struct Diff {
    record: String,
    what: String,
}

/// Compare a fresh `run_json()` output against the checked-in baseline.
///
/// Returns `Ok(summary)` when every gated value matches, `Err(report)`
/// listing each difference otherwise. Gated values: every MEASURE counter
/// of the `"measure"` record (and its `trace_dropped`), and every table
/// cell that is a whole number in the baseline — message counts, byte
/// counts, I/O counts, row counts. Rendered times and ratios are skipped.
pub fn perf_gate(baseline_text: &str, current_text: &str) -> Result<String, String> {
    let baseline = parse(baseline_text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let current =
        parse(current_text).map_err(|e| format!("current results are not valid JSON: {e}"))?;

    let index = |doc: &Json, which: &str| -> Result<BTreeMap<String, Json>, String> {
        let arr = doc
            .as_arr()
            .ok_or(format!("{which}: top level is not an array"))?;
        let mut map = BTreeMap::new();
        for rec in arr {
            let id = rec
                .get("id")
                .and_then(Json::as_str)
                .ok_or(format!("{which}: record without an \"id\""))?;
            map.insert(id.to_string(), rec.clone());
        }
        Ok(map)
    };
    let base = index(&baseline, "baseline")?;
    let cur = index(&current, "current")?;

    let mut diffs: Vec<Diff> = Vec::new();
    let mut compared = 0usize;

    for id in base.keys() {
        if !cur.contains_key(id) {
            diffs.push(Diff {
                record: id.clone(),
                what: "record missing from current results".into(),
            });
        }
    }
    for id in cur.keys() {
        if !base.contains_key(id) {
            diffs.push(Diff {
                record: id.clone(),
                what: "record not in baseline (regenerate BENCH_baseline.json)".into(),
            });
        }
    }

    for (id, b) in &base {
        let Some(c) = cur.get(id) else { continue };
        if b.get("kind").and_then(Json::as_str) == Some("measure") {
            compared += diff_measure(id, b, c, &mut diffs);
        } else {
            compared += diff_table(id, b, c, &mut diffs);
        }
    }

    if diffs.is_empty() {
        Ok(format!(
            "perf gate OK: {} records, {} gated values match the baseline exactly\n",
            base.len(),
            compared
        ))
    } else {
        let mut out = format!("perf gate FAILED: {} difference(s)\n", diffs.len());
        for d in &diffs {
            let _ = writeln!(out, "  [{}] {}", d.record, d.what);
        }
        out.push_str(
            "counters are deterministic: fix the regression or regenerate the baseline \
             (cargo run --release -p nsql-bench --bin experiments -- --json && \
             cp BENCH_results.json BENCH_baseline.json)\n",
        );
        Err(out)
    }
}

/// Compare the per-entity counters of two `"measure"` records exactly.
fn diff_measure(id: &str, base: &Json, cur: &Json, diffs: &mut Vec<Diff>) -> usize {
    let mut compared = 0;
    let bd = base.get("trace_dropped").and_then(Json::as_u64);
    let cd = cur.get("trace_dropped").and_then(Json::as_u64);
    compared += 1;
    if bd != cd {
        diffs.push(Diff {
            record: id.into(),
            what: format!("trace_dropped: baseline {bd:?}, current {cd:?}"),
        });
    }

    // (kind, name) -> counter map.
    let entities = |doc: &Json| -> BTreeMap<(String, String), BTreeMap<String, u64>> {
        let mut out = BTreeMap::new();
        for e in doc.get("entities").and_then(Json::as_arr).unwrap_or(&[]) {
            let kind = e.get("kind").and_then(Json::as_str).unwrap_or("?");
            let name = e.get("name").and_then(Json::as_str).unwrap_or("?");
            let mut counters = BTreeMap::new();
            if let Some(Json::Obj(fields)) = e.get("counters") {
                for (k, v) in fields {
                    counters.insert(k.clone(), v.as_u64().unwrap_or(u64::MAX));
                }
            }
            out.insert((kind.to_string(), name.to_string()), counters);
        }
        out
    };
    let be = entities(base);
    let ce = entities(cur);

    let keys: std::collections::BTreeSet<_> = be.keys().chain(ce.keys()).cloned().collect();
    for key in &keys {
        let (kind, name) = key;
        match (be.get(key), ce.get(key)) {
            (Some(_), None) => diffs.push(Diff {
                record: id.into(),
                what: format!("entity {kind} {name}: missing from current"),
            }),
            (None, Some(_)) => diffs.push(Diff {
                record: id.into(),
                what: format!("entity {kind} {name}: not in baseline"),
            }),
            (Some(bc), Some(cc)) => {
                let ctrs: std::collections::BTreeSet<_> =
                    bc.keys().chain(cc.keys()).cloned().collect();
                for ctr in &ctrs {
                    let bv = bc.get(ctr).copied().unwrap_or(0);
                    let cv = cc.get(ctr).copied().unwrap_or(0);
                    compared += 1;
                    if bv != cv {
                        diffs.push(Diff {
                            record: id.into(),
                            what: format!("{kind} {name} {ctr}: baseline {bv}, current {cv}"),
                        });
                    }
                }
            }
            (None, None) => unreachable!(),
        }
    }
    compared
}

/// Compare the integer cells of two table records exactly, row by row.
fn diff_table(id: &str, base: &Json, cur: &Json, diffs: &mut Vec<Diff>) -> usize {
    let mut compared = 0;
    let cols = |doc: &Json| -> Vec<String> {
        doc.get("columns")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|c| c.as_str().map(str::to_string))
            .collect()
    };
    let bcols = cols(base);
    if bcols != cols(cur) {
        diffs.push(Diff {
            record: id.into(),
            what: "column set changed (regenerate the baseline)".into(),
        });
        return compared;
    }
    let rows = |doc: &Json| -> Vec<Json> {
        doc.get("rows")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .to_vec()
    };
    let brows = rows(base);
    let crows = rows(cur);
    if brows.len() != crows.len() {
        diffs.push(Diff {
            record: id.into(),
            what: format!(
                "row count: baseline {}, current {}",
                brows.len(),
                crows.len()
            ),
        });
        return compared;
    }
    let label_col = bcols.first().cloned().unwrap_or_default();
    for (br, cr) in brows.iter().zip(&crows) {
        let label = br.get(&label_col).and_then(Json::as_str).unwrap_or("?");
        for col in &bcols {
            let bv = br.get(col).and_then(Json::as_str).unwrap_or("");
            let cv = cr.get(col).and_then(Json::as_str).unwrap_or("");
            // Gate whole-number cells (counters); the first column is the
            // row label and is gated as identity so rows can't be renamed
            // or reordered silently.
            let gated = col == &label_col || bv.parse::<u64>().is_ok();
            if !gated {
                continue;
            }
            compared += 1;
            if bv != cv {
                diffs.push(Diff {
                    record: id.into(),
                    what: format!(
                        "row \"{label}\" column \"{col}\": baseline \"{bv}\", current \"{cv}\""
                    ),
                });
            }
        }
    }
    compared
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_the_record_shapes() {
        let doc = r#"[{"id": "e2", "columns": ["a", "b"], "rows": [{"a": "x \"q\"", "b": "12"}], "notes": ["µs ≈ 3"]},
                      {"id": "measure", "kind": "measure", "at_us": 120, "trace_dropped": 0,
                       "entities": [{"kind": "process", "name": "$DATA1", "counters": {"msgs.recv": 42}}]}]"#;
        let v = parse(doc).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("id").and_then(Json::as_str), Some("e2"));
        let row = &arr[0].get("rows").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("a").and_then(Json::as_str), Some("x \"q\""));
        let ent = &arr[1].get("entities").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            ent.get("counters")
                .unwrap()
                .get("msgs.recv")
                .and_then(Json::as_u64),
            Some(42)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] trailing").is_err());
    }

    fn table_rec(id: &str, msgs: &str) -> String {
        format!(
            "{{\"id\": \"{id}\", \"title\": \"t\", \"columns\": [\"interface\", \"msgs\", \"elapsed\"], \
             \"rows\": [{{\"interface\": \"RAT\", \"msgs\": \"{msgs}\", \"elapsed\": \"1.20 ms\"}}], \"notes\": []}}"
        )
    }

    #[test]
    fn gate_passes_on_identical_results() {
        let doc = format!("[{}]", table_rec("e2", "100"));
        let ok = perf_gate(&doc, &doc).unwrap();
        assert!(ok.contains("perf gate OK"), "{ok}");
    }

    #[test]
    fn gate_fails_on_counter_drift_but_not_on_elapsed() {
        let base = format!("[{}]", table_rec("e2", "100"));
        let drifted = format!("[{}]", table_rec("e2", "101"));
        let err = perf_gate(&base, &drifted).unwrap_err();
        assert!(err.contains("column \"msgs\""), "{err}");
        assert!(err.contains("baseline \"100\", current \"101\""), "{err}");

        // Same counters, different rendered time: passes.
        let slow = format!("[{}]", table_rec("e2", "100")).replace("1.20 ms", "9.99 ms");
        assert!(perf_gate(&base, &slow).is_ok());
    }

    #[test]
    fn gate_fails_on_measure_counter_drift() {
        let m = |v: u64| {
            format!(
                "[{{\"id\": \"measure\", \"kind\": \"measure\", \"at_us\": 1, \"trace_dropped\": 0, \
                 \"entities\": [{{\"kind\": \"process\", \"name\": \"$DATA1\", \
                 \"counters\": {{\"msgs.recv\": {v}}}}}]}}]"
            )
        };
        let err = perf_gate(&m(42), &m(43)).unwrap_err();
        assert!(
            err.contains("process $DATA1 msgs.recv: baseline 42, current 43"),
            "{err}"
        );
        assert!(perf_gate(&m(42), &m(42)).is_ok());
    }

    #[test]
    fn gate_fails_on_missing_or_extra_records() {
        let base = format!("[{}, {}]", table_rec("e2", "1"), table_rec("e4", "2"));
        let cur = format!("[{}, {}]", table_rec("e2", "1"), table_rec("e9", "2"));
        let err = perf_gate(&base, &cur).unwrap_err();
        assert!(err.contains("[e4] record missing"), "{err}");
        assert!(err.contains("[e9] record not in baseline"), "{err}");
    }
}
