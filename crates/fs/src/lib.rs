#![warn(missing_docs)]
//! The File System — the client-side library of the FS-DP interface.
//!
//! "The File System is a set of system library routines which ... run in
//! the process environment of the application (client) program." It is the
//! natural locale for the logic that, transparently to the caller:
//!
//! * routes a request to the right **partition** based on the record key;
//! * accesses a base record **via a secondary index** (Figure 2: one
//!   message to the index's Disk Process, one to the base file's);
//! * **maintains secondary indices** consistently with inserts, updates
//!   and deletes of base records.
//!
//! Two APIs are exposed, mirroring the paper:
//!
//! * [`enscribe`] — the old record-at-a-time interface (`READ`, `WRITE`,
//!   `LOCKRECORD`, sequential reads, and real sequential block buffering
//!   with its mandatory file lock);
//! * [`sqlapi`] — the new field/set-oriented interface: VSBB/RSBB subset
//!   scans with the continuation re-drive loop, set-oriented update/delete
//!   fan-out across partitions, update-expression and constraint pushdown,
//!   and the blocked-insert extension.

pub mod enscribe;
pub mod sqlapi;

pub use sqlapi::{BlockedInserter, CursorUpdater, ScanResult};

use nsql_dp::{DpError, DpReply, DpRequest, FileId};
use nsql_msg::{Bus, BusError, CpuId, MsgKind};
use nsql_records::key::encode_key_value;
use nsql_records::{KeyRange, RecordDescriptor, Row, Value};
use nsql_sim::trace::TraceEventKind;
use nsql_sim::{CpuLayer, Ctr, EntityKind, FlightEntry, MeasureRecord, Sim, Wait};
use std::sync::Arc;

/// Errors surfaced to File System callers.
#[derive(Debug, Clone, PartialEq)]
pub enum FsError {
    /// The Disk Process rejected the request.
    Dp(DpError),
    /// The message system failed (process down / unknown).
    Bus(String),
    /// The row does not match the table's descriptor.
    BadRow(String),
    /// The server stayed unreachable after bounded retries and (where
    /// possible) a path switch; the statement is aborted cleanly.
    Unavailable(String),
    /// The FS-DP conversation violated the re-drive protocol (e.g. a
    /// continuation reply without a Subset Control Block or last key); the
    /// statement is aborted instead of panicking the requester.
    Protocol(String),
    /// The transaction has been doomed (deadlock victim or lock-wait
    /// timeout); the caller must abort it and may transparently retry the
    /// whole transaction. This is the typed, retryable variant client
    /// retry loops match on — never a panic path.
    Doomed {
        /// Why the transaction was doomed (contains `deadlock` or
        /// `timeout`).
        reason: String,
    },
}

impl From<DpError> for FsError {
    fn from(e: DpError) -> Self {
        match e {
            DpError::Deadlock { victim } => FsError::Doomed {
                reason: format!("deadlock victim {victim}"),
            },
            DpError::LockTimeout { victim } => FsError::Doomed {
                reason: format!("lock wait timeout doomed {victim}"),
            },
            other => FsError::Dp(other),
        }
    }
}

impl From<BusError> for FsError {
    fn from(e: BusError) -> Self {
        FsError::Bus(e.to_string())
    }
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Dp(e) => write!(f, "disk process error: {e}"),
            FsError::Bus(e) => write!(f, "message system error: {e}"),
            FsError::BadRow(e) => write!(f, "bad row: {e}"),
            FsError::Unavailable(e) => write!(f, "server unavailable: {e}"),
            FsError::Protocol(e) => write!(f, "FS-DP protocol violation: {e}"),
            FsError::Doomed { reason } => write!(f, "transaction doomed: {reason}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Bounded virtual-time retry policy the File System applies to FS-DP
/// requests that time out or find their path down.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Give up (and fail the statement) after this many retries.
    pub max_retries: u32,
    /// Initial backoff charged to the virtual clock before a retry.
    pub backoff_us: u64,
    /// Backoff doubles per retry up to this cap.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            backoff_us: 500,
            max_backoff_us: 8_000,
        }
    }
}

/// One horizontal partition of a file: a Disk Process and the primary-key
/// range it owns.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Disk Process name (`$DATA1`).
    pub process: String,
    /// File id on that volume.
    pub file: FileId,
    /// Primary-key range this partition owns.
    pub range: KeyRange,
}

/// A secondary index: a separate key-sequenced file, possibly on another
/// volume, whose rows are `(indexed fields ..., base primary-key fields)`.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    /// Index name.
    pub name: String,
    /// Disk Process holding the index file.
    pub process: String,
    /// File id of the index file.
    pub file: FileId,
    /// Base-table field numbers the index covers, in index-key order.
    pub base_fields: Vec<u16>,
    /// Unique index?
    pub unique: bool,
    /// Layout of index rows: indexed fields followed by the base table's
    /// primary-key fields.
    pub desc: RecordDescriptor,
}

impl IndexInfo {
    /// Construct the index metadata for `base_fields` of `base`.
    pub fn build(
        name: impl Into<String>,
        process: impl Into<String>,
        file: FileId,
        base: &RecordDescriptor,
        base_fields: Vec<u16>,
        unique: bool,
    ) -> IndexInfo {
        let mut fields = Vec::new();
        for &f in &base_fields {
            fields.push(base.fields[f as usize].clone());
        }
        for &k in &base.key_fields {
            fields.push(base.fields[k as usize].clone());
        }
        // Unique index: key = indexed fields only. Non-unique: the base
        // primary key is appended to the index key to make entries unique.
        let nkeys = if unique {
            base_fields.len()
        } else {
            fields.len()
        };
        let desc = RecordDescriptor::new(fields, (0..nkeys as u16).collect());
        IndexInfo {
            name: name.into(),
            process: process.into(),
            file,
            base_fields,
            unique,
            desc,
        }
    }

    /// Build the index row for a base row.
    pub fn index_row(&self, base: &RecordDescriptor, row: &[Value]) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.desc.num_fields());
        for &f in &self.base_fields {
            out.push(row[f as usize].clone());
        }
        for &k in &base.key_fields {
            out.push(row[k as usize].clone());
        }
        out
    }

    /// Extract the base primary key (encoded) from a decoded index row.
    pub fn base_key_from_index_row(&self, base: &RecordDescriptor, irow: &[Value]) -> Vec<u8> {
        let mut key = Vec::new();
        for (i, &k) in base.key_fields.iter().enumerate() {
            let ty = base.fields[k as usize].ty;
            encode_key_value(ty, &irow[self.base_fields.len() + i], &mut key);
        }
        key
    }

    /// Does an update of `fields` touch this index?
    pub fn touched_by(&self, fields: &[u16]) -> bool {
        fields.iter().any(|f| self.base_fields.contains(f))
    }
}

/// An open file (table): the union of its partitions plus its indices.
/// "The file or table is viewed as the sum of all its partitions and
/// secondary indices only from the perspective of the SQL Executor or
/// ENSCRIBE File System invoker."
#[derive(Debug, Clone)]
pub struct OpenFile {
    /// Table name (diagnostics).
    pub name: String,
    /// Record layout.
    pub desc: RecordDescriptor,
    /// Partitions in ascending key order.
    pub partitions: Vec<Partition>,
    /// Secondary indices.
    pub indexes: Vec<IndexInfo>,
}

impl OpenFile {
    /// A single-partition table with no indices.
    pub fn single(
        name: impl Into<String>,
        desc: RecordDescriptor,
        process: impl Into<String>,
        file: FileId,
    ) -> OpenFile {
        OpenFile {
            name: name.into(),
            desc,
            partitions: vec![Partition {
                process: process.into(),
                file,
                range: KeyRange::all(),
            }],
            indexes: Vec::new(),
        }
    }

    /// The partition owning `key`.
    pub fn partition_for(&self, key: &[u8]) -> &Partition {
        self.partitions
            .iter()
            .find(|p| p.range.contains(key))
            .expect("partition ranges must cover the key space")
    }

    /// Partitions overlapping `range`, each with the clipped sub-range.
    pub fn partitions_for_range(&self, range: &KeyRange) -> Vec<(&Partition, KeyRange)> {
        self.partitions
            .iter()
            .filter_map(|p| {
                let clipped = range.intersect(&p.range);
                (!clipped.is_empty()).then_some((p, clipped))
            })
            .collect()
    }
}

/// Source of unique opener ids for sync-ID duplicate suppression. The
/// values only need to be distinct per File System instance within one
/// process; they never influence timing, metrics or traces.
static NEXT_OPENER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// The File System library instance of one requester (application process).
pub struct FileSystem {
    pub(crate) sim: Sim,
    pub(crate) bus: Arc<Bus>,
    /// The CPU the requester runs on (message locality depends on it).
    pub cpu: CpuId,
    /// Retry/backoff policy for timed-out or path-down requests.
    pub retry: RetryPolicy,
    /// This opener's identity in every sync ID it issues.
    opener: u64,
    /// Per-opener sync sequence (retries of one request reuse one value).
    sync_seq: std::sync::atomic::AtomicU64,
    /// MEASURE record of the requester's CPU: re-drives and path switches
    /// are charged to the CPU, not to any one server process.
    rec: Arc<MeasureRecord>,
}

impl FileSystem {
    /// A File System bound to a requester CPU.
    pub fn new(sim: Sim, bus: Arc<Bus>, cpu: CpuId) -> FileSystem {
        let rec = sim.measure.entity(EntityKind::Cpu, &cpu.to_string());
        FileSystem {
            sim,
            bus,
            cpu,
            retry: RetryPolicy::default(),
            opener: NEXT_OPENER.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            sync_seq: std::sync::atomic::AtomicU64::new(0),
            rec,
        }
    }

    /// The simulation context (experiments).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Send one FS-DP request and unwrap the reply. Public for the SQL
    /// catalog (DDL) and the experiment harness; regular data access goes
    /// through the typed methods.
    ///
    /// Every request carries a sync ID, and this is the File System's
    /// recovery chokepoint: on a timeout or a down path it backs off
    /// (bounded, virtual-time), asks the cluster to re-resolve the
    /// volume's primary (backup takeover), and retries the *same* sync ID
    /// so the Disk Process can suppress a duplicate execution. Retries
    /// exhausted surface as [`FsError::Unavailable`] — a statement error,
    /// not a panic.
    pub fn send(&self, to: &str, req: DpRequest) -> Result<DpReply, FsError> {
        self.sim.cpu_work(CpuLayer::FileSystem, 2);
        let kind = if req.is_redrive() {
            MsgKind::Redrive
        } else {
            MsgKind::FsDp
        };
        let size = req.wire_size();
        let label = req.name();
        // The request span: one hop of the statement's causal tree, open
        // across every retry of this logical request. Its identity rides
        // the already-accounted request header so the Disk Process can
        // attach its handling span on the far side of the wire.
        let span = self.sim.span_child(label, &self.cpu.to_string());
        let env = nsql_dp::SyncRequest {
            sync: nsql_dp::SyncId {
                opener: self.opener,
                seq: self
                    .sync_seq
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            },
            span: span.header(),
            req,
        };
        let make = move || -> Box<dyn std::any::Any + Send> { Box::new(env.clone()) };
        let mut attempt = 0u32;
        let mut backoff = self.retry.backoff_us;
        loop {
            match self
                .bus
                .request_replayable(self.cpu, to, kind, size, &make, label)
            {
                Ok(resp) => {
                    let reply = match resp.downcast::<DpReply>() {
                        Ok(r) => r,
                        Err(_) => {
                            self.sim
                                .flight_dump(to, "protocol violation (bad reply type)");
                            return Err(FsError::Protocol("reply was not a DpReply".to_string()));
                        }
                    };
                    return match reply {
                        // From<DpError> routes doom-class errors (deadlock
                        // victim, lock-wait timeout) to FsError::Doomed.
                        DpReply::Error(e) => Err(FsError::from(e)),
                        ok => Ok(ok),
                    };
                }
                Err(e) if e.is_retriable() && attempt < self.retry.max_retries => {
                    attempt += 1;
                    self.sim.metrics.fs_retries.inc();
                    self.rec.bump(Ctr::RetryBackoffs);
                    if matches!(e, BusError::CpuDown(_)) && self.bus.try_path_switch(to) {
                        self.sim.metrics.path_switches.inc();
                        self.rec.bump(Ctr::PathTakeovers);
                        self.sim.trace_emit(|| TraceEventKind::PathSwitch {
                            to: to.to_string(),
                            resumed: false,
                        });
                    }
                    self.sim.clock.advance_in(Wait::Retry, backoff);
                    self.sim.flight.record(
                        to,
                        FlightEntry {
                            at: self.sim.now(),
                            tag: "retry",
                            label: label.to_string(),
                            a: attempt as u64,
                            b: backoff,
                        },
                    );
                    self.sim.trace_emit(|| TraceEventKind::Retry {
                        label: label.to_string(),
                        to: to.to_string(),
                        attempt,
                        backoff_us: backoff,
                    });
                    backoff = (backoff * 2).min(self.retry.max_backoff_us);
                }
                Err(e) if e.is_retriable() => {
                    // The server stayed unreachable through the whole retry
                    // budget: dump its flight ring for the postmortem.
                    self.sim.flight.record(
                        to,
                        FlightEntry {
                            at: self.sim.now(),
                            tag: "error",
                            label: format!("{label}: {e}"),
                            a: attempt as u64,
                            b: 0,
                        },
                    );
                    self.sim.flight_dump(to, "retries exhausted (FS)");
                    return Err(FsError::Unavailable(e.to_string()));
                }
                Err(e) => return Err(FsError::Bus(e.to_string())),
            }
        }
    }

    /// Decode a full record into a row.
    pub(crate) fn decode(&self, desc: &RecordDescriptor, bytes: &[u8]) -> Result<Row, FsError> {
        self.sim.cpu_work(CpuLayer::FileSystem, 1);
        nsql_records::row::decode_row(desc, bytes).map_err(|e| FsError::BadRow(e.to_string()))
    }
}

#[cfg(test)]
mod tests;
