//! File System tests: partition routing, index maintenance, Figure-2 paths
//! and the three sequential-read interfaces.

use crate::enscribe::EnscribeCursor;
use crate::sqlapi::BlockedInserter;
use crate::*;
use nsql_disk::Disk;
use nsql_dp::{DiskProcess, DpConfig, DpContext, FileKind, ReadLock, SubsetMode};
use nsql_lock::LockMode;
use nsql_records::key::{encode_key_prefix, encode_record_key};
use nsql_records::{CmpOp, Expr, FieldDef, FieldType, OwnedBound, SetList};
use nsql_tmf::{CommitTimer, LsnSource, Trail, TxnManager, AUDIT_PROCESS};

struct World {
    sim: Sim,
    bus: Arc<Bus>,
    txnmgr: Arc<TxnManager>,
    fs: FileSystem,
    client: CpuId,
    dps: Vec<Arc<DiskProcess>>,
}

fn world(volumes: &[&str]) -> World {
    let sim = Sim::new();
    let bus = Bus::new(sim.clone());
    let lsns = LsnSource::new();
    let trail = Trail::new(sim.clone(), Arc::clone(&lsns), CommitTimer::Fixed(1_000));
    bus.register(AUDIT_PROCESS, CpuId::new(0, 3), trail.clone());
    let txnmgr = TxnManager::new(sim.clone(), Arc::clone(&bus));
    let ctx = DpContext {
        sim: sim.clone(),
        bus: Arc::clone(&bus),
        trail,
        txnmgr: Arc::clone(&txnmgr),
        lsns,
    };
    let mut dps = Vec::new();
    for (i, name) in volumes.iter().enumerate() {
        let disk = Disk::new(sim.clone(), *name, true);
        let dp = DiskProcess::format(
            &ctx,
            name,
            CpuId::new(0, 1 + i as u8),
            disk,
            DpConfig::default(),
        );
        dps.push(dp);
    }
    let client = CpuId::new(0, 0);
    let fs = FileSystem::new(sim.clone(), Arc::clone(&bus), client);
    World {
        sim,
        bus,
        txnmgr,
        fs,
        client,
        dps,
    }
}

fn emp_desc() -> RecordDescriptor {
    RecordDescriptor::new(
        vec![
            FieldDef::new("EMPNO", FieldType::Int),
            FieldDef::new("NAME", FieldType::Char(12)),
            FieldDef::new("DEPT", FieldType::Int),
            FieldDef::new("SALARY", FieldType::Double),
        ],
        vec![0],
    )
}

fn emp_row(empno: i32, name: &str, dept: i32, salary: f64) -> Vec<Value> {
    vec![
        Value::Int(empno),
        Value::Str(name.into()),
        Value::Int(dept),
        Value::Double(salary),
    ]
}

fn emp_key(empno: i32) -> Vec<u8> {
    encode_record_key(&emp_desc(), &emp_row(empno, "", 0, 0.0))
}

/// Create the EMP table partitioned at EMPNO = 500 across two volumes,
/// with a (non-unique) index on DEPT on a third volume.
fn create_partitioned_emp(w: &World) -> OpenFile {
    let desc = emp_desc();
    let mk_file = |proc_name: &str, kind: FileKind| -> FileId {
        match w
            .fs
            .send(proc_name, nsql_dp::DpRequest::CreateFile { kind })
            .unwrap()
        {
            nsql_dp::DpReply::FileCreated(id) => id,
            other => panic!("{other:?}"),
        }
    };
    let f1 = mk_file("$DATA1", FileKind::KeySequenced(desc.clone()));
    let f2 = mk_file("$DATA2", FileKind::KeySequenced(desc.clone()));
    let split = emp_key(500);
    let mut of = OpenFile {
        name: "EMP".into(),
        desc: desc.clone(),
        partitions: vec![
            Partition {
                process: "$DATA1".into(),
                file: f1,
                range: KeyRange {
                    begin: OwnedBound::Unbounded,
                    end: OwnedBound::Excluded(split.clone()),
                },
            },
            Partition {
                process: "$DATA2".into(),
                file: f2,
                range: KeyRange {
                    begin: OwnedBound::Included(split),
                    end: OwnedBound::Unbounded,
                },
            },
        ],
        indexes: Vec::new(),
    };
    // Index on DEPT, on the third volume.
    let idx = IndexInfo::build("EMP_DEPT", "$IDX", 0, &desc, vec![2], false);
    let ifile = mk_file("$IDX", FileKind::KeySequenced(idx.desc.clone()));
    let idx = IndexInfo { file: ifile, ..idx };
    of.indexes.push(idx);
    of
}

fn load(w: &World, of: &OpenFile, n: i32) {
    let txn = w.txnmgr.begin();
    for i in 0..n {
        w.fs.insert_row(
            txn,
            of,
            &emp_row(i, &format!("E{i:05}"), i % 10, (1000 + i) as f64),
        )
        .unwrap();
    }
    w.txnmgr.commit(txn, w.client).unwrap();
}

#[test]
fn partition_routing_by_key() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 1000);
    // Keys below 500 live on $DATA1, the rest on $DATA2.
    assert_eq!(of.partition_for(&emp_key(10)).process, "$DATA1");
    assert_eq!(of.partition_for(&emp_key(700)).process, "$DATA2");
    // Point reads work on both sides of the split.
    let row =
        w.fs.read_by_pk(None, &of, &[Value::Int(499)], ReadLock::None)
            .unwrap();
    assert_eq!(row.unwrap().0[0], Value::Int(499));
    let row =
        w.fs.read_by_pk(None, &of, &[Value::Int(500)], ReadLock::None)
            .unwrap();
    assert_eq!(row.unwrap().0[0], Value::Int(500));
}

#[test]
fn partitioned_scan_fans_out_in_order() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 1000);
    let scan =
        w.fs.scan(
            None,
            &of,
            &KeyRange::all(),
            None,
            Some(&[0]),
            SubsetMode::Vsbb,
            ReadLock::None,
        )
        .unwrap();
    assert_eq!(scan.rows.len(), 1000);
    // Rows arrive in key order across the partition boundary.
    let ids: Vec<i32> = scan
        .rows
        .iter()
        .map(|r| match r.0[0] {
            Value::Int(i) => i,
            _ => panic!(),
        })
        .collect();
    assert!(ids.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn range_scan_touches_only_needed_partition() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 1000);
    let before = w.sim.metrics.snapshot();
    let range = KeyRange {
        begin: OwnedBound::Included(emp_key(600)),
        end: OwnedBound::Included(emp_key(650)),
    };
    let scan =
        w.fs.scan(
            None,
            &of,
            &range,
            None,
            Some(&[0]),
            SubsetMode::Vsbb,
            ReadLock::None,
        )
        .unwrap();
    assert_eq!(scan.rows.len(), 51);
    let d = w.sim.metrics.since(&before);
    // Only $DATA2 was consulted: 51 narrow rows fit one virtual block.
    assert_eq!(d.msgs_fs_dp, 1);
}

#[test]
fn figure_2_read_via_alternate_key() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 100);
    let idx = &of.indexes[0];
    // All employees in DEPT 3: index range on prefix (dept = 3).
    let prefix = encode_key_prefix(&[(FieldType::Int, Value::Int(3))]);
    let range = KeyRange::prefix(prefix);
    let before = w.sim.metrics.snapshot();
    let rows =
        w.fs.read_via_index(None, &of, idx, &range, ReadLock::None)
            .unwrap();
    assert_eq!(rows.len(), 10);
    for r in &rows {
        assert_eq!(r.0[2], Value::Int(3));
        assert_eq!(r.0.len(), 4, "full base rows returned");
    }
    let d = w.sim.metrics.since(&before);
    // Figure 2's shape: one index subset message + one base read per row.
    assert_eq!(d.msgs_fs_dp, 1 + 10);
}

#[test]
fn index_maintained_on_insert_update_delete() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 20);
    let idx = &of.indexes[0];
    let dept_range =
        |d: i32| KeyRange::prefix(encode_key_prefix(&[(FieldType::Int, Value::Int(d))]));

    // Move EMPNO 5 from DEPT 5 to DEPT 9 (indexed field -> maintenance).
    let txn = w.txnmgr.begin();
    let sets = SetList {
        sets: vec![(2, Expr::lit(Value::Int(9)))],
    };
    w.fs.update_by_key(txn, &of, &emp_key(5), &sets, None)
        .unwrap();
    w.txnmgr.commit(txn, w.client).unwrap();

    let in_5 =
        w.fs.scan_index(None, idx, &dept_range(5), None, ReadLock::None)
            .unwrap();
    assert!(
        in_5.iter().all(|r| r.0[1] != Value::Int(5)),
        "old index entry removed"
    );
    let in_9 =
        w.fs.scan_index(None, idx, &dept_range(9), None, ReadLock::None)
            .unwrap();
    assert!(
        in_9.iter().any(|r| r.0[1] == Value::Int(5)),
        "new entry added"
    );

    // Delete EMPNO 5: its index entry disappears.
    let txn = w.txnmgr.begin();
    w.fs.delete_by_key(txn, &of, &emp_key(5)).unwrap();
    w.txnmgr.commit(txn, w.client).unwrap();
    let in_9 =
        w.fs.scan_index(None, idx, &dept_range(9), None, ReadLock::None)
            .unwrap();
    assert!(in_9.iter().all(|r| r.0[1] != Value::Int(5)));
}

#[test]
fn update_of_unindexed_field_pushes_down() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 100);
    let before = w.sim.metrics.snapshot();
    let txn = w.txnmgr.begin();
    // SALARY is not indexed: full pushdown, no reads back to the FS.
    let sets = SetList {
        sets: vec![(
            3,
            Expr::Arith(
                Box::new(Expr::Field(3)),
                nsql_records::ArithOp::Mul,
                Box::new(Expr::lit(Value::Double(1.07))),
            ),
        )],
    };
    let n =
        w.fs.update_set(txn, &of, &KeyRange::all(), None, &sets, None)
            .unwrap();
    w.txnmgr.commit(txn, w.client).unwrap();
    assert_eq!(n, 100);
    let d = w.sim.metrics.since(&before);
    assert!(
        d.msgs_fs_dp <= 4,
        "set-oriented pushdown should need ~1 message per partition, got {}",
        d.msgs_fs_dp
    );
    assert_eq!(d.rows_returned, 0);
}

#[test]
fn update_of_indexed_field_falls_back_to_maintenance() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 30);
    let txn = w.txnmgr.begin();
    let sets = SetList {
        sets: vec![(2, Expr::lit(Value::Int(7)))],
    };
    let n =
        w.fs.update_set(
            txn,
            &of,
            &KeyRange {
                begin: OwnedBound::Unbounded,
                end: OwnedBound::Included(emp_key(9)),
            },
            None,
            &sets,
            None,
        )
        .unwrap();
    w.txnmgr.commit(txn, w.client).unwrap();
    assert_eq!(n, 10);
    // Every employee 0..=9 is now in DEPT 7 per the index.
    let idx = &of.indexes[0];
    let range = KeyRange::prefix(encode_key_prefix(&[(FieldType::Int, Value::Int(7))]));
    let entries =
        w.fs.scan_index(None, idx, &range, None, ReadLock::None)
            .unwrap();
    // Originally EMPNO 7 and 17, 27 were in dept 7; after the update 0..=9
    // all are, and 7 stays: total = 10 + {17, 27} = 12.
    assert_eq!(entries.len(), 12);
}

#[test]
fn sequential_read_interfaces_message_ratio() {
    // The E2 mechanism: record-at-a-time ≫ RSBB ≫ VSBB in message count.
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 1000);

    // Record-at-a-time.
    let before = w.sim.metrics.snapshot();
    let mut cur = w.fs.ens_open(&of, None);
    let mut n = 0;
    while w.fs.ens_read_next(&mut cur).unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, 1000);
    let record_at_a_time = w.sim.metrics.since(&before).msgs_fs_dp;

    // RSBB.
    let txn = w.txnmgr.begin();
    let before = w.sim.metrics.snapshot();
    let mut cur: EnscribeCursor = w.fs.ens_open_sbb(&of, txn).unwrap();
    let mut n = 0;
    while w.fs.ens_read_next(&mut cur).unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, 1000);
    let rsbb = w.sim.metrics.since(&before).msgs_fs_dp;
    w.txnmgr.commit(txn, w.client).unwrap();

    // VSBB with projection (narrow rows pack densely).
    let before = w.sim.metrics.snapshot();
    let scan =
        w.fs.scan(
            None,
            &of,
            &KeyRange::all(),
            None,
            Some(&[0]),
            SubsetMode::Vsbb,
            ReadLock::None,
        )
        .unwrap();
    assert_eq!(scan.rows.len(), 1000);
    let vsbb = w.sim.metrics.since(&before).msgs_fs_dp;

    assert!(record_at_a_time >= 1000);
    assert!(
        rsbb * 3 <= record_at_a_time,
        "RSBB ({rsbb}) must be at least 3x fewer messages than record-at-a-time ({record_at_a_time})"
    );
    assert!(
        vsbb * 2 <= rsbb,
        "projected VSBB ({vsbb}) must beat RSBB ({rsbb})"
    );
}

#[test]
fn sbb_requires_file_lock_blocking_writers() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 10);
    let reader = w.txnmgr.begin();
    let _cur = w.fs.ens_open_sbb(&of, reader).unwrap();
    // A writer is blocked anywhere in the file.
    let writer = w.txnmgr.begin();
    let err =
        w.fs.insert_row(writer, &of, &emp_row(5000, "W", 0, 0.0))
            .unwrap_err();
    assert!(matches!(err, FsError::Dp(nsql_dp::DpError::Locked { .. })));
    w.txnmgr.abort(writer, w.client).unwrap();
    w.txnmgr.commit(reader, w.client).unwrap();
}

#[test]
fn enscribe_rewrite_is_read_plus_write() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 10);
    let txn = w.txnmgr.begin();
    let before = w.sim.metrics.snapshot();
    // ENSCRIBE discipline: read the record, change a field, write back.
    let old =
        w.fs.ens_read(Some(txn), &of, &emp_key(4), ReadLock::Shared)
            .unwrap()
            .unwrap();
    let mut new = old.0.clone();
    new[3] = Value::Double(4321.0);
    w.fs.ens_rewrite(txn, &of, &old.0, &new).unwrap();
    let d = w.sim.metrics.since(&before);
    assert_eq!(d.msgs_fs_dp, 2, "read + write");
    w.txnmgr.commit(txn, w.client).unwrap();
    let got =
        w.fs.read_by_key(None, &of, &emp_key(4), ReadLock::None)
            .unwrap()
            .unwrap();
    assert_eq!(got.0[3], Value::Double(4321.0));
}

#[test]
fn blocked_inserter_batches_messages() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    let txn = w.txnmgr.begin();
    let before = w.sim.metrics.snapshot();
    let mut ins = BlockedInserter::new(&w.fs, &of, txn);
    for i in 0..400 {
        ins.push(&emp_row(i, "BULK", i % 10, 1.0)).unwrap();
    }
    ins.flush().unwrap();
    let d = w.sim.metrics.since(&before);
    w.txnmgr.commit(txn, w.client).unwrap();
    // 400 base records + 400 index entries in a handful of messages.
    assert!(
        d.msgs_fs_dp < 20,
        "blocked insert should batch heavily, got {} messages",
        d.msgs_fs_dp
    );
    let got =
        w.fs.read_by_key(None, &of, &emp_key(399), ReadLock::None)
            .unwrap();
    assert!(got.is_some());
    // Index entries exist too.
    let idx = &of.indexes[0];
    let range = KeyRange::prefix(encode_key_prefix(&[(FieldType::Int, Value::Int(3))]));
    let entries =
        w.fs.scan_index(None, idx, &range, None, ReadLock::None)
            .unwrap();
    assert_eq!(entries.len(), 40);
}

#[test]
fn unique_index_rejects_duplicates() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let desc = emp_desc();
    let f1 = match w
        .fs
        .send(
            "$DATA1",
            nsql_dp::DpRequest::CreateFile {
                kind: FileKind::KeySequenced(desc.clone()),
            },
        )
        .unwrap()
    {
        nsql_dp::DpReply::FileCreated(id) => id,
        _ => panic!(),
    };
    let mut of = OpenFile::single("EMP", desc.clone(), "$DATA1", f1);
    let idx = IndexInfo::build("EMP_NAME_U", "$IDX", 0, &desc, vec![1], true);
    let ifile = match w
        .fs
        .send(
            "$IDX",
            nsql_dp::DpRequest::CreateFile {
                kind: FileKind::KeySequenced(idx.desc.clone()),
            },
        )
        .unwrap()
    {
        nsql_dp::DpReply::FileCreated(id) => id,
        _ => panic!(),
    };
    of.indexes.push(IndexInfo { file: ifile, ..idx });

    let txn = w.txnmgr.begin();
    w.fs.insert_row(txn, &of, &emp_row(1, "ALICE", 0, 1.0))
        .unwrap();
    let err =
        w.fs.insert_row(txn, &of, &emp_row(2, "ALICE", 0, 2.0))
            .unwrap_err();
    assert!(matches!(err, FsError::Dp(nsql_dp::DpError::DuplicateKey)));
    w.txnmgr.abort(txn, w.client).unwrap();
}

#[test]
fn delete_set_pushdown_without_indices() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let desc = emp_desc();
    let f1 = match w
        .fs
        .send(
            "$DATA1",
            nsql_dp::DpRequest::CreateFile {
                kind: FileKind::KeySequenced(desc.clone()),
            },
        )
        .unwrap()
    {
        nsql_dp::DpReply::FileCreated(id) => id,
        _ => panic!(),
    };
    let of = OpenFile::single("EMP", desc, "$DATA1", f1);
    let txn = w.txnmgr.begin();
    for i in 0..200 {
        w.fs.insert_row(txn, &of, &emp_row(i, "X", 0, i as f64))
            .unwrap();
    }
    w.txnmgr.commit(txn, w.client).unwrap();

    let before = w.sim.metrics.snapshot();
    let txn = w.txnmgr.begin();
    let n =
        w.fs.delete_set(
            txn,
            &of,
            &KeyRange::all(),
            Some(&Expr::field_cmp(3, CmpOp::Lt, Value::Double(100.0))),
        )
        .unwrap();
    w.txnmgr.commit(txn, w.client).unwrap();
    assert_eq!(n, 100);
    let d = w.sim.metrics.since(&before);
    assert!(
        d.msgs_fs_dp <= 2,
        "delete subset pushes down, got {}",
        d.msgs_fs_dp
    );
}

#[test]
fn remote_partition_costs_more_time() {
    // Same table, partition 2 on a remote node: scanning it takes longer in
    // virtual time than the local partition.
    let sim = Sim::new();
    let bus = Bus::new(sim.clone());
    let lsns = LsnSource::new();
    let trail = Trail::new(sim.clone(), Arc::clone(&lsns), CommitTimer::Fixed(1_000));
    bus.register(AUDIT_PROCESS, CpuId::new(0, 3), trail.clone());
    let txnmgr = TxnManager::new(sim.clone(), Arc::clone(&bus));
    let ctx = DpContext {
        sim: sim.clone(),
        bus: Arc::clone(&bus),
        trail,
        txnmgr: Arc::clone(&txnmgr),
        lsns,
    };
    let local = DiskProcess::format(
        &ctx,
        "$LOCAL",
        CpuId::new(0, 1),
        Disk::new(sim.clone(), "$LOCAL", false),
        DpConfig::default(),
    );
    let remote = DiskProcess::format(
        &ctx,
        "$REMOTE",
        CpuId::new(1, 0),
        Disk::new(sim.clone(), "$REMOTE", false),
        DpConfig::default(),
    );
    let _ = (&local, &remote);
    let client = CpuId::new(0, 0);
    let fs = FileSystem::new(sim.clone(), Arc::clone(&bus), client);
    let desc = emp_desc();
    let mk = |proc_name: &str| -> FileId {
        match fs
            .send(
                proc_name,
                nsql_dp::DpRequest::CreateFile {
                    kind: FileKind::KeySequenced(desc.clone()),
                },
            )
            .unwrap()
        {
            nsql_dp::DpReply::FileCreated(id) => id,
            _ => panic!(),
        }
    };
    let lf = mk("$LOCAL");
    let rf = mk("$REMOTE");
    let of_local = OpenFile::single("L", desc.clone(), "$LOCAL", lf);
    let of_remote = OpenFile::single("R", desc.clone(), "$REMOTE", rf);
    let txn = txnmgr.begin();
    for i in 0..500 {
        fs.insert_row(txn, &of_local, &emp_row(i, "L", 0, 0.0))
            .unwrap();
        fs.insert_row(txn, &of_remote, &emp_row(i, "R", 0, 0.0))
            .unwrap();
    }
    txnmgr.commit(txn, client).unwrap();

    let t0 = sim.now();
    fs.scan(
        None,
        &of_local,
        &KeyRange::all(),
        None,
        Some(&[0]),
        SubsetMode::Vsbb,
        ReadLock::None,
    )
    .unwrap();
    let local_time = sim.now() - t0;
    let t1 = sim.now();
    fs.scan(
        None,
        &of_remote,
        &KeyRange::all(),
        None,
        Some(&[0]),
        SubsetMode::Vsbb,
        ReadLock::None,
    )
    .unwrap();
    let remote_time = sim.now() - t1;
    assert!(
        remote_time > local_time,
        "remote scan ({remote_time}) should cost more than local ({local_time})"
    );
}

#[test]
fn lock_api_direct() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 5);
    let t1 = w.txnmgr.begin();
    w.fs.ens_lock_record(t1, &of, &emp_key(1), LockMode::Exclusive)
        .unwrap();
    let t2 = w.txnmgr.begin();
    let err =
        w.fs.ens_lock_record(t2, &of, &emp_key(1), LockMode::Shared)
            .unwrap_err();
    assert!(matches!(err, FsError::Dp(nsql_dp::DpError::Locked { .. })));
    w.txnmgr.abort(t2, w.client).unwrap();
    w.txnmgr.commit(t1, w.client).unwrap();
    let _ = &w.dps;
    let _ = &w.bus;
}

#[test]
fn cursor_updater_batches_where_current() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let of = create_partitioned_emp(&w);
    load(&w, &of, 200);

    // A cursor walks the table; half the rows get updated, a quarter
    // deleted — all buffered and shipped in a handful of messages.
    let txn = w.txnmgr.begin();
    let scan =
        w.fs.scan(
            Some(txn),
            &of,
            &KeyRange::all(),
            None,
            None,
            SubsetMode::Vsbb,
            nsql_dp::ReadLock::Shared,
        )
        .unwrap();
    let before = w.sim.metrics.snapshot();
    let mut cur = crate::CursorUpdater::new(&w.fs, &of, txn);
    for (i, row) in scan.rows.iter().enumerate() {
        if i % 4 == 0 {
            cur.delete(&row.0).unwrap();
        } else if i % 2 == 0 {
            let mut new = row.0.clone();
            new[3] = Value::Double(7777.0);
            // DEPT (indexed) changes too: index maintenance is buffered.
            new[2] = Value::Int(99);
            cur.update(&row.0, &new).unwrap();
        }
    }
    let (nu, nd) = cur.flush().unwrap();
    let d = w.sim.metrics.since(&before);
    w.txnmgr.commit(txn, w.client).unwrap();

    assert_eq!(nd, 50);
    assert_eq!(nu, 50);
    assert!(
        d.msgs_fs_dp <= 8,
        "100 cursor writes should batch into a few messages, got {}",
        d.msgs_fs_dp
    );

    // Contents are right.
    let left =
        w.fs.scan(
            None,
            &of,
            &KeyRange::all(),
            None,
            None,
            SubsetMode::Vsbb,
            nsql_dp::ReadLock::None,
        )
        .unwrap();
    assert_eq!(left.rows.len(), 150);
    let updated = left
        .rows
        .iter()
        .filter(|r| r.0[3] == Value::Double(7777.0))
        .count();
    assert_eq!(updated, 50);
    // Index reflects the moves into DEPT 99.
    let idx = &of.indexes[0];
    let range = KeyRange::prefix(encode_key_prefix(&[(FieldType::Int, Value::Int(99))]));
    let entries =
        w.fs.scan_index(None, idx, &range, None, nsql_dp::ReadLock::None)
            .unwrap();
    assert_eq!(entries.len(), 50);
}

#[test]
fn relative_file_via_fs() {
    let w = world(&["$DATA1"]);
    let file = match w
        .fs
        .send(
            "$DATA1",
            nsql_dp::DpRequest::CreateFile {
                kind: FileKind::Relative { slot_size: 64 },
            },
        )
        .unwrap()
    {
        nsql_dp::DpReply::FileCreated(id) => id,
        _ => panic!(),
    };
    let txn = w.txnmgr.begin();
    w.fs.ens_relative_write(txn, "$DATA1", file, 7, b"hello".to_vec())
        .unwrap();
    w.fs.ens_relative_write(txn, "$DATA1", file, 7, b"world".to_vec())
        .unwrap();
    w.txnmgr.commit(txn, w.client).unwrap();
    let got = w.fs.ens_relative_read("$DATA1", file, 7).unwrap().unwrap();
    assert_eq!(&got[..5], b"world");
    assert!(w.fs.ens_relative_read("$DATA1", file, 8).unwrap().is_none());

    // Abort rolls a relative write back (insert undone, update undone).
    let txn = w.txnmgr.begin();
    w.fs.ens_relative_write(txn, "$DATA1", file, 7, b"XXXXX".to_vec())
        .unwrap();
    w.fs.ens_relative_write(txn, "$DATA1", file, 9, b"new".to_vec())
        .unwrap();
    w.txnmgr.abort(txn, w.client).unwrap();
    let got = w.fs.ens_relative_read("$DATA1", file, 7).unwrap().unwrap();
    assert_eq!(&got[..5], b"world", "update undone");
    assert!(
        w.fs.ens_relative_read("$DATA1", file, 9).unwrap().is_none(),
        "insert undone"
    );

    // Delete under txn + commit.
    let txn = w.txnmgr.begin();
    w.fs.ens_relative_delete(txn, "$DATA1", file, 7).unwrap();
    w.txnmgr.commit(txn, w.client).unwrap();
    assert!(w.fs.ens_relative_read("$DATA1", file, 7).unwrap().is_none());
}

#[test]
fn relative_file_recovers_from_trail() {
    let w = world(&["$DATA1"]);
    let file = match w
        .fs
        .send(
            "$DATA1",
            nsql_dp::DpRequest::CreateFile {
                kind: FileKind::Relative { slot_size: 32 },
            },
        )
        .unwrap()
    {
        nsql_dp::DpReply::FileCreated(id) => id,
        _ => panic!(),
    };
    let txn = w.txnmgr.begin();
    for r in 0..10u64 {
        w.fs.ens_relative_write(txn, "$DATA1", file, r, format!("rec{r}").into_bytes())
            .unwrap();
    }
    w.txnmgr.commit(txn, w.client).unwrap();
    // Crash the DP (cache lost) and recover from the audit trail.
    let dp = &w.dps[0];
    dp.crash();
    dp.recover();
    let got = w.fs.ens_relative_read("$DATA1", file, 3).unwrap().unwrap();
    assert_eq!(&got[..4], b"rec3");
}

#[test]
fn entry_sequenced_file_via_fs() {
    let w = world(&["$DATA1", "$DATA2", "$IDX"]);
    let file = match w
        .fs
        .send(
            "$DATA1",
            nsql_dp::DpRequest::CreateFile {
                kind: FileKind::EntrySequenced,
            },
        )
        .unwrap()
    {
        nsql_dp::DpReply::FileCreated(id) => id,
        _ => panic!(),
    };
    let a1 =
        w.fs.ens_entry_append("$DATA1", file, b"first".to_vec())
            .unwrap();
    let a2 =
        w.fs.ens_entry_append("$DATA1", file, b"second".to_vec())
            .unwrap();
    assert_ne!(a1, a2);
    assert_eq!(
        w.fs.ens_entry_read("$DATA1", file, a1).unwrap().unwrap(),
        b"first"
    );
    assert_eq!(
        w.fs.ens_entry_read("$DATA1", file, a2).unwrap().unwrap(),
        b"second"
    );
    assert!(w
        .fs
        .ens_entry_read("$DATA1", file, 12345)
        .unwrap()
        .is_none());
    // Wrong-kind guards.
    let of = create_partitioned_emp(&w);
    let err =
        w.fs.ens_entry_append(&of.partitions[0].process, of.partitions[0].file, vec![1])
            .unwrap_err();
    assert!(matches!(err, FsError::Dp(nsql_dp::DpError::WrongFileKind)));
}

#[test]
fn doom_class_dp_errors_become_typed_fs_doomed() {
    // Deadlock and lock-timeout replies map to the typed, retryable
    // FsError::Doomed — never a panic path — and the reason keeps the
    // keyword retry loops and operators look for.
    let dead = FsError::from(nsql_dp::DpError::Deadlock {
        victim: nsql_lock::TxnId(7),
    });
    let FsError::Doomed { reason } = &dead else {
        panic!("expected Doomed, got {dead:?}");
    };
    assert!(reason.contains("deadlock"), "{reason}");
    assert!(dead.to_string().contains("transaction doomed"));

    let timed = FsError::from(nsql_dp::DpError::LockTimeout {
        victim: nsql_lock::TxnId(9),
    });
    let FsError::Doomed { reason } = &timed else {
        panic!("expected Doomed, got {timed:?}");
    };
    assert!(reason.contains("timeout"), "{reason}");

    // Non-doom errors keep the plain Dp wrapping.
    assert!(matches!(
        FsError::from(nsql_dp::DpError::NotFound),
        FsError::Dp(nsql_dp::DpError::NotFound)
    ));
}
