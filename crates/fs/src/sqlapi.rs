//! The SQL (field/set-oriented) File System API.
//!
//! "The File System dynamically decomposes this single-table request into
//! messages to individual Disk Processes managing partitions (if any)
//! and/or secondary indices." Every method here implements one such
//! decomposition, including the re-drive loop of the continuation
//! protocol: the Disk Process bounds each request execution; the File
//! System re-drives with the last processed key until the range is
//! exhausted.

use crate::{FileSystem, FsError, IndexInfo, OpenFile};
use nsql_dp::{DpReply, DpRequest, ReadLock, SubsetMode};
use nsql_lock::{LockMode, TxnId};
use nsql_records::key::encode_record_key;
use nsql_records::row::encode_row;
use nsql_records::{Expr, KeyRange, OwnedBound, Row, SetList, Value};
use nsql_sim::{CpuLayer, TraceEventKind};
use std::collections::HashMap;

/// Result of a set-oriented read.
#[derive(Debug, Clone, Default)]
pub struct ScanResult {
    /// Decoded rows (projected when a projection was pushed down).
    pub rows: Vec<Row>,
    /// Records the Disk Processes examined on our behalf.
    pub examined: u64,
}

impl FileSystem {
    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Insert a row, maintaining all secondary indices.
    pub fn insert_row(&self, txn: TxnId, of: &OpenFile, values: &[Value]) -> Result<(), FsError> {
        let record = encode_row(&of.desc, values).map_err(|e| FsError::BadRow(e.to_string()))?;
        let key = encode_record_key(&of.desc, values);
        let p = of.partition_for(&key);
        self.send(
            &p.process,
            DpRequest::Insert {
                txn,
                file: p.file,
                key,
                record,
            },
        )?;
        for idx in &of.indexes {
            self.index_insert(txn, of, idx, values)?;
        }
        Ok(())
    }

    fn index_insert(
        &self,
        txn: TxnId,
        of: &OpenFile,
        idx: &IndexInfo,
        values: &[Value],
    ) -> Result<(), FsError> {
        let irow = idx.index_row(&of.desc, values);
        let ikey = encode_record_key(&idx.desc, &irow);
        let irec = encode_row(&idx.desc, &irow).map_err(|e| FsError::BadRow(e.to_string()))?;
        self.send(
            &idx.process,
            DpRequest::Insert {
                txn,
                file: idx.file,
                key: ikey,
                record: irec,
            },
        )?;
        Ok(())
    }

    fn index_delete(
        &self,
        txn: TxnId,
        of: &OpenFile,
        idx: &IndexInfo,
        values: &[Value],
    ) -> Result<(), FsError> {
        let irow = idx.index_row(&of.desc, values);
        let ikey = encode_record_key(&idx.desc, &irow);
        self.send(
            &idx.process,
            DpRequest::DeleteRecord {
                txn,
                file: idx.file,
                key: ikey,
            },
        )?;
        Ok(())
    }

    /// Point read by primary key values.
    pub fn read_by_pk(
        &self,
        txn: Option<TxnId>,
        of: &OpenFile,
        pk_values: &[Value],
        lock: ReadLock,
    ) -> Result<Option<Row>, FsError> {
        // Build a full-width value array for key encoding: only key fields
        // are examined by `encode_record_key`.
        let mut full = vec![Value::Null; of.desc.num_fields()];
        for (i, &k) in of.desc.key_fields.iter().enumerate() {
            full[k as usize] = pk_values[i].clone();
        }
        let key = encode_record_key(&of.desc, &full);
        self.read_by_key(txn, of, &key, lock)
    }

    /// Point read by encoded key.
    pub fn read_by_key(
        &self,
        txn: Option<TxnId>,
        of: &OpenFile,
        key: &[u8],
        lock: ReadLock,
    ) -> Result<Option<Row>, FsError> {
        let p = of.partition_for(key);
        let reply = self.send(
            &p.process,
            DpRequest::Read {
                txn,
                file: p.file,
                key: key.to_vec(),
                lock,
            },
        )?;
        match reply {
            DpReply::Record(Some(bytes)) => Ok(Some(self.decode(&of.desc, &bytes)?)),
            DpReply::Record(None) => Ok(None),
            other => Err(FsError::Protocol(format!(
                "unexpected reply to READ: {other:?}"
            ))),
        }
    }

    /// Issue a re-drive (`*SUBSET^NEXT`) request, transparently rebuilding
    /// the Subset Control Block when the Disk Process no longer knows it —
    /// the SCB is volatile state, lost when the process crashes and its
    /// backup takes over. `rebuild` produces a fresh `*SUBSET^FIRST`
    /// resuming after the last confirmed key, so mid-scan takeover is
    /// invisible to SQL callers.
    fn send_redrive(
        &self,
        process: &str,
        next: DpRequest,
        rebuild: &dyn Fn() -> DpRequest,
    ) -> Result<DpReply, FsError> {
        match self.send(process, next) {
            Err(FsError::Dp(nsql_dp::DpError::BadSubset(_))) => {
                self.sim.trace_emit(|| TraceEventKind::PathSwitch {
                    to: process.to_string(),
                    resumed: true,
                });
                self.send(process, rebuild())
            }
            other => other,
        }
    }

    /// Single-record update with pushed-down expressions and constraint,
    /// maintaining indices (which requires reading the old row only when an
    /// indexed field is assigned).
    pub fn update_by_key(
        &self,
        txn: TxnId,
        of: &OpenFile,
        key: &[u8],
        sets: &SetList,
        constraint: Option<&Expr>,
    ) -> Result<(), FsError> {
        let touched = sets.target_fields();
        let affected: Vec<&IndexInfo> = of
            .indexes
            .iter()
            .filter(|i| i.touched_by(&touched))
            .collect();
        if affected.is_empty() {
            // Pure pushdown: one message, no read-before-write.
            let p = of.partition_for(key);
            self.send(
                &p.process,
                DpRequest::UpdatePoint {
                    txn,
                    file: p.file,
                    key: key.to_vec(),
                    sets: sets.clone(),
                    constraint: constraint.cloned(),
                },
            )?;
            return Ok(());
        }
        // Index maintenance path: the File System must see old and new
        // values to fix the affected indices.
        let old = self
            .read_by_key(Some(txn), of, key, ReadLock::Shared)?
            .ok_or(FsError::Dp(nsql_dp::DpError::NotFound))?;
        let p = of.partition_for(key);
        self.send(
            &p.process,
            DpRequest::UpdatePoint {
                txn,
                file: p.file,
                key: key.to_vec(),
                sets: sets.clone(),
                constraint: constraint.cloned(),
            },
        )?;
        let new = self.apply_sets_locally(of, &old.0, sets)?;
        for idx in affected {
            self.index_delete(txn, of, idx, &old.0)?;
            self.index_insert(txn, of, idx, &new)?;
        }
        Ok(())
    }

    /// Evaluate update expressions at the File System (only used for index
    /// maintenance bookkeeping; the authoritative evaluation happened at
    /// the Disk Process).
    fn apply_sets_locally(
        &self,
        of: &OpenFile,
        old: &[Value],
        sets: &SetList,
    ) -> Result<Vec<Value>, FsError> {
        self.sim.cpu_work(CpuLayer::FileSystem, 2);
        let row = Row(old.to_vec());
        let assigned = sets
            .apply(&row)
            .map_err(|e| FsError::BadRow(e.to_string()))?;
        let mut new = old.to_vec();
        for (f, v) in assigned {
            let ty = of.desc.fields[f as usize].ty;
            new[f as usize] = ty
                .coerce(v)
                .ok_or_else(|| FsError::BadRow(format!("value does not fit field {f}")))?;
        }
        Ok(new)
    }

    /// Delete one record by key, maintaining indices.
    pub fn delete_by_key(&self, txn: TxnId, of: &OpenFile, key: &[u8]) -> Result<(), FsError> {
        let old = if of.indexes.is_empty() {
            None
        } else {
            Some(
                self.read_by_key(Some(txn), of, key, ReadLock::Shared)?
                    .ok_or(FsError::Dp(nsql_dp::DpError::NotFound))?,
            )
        };
        let p = of.partition_for(key);
        self.send(
            &p.process,
            DpRequest::DeleteRecord {
                txn,
                file: p.file,
                key: key.to_vec(),
            },
        )?;
        if let Some(old) = old {
            for idx in &of.indexes {
                self.index_delete(txn, of, idx, &old.0)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Set-oriented reads (VSBB / RSBB with re-drive)
    // ------------------------------------------------------------------

    /// Set-oriented read over a primary-key range: fans out across
    /// partitions, re-driving each until exhausted, and de-blocks the
    /// (virtual) blocks into rows.
    #[allow(clippy::too_many_arguments)] // mirrors the GET^FIRST message's fields
    pub fn scan(
        &self,
        txn: Option<TxnId>,
        of: &OpenFile,
        range: &KeyRange,
        predicate: Option<&Expr>,
        projection: Option<&[u16]>,
        mode: SubsetMode,
        lock: ReadLock,
    ) -> Result<ScanResult, FsError> {
        let row_desc = match projection {
            Some(fields) => of.desc.project(fields),
            None => of.desc.clone(),
        };
        let mut out = ScanResult::default();
        for (p, clipped) in of.partitions_for_range(range) {
            let mut reply = self.send(
                &p.process,
                DpRequest::GetSubsetFirst {
                    txn,
                    file: p.file,
                    range: clipped.clone(),
                    predicate: predicate.cloned(),
                    projection: projection.map(|f| f.to_vec()),
                    mode,
                    lock,
                },
            )?;
            let mut chain = 1u64;
            loop {
                let DpReply::Subset {
                    rows,
                    last_key,
                    done,
                    subset,
                    examined,
                    ..
                } = reply
                else {
                    return Err(FsError::Protocol(
                        "unexpected reply to GET^SUBSET".to_string(),
                    ));
                };
                out.examined += examined as u64;
                for bytes in rows {
                    out.rows.push(self.decode(&row_desc, &bytes)?);
                }
                if done {
                    break;
                }
                chain += 1;
                let subset = subset
                    .ok_or_else(|| FsError::Protocol("re-drive without an SCB".to_string()))?;
                let after = last_key
                    .ok_or_else(|| FsError::Protocol("re-drive without a last key".to_string()))?;
                let resume = KeyRange {
                    begin: OwnedBound::Excluded(after.clone()),
                    end: clipped.end.clone(),
                };
                reply = self.send_redrive(
                    &p.process,
                    DpRequest::GetSubsetNext { subset, after },
                    &|| DpRequest::GetSubsetFirst {
                        txn,
                        file: p.file,
                        range: resume.clone(),
                        predicate: predicate.cloned(),
                        projection: projection.map(|f| f.to_vec()),
                        mode,
                        lock,
                    },
                )?;
            }
            self.sim.hist.redrive_chain.record(chain);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Set-oriented update / delete
    // ------------------------------------------------------------------

    /// Set-oriented UPDATE over a key range. When no index covers an
    /// assigned field the whole operation is pushed to the Disk Processes
    /// (`UPDATE^SUBSET`); otherwise the File System falls back to reading
    /// the qualifying rows and updating record-at-a-time with index
    /// maintenance.
    pub fn update_set(
        &self,
        txn: TxnId,
        of: &OpenFile,
        range: &KeyRange,
        predicate: Option<&Expr>,
        sets: &SetList,
        constraint: Option<&Expr>,
    ) -> Result<u64, FsError> {
        let touched = sets.target_fields();
        if of.indexes.iter().any(|i| i.touched_by(&touched)) {
            return self.update_set_with_indices(txn, of, range, predicate, sets, constraint);
        }
        let mut affected = 0u64;
        for (p, clipped) in of.partitions_for_range(range) {
            let mut reply = self.send(
                &p.process,
                DpRequest::UpdateSubsetFirst {
                    txn,
                    file: p.file,
                    range: clipped.clone(),
                    predicate: predicate.cloned(),
                    sets: sets.clone(),
                    constraint: constraint.cloned(),
                },
            )?;
            let mut chain = 1u64;
            loop {
                let DpReply::Subset {
                    affected: a,
                    last_key,
                    done,
                    subset,
                    ..
                } = reply
                else {
                    return Err(FsError::Protocol(
                        "unexpected reply to UPDATE^SUBSET".to_string(),
                    ));
                };
                affected += a as u64;
                if done {
                    break;
                }
                chain += 1;
                let subset = subset
                    .ok_or_else(|| FsError::Protocol("re-drive without an SCB".to_string()))?;
                let after = last_key
                    .ok_or_else(|| FsError::Protocol("re-drive without a last key".to_string()))?;
                let resume = KeyRange {
                    begin: OwnedBound::Excluded(after.clone()),
                    end: clipped.end.clone(),
                };
                reply = self.send_redrive(
                    &p.process,
                    DpRequest::UpdateSubsetNext { subset, after },
                    &|| DpRequest::UpdateSubsetFirst {
                        txn,
                        file: p.file,
                        range: resume.clone(),
                        predicate: predicate.cloned(),
                        sets: sets.clone(),
                        constraint: constraint.cloned(),
                    },
                )?;
            }
            self.sim.hist.redrive_chain.record(chain);
        }
        Ok(affected)
    }

    fn update_set_with_indices(
        &self,
        txn: TxnId,
        of: &OpenFile,
        range: &KeyRange,
        predicate: Option<&Expr>,
        sets: &SetList,
        constraint: Option<&Expr>,
    ) -> Result<u64, FsError> {
        // Read the qualifying rows (whole records, locked), then update
        // each with index maintenance.
        let scan = self.scan(
            Some(txn),
            of,
            range,
            predicate,
            None,
            SubsetMode::Vsbb,
            ReadLock::Shared,
        )?;
        let mut affected = 0u64;
        for row in &scan.rows {
            let key = encode_record_key(&of.desc, &row.0);
            self.update_by_key(txn, of, &key, sets, constraint)?;
            affected += 1;
        }
        Ok(affected)
    }

    /// Set-oriented DELETE over a key range, pushed down when the table has
    /// no indices.
    pub fn delete_set(
        &self,
        txn: TxnId,
        of: &OpenFile,
        range: &KeyRange,
        predicate: Option<&Expr>,
    ) -> Result<u64, FsError> {
        if !of.indexes.is_empty() {
            // Index maintenance requires the old rows.
            let scan = self.scan(
                Some(txn),
                of,
                range,
                predicate,
                None,
                SubsetMode::Vsbb,
                ReadLock::Shared,
            )?;
            let mut affected = 0u64;
            for row in &scan.rows {
                let key = encode_record_key(&of.desc, &row.0);
                self.delete_by_key(txn, of, &key)?;
                affected += 1;
            }
            return Ok(affected);
        }
        let mut affected = 0u64;
        for (p, clipped) in of.partitions_for_range(range) {
            let mut reply = self.send(
                &p.process,
                DpRequest::DeleteSubsetFirst {
                    txn,
                    file: p.file,
                    range: clipped.clone(),
                    predicate: predicate.cloned(),
                },
            )?;
            let mut chain = 1u64;
            loop {
                let DpReply::Subset {
                    affected: a,
                    last_key,
                    done,
                    subset,
                    ..
                } = reply
                else {
                    return Err(FsError::Protocol(
                        "unexpected reply to DELETE^SUBSET".to_string(),
                    ));
                };
                affected += a as u64;
                if done {
                    break;
                }
                chain += 1;
                let subset = subset
                    .ok_or_else(|| FsError::Protocol("re-drive without an SCB".to_string()))?;
                let after = last_key
                    .ok_or_else(|| FsError::Protocol("re-drive without a last key".to_string()))?;
                let resume = KeyRange {
                    begin: OwnedBound::Excluded(after.clone()),
                    end: clipped.end.clone(),
                };
                reply = self.send_redrive(
                    &p.process,
                    DpRequest::DeleteSubsetNext { subset, after },
                    &|| DpRequest::DeleteSubsetFirst {
                        txn,
                        file: p.file,
                        range: resume.clone(),
                        predicate: predicate.cloned(),
                    },
                )?;
            }
            self.sim.hist.redrive_chain.record(chain);
        }
        Ok(affected)
    }

    // ------------------------------------------------------------------
    // Access via secondary index (Figure 2)
    // ------------------------------------------------------------------

    /// Scan a secondary index by index-key range. Returns decoded *index*
    /// rows (indexed fields + base primary key) — enough for index-only
    /// queries.
    pub fn scan_index(
        &self,
        txn: Option<TxnId>,
        idx: &IndexInfo,
        range: &KeyRange,
        predicate: Option<&Expr>,
        lock: ReadLock,
    ) -> Result<Vec<Row>, FsError> {
        let mut rows = Vec::new();
        let mut reply = self.send(
            &idx.process,
            DpRequest::GetSubsetFirst {
                txn,
                file: idx.file,
                range: range.clone(),
                predicate: predicate.cloned(),
                projection: None,
                mode: SubsetMode::Vsbb,
                lock,
            },
        )?;
        let mut chain = 1u64;
        loop {
            let DpReply::Subset {
                rows: batch,
                last_key,
                done,
                subset,
                ..
            } = reply
            else {
                return Err(FsError::Protocol(
                    "unexpected reply to GET^SUBSET (index)".to_string(),
                ));
            };
            for bytes in batch {
                rows.push(self.decode(&idx.desc, &bytes)?);
            }
            if done {
                break;
            }
            chain += 1;
            let subset =
                subset.ok_or_else(|| FsError::Protocol("re-drive without an SCB".to_string()))?;
            let after = last_key
                .ok_or_else(|| FsError::Protocol("re-drive without a last key".to_string()))?;
            let resume = KeyRange {
                begin: OwnedBound::Excluded(after.clone()),
                end: range.end.clone(),
            };
            reply = self.send_redrive(
                &idx.process,
                DpRequest::GetSubsetNext { subset, after },
                &|| DpRequest::GetSubsetFirst {
                    txn,
                    file: idx.file,
                    range: resume.clone(),
                    predicate: predicate.cloned(),
                    projection: None,
                    mode: SubsetMode::Vsbb,
                    lock,
                },
            )?;
        }
        self.sim.hist.redrive_chain.record(chain);
        Ok(rows)
    }

    /// Read base rows via a secondary index (Figure 2): first the index's
    /// Disk Process, then the base partition's, per qualifying entry.
    pub fn read_via_index(
        &self,
        txn: Option<TxnId>,
        of: &OpenFile,
        idx: &IndexInfo,
        index_range: &KeyRange,
        lock: ReadLock,
    ) -> Result<Vec<Row>, FsError> {
        let entries = self.scan_index(txn, idx, index_range, None, lock)?;
        let mut out = Vec::with_capacity(entries.len());
        for irow in &entries {
            let base_key = idx.base_key_from_index_row(&of.desc, &irow.0);
            if let Some(row) = self.read_by_key(txn, of, &base_key, lock)? {
                out.push(row);
            }
        }
        Ok(out)
    }
}

/// Client-side buffering for the blocked sequential-insert extension (the
/// paper's *Opportunities for Future Performance Enhancements*): "multiple
/// sequential inserts issued to the File System by the SQL Executor would
/// then be accumulated in a local buffer by the File System, which would,
/// when required, send the buffer of inserted records to the Disk Process
/// using one message."
pub struct BlockedInserter<'a> {
    fs: &'a FileSystem,
    of: &'a OpenFile,
    txn: TxnId,
    /// Per-partition buffers of `(key, record)`.
    buffers: KeyedRecordBuffers,
    /// Per-index buffers.
    index_buffers: KeyedRecordBuffers,
    /// Flush a partition buffer at this many records.
    pub flush_at: usize,
}

impl<'a> BlockedInserter<'a> {
    /// A blocked inserter for one transaction over one table.
    pub fn new(fs: &'a FileSystem, of: &'a OpenFile, txn: TxnId) -> Self {
        BlockedInserter {
            fs,
            of,
            txn,
            buffers: HashMap::new(),
            index_buffers: HashMap::new(),
            flush_at: 100,
        }
    }

    /// Buffer one row; flushes automatically at the threshold.
    pub fn push(&mut self, values: &[Value]) -> Result<(), FsError> {
        let record =
            encode_row(&self.of.desc, values).map_err(|e| FsError::BadRow(e.to_string()))?;
        let key = encode_record_key(&self.of.desc, values);
        let pi = self
            .of
            .partitions
            .iter()
            .position(|p| p.range.contains(&key))
            .ok_or_else(|| {
                FsError::Protocol("partition ranges do not cover the key space".to_string())
            })?;
        self.buffers.entry(pi).or_default().push((key, record));
        for (ii, idx) in self.of.indexes.iter().enumerate() {
            let irow = idx.index_row(&self.of.desc, values);
            let ikey = encode_record_key(&idx.desc, &irow);
            let irec = encode_row(&idx.desc, &irow).map_err(|e| FsError::BadRow(e.to_string()))?;
            self.index_buffers.entry(ii).or_default().push((ikey, irec));
        }
        if self.buffers[&pi].len() >= self.flush_at {
            self.flush_partition(pi)?;
        }
        Ok(())
    }

    fn flush_partition(&mut self, pi: usize) -> Result<(), FsError> {
        let Some(mut records) = self.buffers.remove(&pi) else {
            return Ok(());
        };
        if records.is_empty() {
            return Ok(());
        }
        records.sort_by(|a, b| a.0.cmp(&b.0));
        let p = &self.of.partitions[pi];
        self.fs.send(
            &p.process,
            DpRequest::BlockedInsert {
                txn: self.txn,
                file: p.file,
                records,
            },
        )?;
        Ok(())
    }

    /// Flush every buffered record (base and index). Must be called before
    /// commit.
    pub fn flush(&mut self) -> Result<(), FsError> {
        let parts: Vec<usize> = self.buffers.keys().copied().collect();
        for pi in parts {
            self.flush_partition(pi)?;
        }
        let idxs: Vec<usize> = self.index_buffers.keys().copied().collect();
        for ii in idxs {
            let Some(mut records) = self.index_buffers.remove(&ii) else {
                continue;
            };
            if records.is_empty() {
                continue;
            }
            records.sort_by(|a, b| a.0.cmp(&b.0));
            let idx = &self.of.indexes[ii];
            self.fs.send(
                &idx.process,
                DpRequest::BlockedInsert {
                    txn: self.txn,
                    file: idx.file,
                    records,
                },
            )?;
        }
        Ok(())
    }
}

/// Client-side buffering for `UPDATE WHERE CURRENT` / `DELETE WHERE
/// CURRENT` (the paper's second future-work enhancement): "by allowing the
/// updates (deletes) to occur in a buffer local to the File System, and
/// then sending the buffer full of updates (deletes) to the Disk Process
/// in one message, substantial message traffic savings in the FS-DP
/// interface could be realized."
///
/// The cursor's owner supplies old and new row values; index maintenance
/// is buffered alongside, so secondary indices also see blocked traffic.
pub struct CursorUpdater<'a> {
    fs: &'a FileSystem,
    of: &'a OpenFile,
    txn: TxnId,
    updates: KeyedRecordBuffers,
    deletes: KeyBuffers,
    idx_inserts: KeyedRecordBuffers,
    idx_deletes: KeyBuffers,
    n_updates: u64,
    n_deletes: u64,
}

/// Per-partition/per-index buffers of `(key, record)` pairs.
type KeyedRecordBuffers = HashMap<usize, Vec<(Vec<u8>, Vec<u8>)>>;
/// Per-partition/per-index buffers of keys.
type KeyBuffers = HashMap<usize, Vec<Vec<u8>>>;

impl<'a> CursorUpdater<'a> {
    /// A buffered cursor writer for one transaction over one table.
    pub fn new(fs: &'a FileSystem, of: &'a OpenFile, txn: TxnId) -> Self {
        CursorUpdater {
            fs,
            of,
            txn,
            updates: HashMap::new(),
            deletes: HashMap::new(),
            idx_inserts: HashMap::new(),
            idx_deletes: HashMap::new(),
            n_updates: 0,
            n_deletes: 0,
        }
    }

    fn partition_index(&self, key: &[u8]) -> Result<usize, FsError> {
        self.of
            .partitions
            .iter()
            .position(|p| p.range.contains(key))
            .ok_or_else(|| {
                FsError::Protocol("partition ranges do not cover the key space".to_string())
            })
    }

    /// Buffer `UPDATE WHERE CURRENT`: the cursor's current row `old`
    /// becomes `new` (same primary key).
    pub fn update(&mut self, old: &[Value], new: &[Value]) -> Result<(), FsError> {
        let key = encode_record_key(&self.of.desc, new);
        assert_eq!(
            key,
            encode_record_key(&self.of.desc, old),
            "WHERE CURRENT updates cannot change the primary key"
        );
        let record = encode_row(&self.of.desc, new).map_err(|e| FsError::BadRow(e.to_string()))?;
        let pi = self.partition_index(&key)?;
        self.updates.entry(pi).or_default().push((key, record));
        for (ii, idx) in self.of.indexes.iter().enumerate() {
            let old_irow = idx.index_row(&self.of.desc, old);
            let new_irow = idx.index_row(&self.of.desc, new);
            if old_irow != new_irow {
                self.idx_deletes
                    .entry(ii)
                    .or_default()
                    .push(encode_record_key(&idx.desc, &old_irow));
                let irec =
                    encode_row(&idx.desc, &new_irow).map_err(|e| FsError::BadRow(e.to_string()))?;
                self.idx_inserts
                    .entry(ii)
                    .or_default()
                    .push((encode_record_key(&idx.desc, &new_irow), irec));
            }
        }
        self.n_updates += 1;
        Ok(())
    }

    /// Buffer `DELETE WHERE CURRENT` of the cursor's current row.
    pub fn delete(&mut self, old: &[Value]) -> Result<(), FsError> {
        let key = encode_record_key(&self.of.desc, old);
        let pi = self.partition_index(&key)?;
        self.deletes.entry(pi).or_default().push(key);
        for (ii, idx) in self.of.indexes.iter().enumerate() {
            let irow = idx.index_row(&self.of.desc, old);
            self.idx_deletes
                .entry(ii)
                .or_default()
                .push(encode_record_key(&idx.desc, &irow));
        }
        self.n_deletes += 1;
        Ok(())
    }

    /// Ship every buffer in one message per Disk Process touched. Returns
    /// `(rows updated, rows deleted)`.
    pub fn flush(&mut self) -> Result<(u64, u64), FsError> {
        for (pi, records) in std::mem::take(&mut self.updates) {
            let p = &self.of.partitions[pi];
            self.fs.send(
                &p.process,
                DpRequest::BlockedUpdate {
                    txn: self.txn,
                    file: p.file,
                    records,
                },
            )?;
        }
        for (pi, keys) in std::mem::take(&mut self.deletes) {
            let p = &self.of.partitions[pi];
            self.fs.send(
                &p.process,
                DpRequest::BlockedDelete {
                    txn: self.txn,
                    file: p.file,
                    keys,
                },
            )?;
        }
        for (ii, keys) in std::mem::take(&mut self.idx_deletes) {
            let idx = &self.of.indexes[ii];
            self.fs.send(
                &idx.process,
                DpRequest::BlockedDelete {
                    txn: self.txn,
                    file: idx.file,
                    keys,
                },
            )?;
        }
        for (ii, mut records) in std::mem::take(&mut self.idx_inserts) {
            records.sort_by(|a, b| a.0.cmp(&b.0));
            let idx = &self.of.indexes[ii];
            self.fs.send(
                &idx.process,
                DpRequest::BlockedInsert {
                    txn: self.txn,
                    file: idx.file,
                    records,
                },
            )?;
        }
        Ok((self.n_updates, self.n_deletes))
    }
}

/// ENSCRIBE-visible lock call used by both APIs.
impl FileSystem {
    /// Acquire a file or record lock through the Disk Process.
    pub fn lock(
        &self,
        txn: TxnId,
        process: &str,
        file: nsql_dp::FileId,
        key: Option<Vec<u8>>,
        mode: LockMode,
    ) -> Result<(), FsError> {
        self.send(
            process,
            DpRequest::Lock {
                txn,
                file,
                key,
                mode,
            },
        )?;
        Ok(())
    }
}
