//! The old ENSCRIBE record-at-a-time File System API.
//!
//! "In the case of ENSCRIBE, the application program invokes the File
//! System explicitly — calling such routines as OPEN, READ, WRITE,
//! LOCKRECORD — to perform key navigation and record-oriented I/O."
//!
//! The only deviation from record-at-a-time is **real sequential block
//! buffering (SBB)**: "each FS-DP request message \[returns\] a copy of a
//! physical file block ... SBB under ENSCRIBE has limited utility,
//! however, since no locking other than at the file level is effective
//! when it is in use" — so [`FileSystem::ens_open_sbb`] takes the
//! mandatory file lock.
//!
//! This API is the *baseline* for the paper's comparisons: one message per
//! record read, and updates that must read the record back to the
//! requester before writing it (two messages), with full-record audit
//! images.

use crate::{FileSystem, FsError, OpenFile};
use nsql_dp::{AuditMode, DpReply, DpRequest, ReadLock};
use nsql_lock::{LockMode, TxnId};
use nsql_records::key::encode_record_key;
use nsql_records::row::encode_row;
use nsql_records::{Row, Value};
use std::collections::VecDeque;

/// A sequential read cursor (record-at-a-time, or SBB-buffered).
pub struct EnscribeCursor<'a> {
    of: &'a OpenFile,
    txn: Option<TxnId>,
    /// Which partition we are currently reading.
    part: usize,
    /// Continuation point within the partition.
    after: Option<Vec<u8>>,
    /// Local block buffer (SBB only).
    buffer: VecDeque<Row>,
    /// Sequential block buffering enabled?
    sbb: bool,
    /// Partition exhausted (record-at-a-time bookkeeping).
    done: bool,
}

impl FileSystem {
    /// OPEN for plain record-at-a-time sequential reading.
    pub fn ens_open<'a>(&self, of: &'a OpenFile, txn: Option<TxnId>) -> EnscribeCursor<'a> {
        EnscribeCursor {
            of,
            txn,
            part: 0,
            after: None,
            buffer: VecDeque::new(),
            sbb: false,
            done: false,
        }
    }

    /// OPEN with sequential block buffering. Takes the mandatory **file
    /// lock** on every partition (shared), excluding writers for the
    /// duration of the transaction.
    pub fn ens_open_sbb<'a>(
        &self,
        of: &'a OpenFile,
        txn: TxnId,
    ) -> Result<EnscribeCursor<'a>, FsError> {
        for p in &of.partitions {
            self.lock(txn, &p.process, p.file, None, LockMode::Shared)?;
        }
        Ok(EnscribeCursor {
            of,
            txn: Some(txn),
            part: 0,
            after: None,
            buffer: VecDeque::new(),
            sbb: true,
            done: false,
        })
    }

    /// READ the next record through a cursor (`None` at end of file).
    pub fn ens_read_next(&self, cur: &mut EnscribeCursor) -> Result<Option<Row>, FsError> {
        loop {
            if let Some(row) = cur.buffer.pop_front() {
                return Ok(Some(row));
            }
            if cur.part >= cur.of.partitions.len() {
                return Ok(None);
            }
            if cur.done {
                cur.part += 1;
                cur.after = None;
                cur.done = false;
                continue;
            }
            let p = &cur.of.partitions[cur.part];
            if cur.sbb {
                // One message returns one physical block's worth.
                let reply = self.send(
                    &p.process,
                    DpRequest::ReadSeqBlock {
                        txn: cur.txn,
                        file: p.file,
                        after: cur.after.clone(),
                    },
                )?;
                let DpReply::Subset {
                    rows,
                    last_key,
                    done,
                    ..
                } = reply
                else {
                    panic!("protocol violation")
                };
                // De-blocking by the File System from its local block copy.
                for bytes in rows {
                    cur.buffer.push_back(self.decode(&cur.of.desc, &bytes)?);
                }
                cur.after = last_key;
                cur.done = done;
                if cur.buffer.is_empty() && done {
                    cur.part += 1;
                    cur.after = None;
                    cur.done = false;
                }
            } else {
                // One message returns one record.
                let reply = self.send(
                    &p.process,
                    DpRequest::ReadNext {
                        txn: cur.txn,
                        file: p.file,
                        after: cur.after.clone(),
                        lock: ReadLock::None,
                    },
                )?;
                match reply {
                    DpReply::Record(None) => {
                        cur.part += 1;
                        cur.after = None;
                    }
                    DpReply::Subset {
                        mut rows, last_key, ..
                    } => {
                        let bytes = rows.pop().expect("one record");
                        cur.after = last_key;
                        return Ok(Some(self.decode(&cur.of.desc, &bytes)?));
                    }
                    other => panic!("protocol violation: {other:?}"),
                }
            }
        }
    }

    /// READ a record by primary key.
    pub fn ens_read(
        &self,
        txn: Option<TxnId>,
        of: &OpenFile,
        key: &[u8],
        lock: ReadLock,
    ) -> Result<Option<Row>, FsError> {
        self.read_by_key(txn, of, key, lock)
    }

    /// WRITE (insert) a record, maintaining alternate keys.
    pub fn ens_write(&self, txn: TxnId, of: &OpenFile, values: &[Value]) -> Result<(), FsError> {
        self.insert_row(txn, of, values)
    }

    /// The ENSCRIBE update discipline: the requester has the record (from a
    /// prior READ) and WRITEs back a **full new image** — two messages per
    /// update overall, and a full-image audit record at the Disk Process.
    pub fn ens_rewrite(
        &self,
        txn: TxnId,
        of: &OpenFile,
        old: &[Value],
        new: &[Value],
    ) -> Result<(), FsError> {
        let key = encode_record_key(&of.desc, new);
        assert_eq!(
            key,
            encode_record_key(&of.desc, old),
            "ENSCRIBE rewrite cannot change the record key"
        );
        let record = encode_row(&of.desc, new).map_err(|e| FsError::BadRow(e.to_string()))?;
        let p = of.partition_for(&key);
        self.send(
            &p.process,
            DpRequest::UpdateRecord {
                txn,
                file: p.file,
                key: key.clone(),
                record,
                audit: AuditMode::FullImage,
            },
        )?;
        // Alternate-key maintenance.
        for idx in &of.indexes {
            let old_irow = idx.index_row(&of.desc, old);
            let new_irow = idx.index_row(&of.desc, new);
            if old_irow != new_irow {
                self.index_delete_ens(txn, of, idx, old)?;
                self.index_insert_ens(txn, of, idx, new)?;
            }
        }
        Ok(())
    }

    fn index_insert_ens(
        &self,
        txn: TxnId,
        of: &OpenFile,
        idx: &crate::IndexInfo,
        values: &[Value],
    ) -> Result<(), FsError> {
        let irow = idx.index_row(&of.desc, values);
        let ikey = encode_record_key(&idx.desc, &irow);
        let irec = encode_row(&idx.desc, &irow).map_err(|e| FsError::BadRow(e.to_string()))?;
        self.send(
            &idx.process,
            DpRequest::Insert {
                txn,
                file: idx.file,
                key: ikey,
                record: irec,
            },
        )?;
        Ok(())
    }

    fn index_delete_ens(
        &self,
        txn: TxnId,
        of: &OpenFile,
        idx: &crate::IndexInfo,
        values: &[Value],
    ) -> Result<(), FsError> {
        let irow = idx.index_row(&of.desc, values);
        let ikey = encode_record_key(&idx.desc, &irow);
        self.send(
            &idx.process,
            DpRequest::DeleteRecord {
                txn,
                file: idx.file,
                key: ikey,
            },
        )?;
        Ok(())
    }

    /// DELETE a record by key (reads it first when alternate keys exist).
    pub fn ens_delete(&self, txn: TxnId, of: &OpenFile, key: &[u8]) -> Result<(), FsError> {
        self.delete_by_key(txn, of, key)
    }

    /// Write a record into a relative file slot.
    pub fn ens_relative_write(
        &self,
        txn: TxnId,
        process: &str,
        file: nsql_dp::FileId,
        recnum: u64,
        record: Vec<u8>,
    ) -> Result<(), FsError> {
        self.send(
            process,
            DpRequest::RelativeWrite {
                txn,
                file,
                recnum,
                record,
            },
        )?;
        Ok(())
    }

    /// Read a relative file slot.
    pub fn ens_relative_read(
        &self,
        process: &str,
        file: nsql_dp::FileId,
        recnum: u64,
    ) -> Result<Option<Vec<u8>>, FsError> {
        match self.send(process, DpRequest::RelativeRead { file, recnum })? {
            DpReply::Record(r) => Ok(r),
            other => panic!("protocol violation: {other:?}"),
        }
    }

    /// Delete a relative file slot.
    pub fn ens_relative_delete(
        &self,
        txn: TxnId,
        process: &str,
        file: nsql_dp::FileId,
        recnum: u64,
    ) -> Result<(), FsError> {
        self.send(process, DpRequest::RelativeDelete { txn, file, recnum })?;
        Ok(())
    }

    /// Append to an entry-sequenced file; returns the entry's address.
    pub fn ens_entry_append(
        &self,
        process: &str,
        file: nsql_dp::FileId,
        record: Vec<u8>,
    ) -> Result<u64, FsError> {
        match self.send(process, DpRequest::EntryAppend { file, record })? {
            DpReply::Appended(a) => Ok(a),
            other => panic!("protocol violation: {other:?}"),
        }
    }

    /// Read an entry-sequenced file entry by address.
    pub fn ens_entry_read(
        &self,
        process: &str,
        file: nsql_dp::FileId,
        address: u64,
    ) -> Result<Option<Vec<u8>>, FsError> {
        match self.send(process, DpRequest::EntryRead { file, address })? {
            DpReply::Record(r) => Ok(r),
            other => panic!("protocol violation: {other:?}"),
        }
    }

    /// LOCKFILE.
    pub fn ens_lock_file(&self, txn: TxnId, of: &OpenFile, mode: LockMode) -> Result<(), FsError> {
        for p in &of.partitions {
            self.lock(txn, &p.process, p.file, None, mode)?;
        }
        Ok(())
    }

    /// LOCKRECORD.
    pub fn ens_lock_record(
        &self,
        txn: TxnId,
        of: &OpenFile,
        key: &[u8],
        mode: LockMode,
    ) -> Result<(), FsError> {
        let p = of.partition_for(key);
        self.lock(txn, &p.process, p.file, Some(key.to_vec()), mode)
    }
}
