#![warn(missing_docs)]
//! Records, fields, keys, and single-variable queries.
//!
//! This crate is the vocabulary shared by the SQL Executor, the File System
//! and the Disk Process. The paper's central move is shipping *field-level*
//! operations — selection predicates, projections, update expressions,
//! integrity constraints — down to the Disk Process. Everything needed to
//! express such an operation lives here:
//!
//! * [`Value`] / [`FieldType`] — the SQL type system (1988 vintage: small
//!   integers through doubles and fixed/variable character strings).
//! * [`RecordDescriptor`] — the record layout, enabling field extraction
//!   directly from encoded record bytes (no full materialisation).
//! * [`key`] — order-preserving key encoding and key ranges, the currency of
//!   the set-oriented FS-DP interface and of the continuation re-drive
//!   protocol.
//! * [`Expr`] — bound expressions ("single-variable queries") with SQL
//!   three-valued logic, evaluated by the Disk Process against raw records.
//! * [`SetList`] — update expressions (`SET BALANCE = BALANCE * 1.07`)
//!   applied at the data source.

pub mod expr;
pub mod key;
pub mod row;
pub mod types;
pub mod value;

pub use expr::{ArithOp, CmpOp, EvalError, Expr, SetList};
pub use key::{KeyRange, OwnedBound};
pub use row::{ConcatRow, RawRecord, Row, RowAccessor, SliceRow};
pub use types::{FieldDef, FieldType, RecordDescriptor};
pub use value::Value;
