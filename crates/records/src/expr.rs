//! Bound expressions — the "single-variable queries" shipped to the Disk
//! Process.
//!
//! An [`Expr`] references fields *by field number* within one record
//! descriptor (the paper: fields are "identified by their record descriptor
//! field numbers"). The SQL front end binds column names to numbers at
//! compile time; the Disk Process evaluates the bound form against raw
//! record bytes. Evaluation uses SQL three-valued logic: a predicate admits
//! a record only when it evaluates to exactly `TRUE`.

use crate::row::RowAccessor;
use crate::value::Value;
use std::cmp::Ordering;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Does `ord` satisfy this operator?
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

/// A bound expression over one record.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Field reference by record-descriptor field number.
    Field(u16),
    /// Arithmetic.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical AND (three-valued).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (three-valued).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT (three-valued).
    Not(Box<Expr>),
    /// `IS NULL` (`negated` = `IS NOT NULL`). Always two-valued.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
    },
    /// `expr IN (list)`.
    InList(Box<Expr>, Vec<Expr>),
    /// `expr LIKE 'pattern'` with `%` and `_` wildcards.
    Like(Box<Expr>, String),
}

/// Evaluation errors (type errors that escaped bind-time checking, division
/// by zero, overflow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Operand types unusable for the operator.
    Type(&'static str),
    /// Integer division by zero.
    DivideByZero,
    /// Integer overflow.
    Overflow,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Type(what) => write!(f, "type error: {what}"),
            EvalError::DivideByZero => write!(f, "division by zero"),
            EvalError::Overflow => write!(f, "arithmetic overflow"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    /// Shorthand for a literal.
    pub fn lit(v: Value) -> Expr {
        Expr::Lit(v)
    }

    /// Shorthand for `Field(i) op value`.
    pub fn field_cmp(i: u16, op: CmpOp, v: Value) -> Expr {
        Expr::Cmp(Box::new(Expr::Field(i)), op, Box::new(Expr::Lit(v)))
    }

    /// `a AND b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// `a OR b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &dyn RowAccessor) -> Result<Value, EvalError> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Field(i) => Ok(row.field(*i)),
            Expr::Arith(a, op, b) => arith(a.eval(row)?, *op, b.eval(row)?),
            Expr::Cmp(a, op, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                Ok(match va.sql_cmp(&vb) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(op.matches(ord)),
                })
            }
            Expr::And(a, b) => {
                // Three-valued AND with short circuit on FALSE.
                match truth(a.eval(row)?)? {
                    Some(false) => Ok(Value::Bool(false)),
                    la => match (la, truth(b.eval(row)?)?) {
                        (_, Some(false)) => Ok(Value::Bool(false)),
                        (Some(true), Some(true)) => Ok(Value::Bool(true)),
                        _ => Ok(Value::Null),
                    },
                }
            }
            Expr::Or(a, b) => match truth(a.eval(row)?)? {
                Some(true) => Ok(Value::Bool(true)),
                la => match (la, truth(b.eval(row)?)?) {
                    (_, Some(true)) => Ok(Value::Bool(true)),
                    (Some(false), Some(false)) => Ok(Value::Bool(false)),
                    _ => Ok(Value::Null),
                },
            },
            Expr::Not(a) => Ok(match truth(a.eval(row)?)? {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            }),
            Expr::IsNull { expr, negated } => {
                let isnull = expr.eval(row)?.is_null();
                Ok(Value::Bool(isnull != *negated))
            }
            Expr::Between { expr, lo, hi } => {
                let v = expr.eval(row)?;
                let ge = Expr::cmp_values(&v, CmpOp::Ge, &lo.eval(row)?);
                let le = Expr::cmp_values(&v, CmpOp::Le, &hi.eval(row)?);
                Ok(match (ge, le) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                })
            }
            Expr::InList(e, list) => {
                let v = e.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    match v.sql_cmp(&item.eval(row)?) {
                        Some(Ordering::Equal) => return Ok(Value::Bool(true)),
                        None => saw_null = true,
                        _ => {}
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                })
            }
            Expr::Like(e, pattern) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern))),
                _ => Err(EvalError::Type("LIKE requires a string operand")),
            },
        }
    }

    fn cmp_values(a: &Value, op: CmpOp, b: &Value) -> Option<bool> {
        a.sql_cmp(b).map(|ord| op.matches(ord))
    }

    /// Predicate form of evaluation: does the row pass (evaluate to TRUE)?
    pub fn passes(&self, row: &dyn RowAccessor) -> Result<bool, EvalError> {
        Ok(matches!(self.eval(row)?, Value::Bool(true)))
    }

    /// Field numbers referenced by this expression, collected into `out`.
    pub fn collect_fields(&self, out: &mut Vec<u16>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Field(i) => out.push(*i),
            Expr::Arith(a, _, b) | Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_fields(out);
                b.collect_fields(out);
            }
            Expr::Not(a) | Expr::IsNull { expr: a, .. } | Expr::Like(a, _) => a.collect_fields(out),
            Expr::Between { expr, lo, hi } => {
                expr.collect_fields(out);
                lo.collect_fields(out);
                hi.collect_fields(out);
            }
            Expr::InList(e, list) => {
                e.collect_fields(out);
                for item in list {
                    item.collect_fields(out);
                }
            }
        }
    }

    /// Rewrite field numbers through `map` (old field number → new).
    /// Used when pushing an executor-level predicate (numbered over a join
    /// row or over the base table) down to a projected record layout.
    pub fn remap_fields(&self, map: &dyn Fn(u16) -> u16) -> Expr {
        match self {
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Field(i) => Expr::Field(map(*i)),
            Expr::Arith(a, op, b) => Expr::Arith(
                Box::new(a.remap_fields(map)),
                *op,
                Box::new(b.remap_fields(map)),
            ),
            Expr::Cmp(a, op, b) => Expr::Cmp(
                Box::new(a.remap_fields(map)),
                *op,
                Box::new(b.remap_fields(map)),
            ),
            Expr::And(a, b) => Expr::and(a.remap_fields(map), b.remap_fields(map)),
            Expr::Or(a, b) => Expr::or(a.remap_fields(map), b.remap_fields(map)),
            Expr::Not(a) => Expr::Not(Box::new(a.remap_fields(map))),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.remap_fields(map)),
                negated: *negated,
            },
            Expr::Between { expr, lo, hi } => Expr::Between {
                expr: Box::new(expr.remap_fields(map)),
                lo: Box::new(lo.remap_fields(map)),
                hi: Box::new(hi.remap_fields(map)),
            },
            Expr::InList(e, list) => Expr::InList(
                Box::new(e.remap_fields(map)),
                list.iter().map(|i| i.remap_fields(map)).collect(),
            ),
            Expr::Like(e, p) => Expr::Like(Box::new(e.remap_fields(map)), p.clone()),
        }
    }

    /// Approximate size of this expression in an FS-DP message.
    pub fn wire_size(&self) -> usize {
        1 + match self {
            Expr::Lit(v) => v.wire_size(),
            Expr::Field(_) => 2,
            Expr::Arith(a, _, b) | Expr::Cmp(a, _, b) => 1 + a.wire_size() + b.wire_size(),
            Expr::And(a, b) | Expr::Or(a, b) => a.wire_size() + b.wire_size(),
            Expr::Not(a) | Expr::IsNull { expr: a, .. } => a.wire_size(),
            Expr::Between { expr, lo, hi } => expr.wire_size() + lo.wire_size() + hi.wire_size(),
            Expr::InList(e, list) => {
                e.wire_size() + list.iter().map(Expr::wire_size).sum::<usize>()
            }
            Expr::Like(e, p) => e.wire_size() + 2 + p.len(),
        }
    }

    /// Rough CPU work units to evaluate once (for path-length accounting).
    pub fn eval_cost(&self) -> u64 {
        1 + match self {
            Expr::Lit(_) | Expr::Field(_) => 0,
            Expr::Arith(a, _, b) | Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.eval_cost() + b.eval_cost()
            }
            Expr::Not(a) | Expr::IsNull { expr: a, .. } | Expr::Like(a, _) => a.eval_cost(),
            Expr::Between { expr, lo, hi } => expr.eval_cost() + lo.eval_cost() + hi.eval_cost(),
            Expr::InList(e, list) => e.eval_cost() + list.iter().map(Expr::eval_cost).sum::<u64>(),
        }
    }
}

impl std::fmt::Display for Expr {
    /// Compact rendering with `F<n>` field references (used by EXPLAIN).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Field(i) => write!(f, "F{i}"),
            Expr::Arith(a, op, b) => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::Cmp(a, op, b) => {
                let sym = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "<>",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "{a} {sym} {b}")
            }
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "NOT ({a})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Between { expr, lo, hi } => write!(f, "{expr} BETWEEN {lo} AND {hi}"),
            Expr::InList(e, list) => {
                write!(f, "{e} IN (")?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Expr::Like(e, p) => write!(f, "{e} LIKE '{p}'"),
        }
    }
}

/// Truth view of a value for 3VL connectives.
fn truth(v: Value) -> Result<Option<bool>, EvalError> {
    match v {
        Value::Bool(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        _ => Err(EvalError::Type("boolean expression expected")),
    }
}

fn arith(a: Value, op: ArithOp, b: Value) -> Result<Value, EvalError> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    // Integer op integer stays integer (widened to LARGEINT); any double
    // operand promotes the result to double.
    if let (Some(x), Some(y)) = (a.as_i64(), b.as_i64()) {
        let r = match op {
            ArithOp::Add => x.checked_add(y),
            ArithOp::Sub => x.checked_sub(y),
            ArithOp::Mul => x.checked_mul(y),
            ArithOp::Div => {
                if y == 0 {
                    return Err(EvalError::DivideByZero);
                }
                x.checked_div(y)
            }
        };
        return r.map(Value::LargeInt).ok_or(EvalError::Overflow);
    }
    let (x, y) = (
        a.as_f64()
            .ok_or(EvalError::Type("numeric operand expected"))?,
        b.as_f64()
            .ok_or(EvalError::Type("numeric operand expected"))?,
    );
    Ok(Value::Double(match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => x / y,
    }))
}

/// SQL `LIKE` matcher: `%` matches any run, `_` matches one character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // Greedy collapse of consecutive %.
                let p = &p[1..];
                if p.is_empty() {
                    return true;
                }
                (0..=s.len()).any(|i| rec(&s[i..], p))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

/// An update-expression list: `SET field = expr, ...` with expressions over
/// the *old* record values (the paper's "new value for a field in terms of
/// an expression involving only literals and fields of the record at hand").
#[derive(Debug, Clone, PartialEq)]
pub struct SetList {
    /// `(field number, new-value expression)` pairs.
    pub sets: Vec<(u16, Expr)>,
}

impl SetList {
    /// Apply to a decoded row, producing the new values. All expressions see
    /// the old row (simultaneous assignment, per SQL semantics).
    pub fn apply(&self, old: &dyn RowAccessor) -> Result<Vec<(u16, Value)>, EvalError> {
        self.sets
            .iter()
            .map(|(f, e)| Ok((*f, e.eval(old)?)))
            .collect()
    }

    /// Field numbers assigned by this list.
    pub fn target_fields(&self) -> Vec<u16> {
        self.sets.iter().map(|(f, _)| *f).collect()
    }

    /// Approximate wire size in an FS-DP message.
    pub fn wire_size(&self) -> usize {
        self.sets
            .iter()
            .map(|(_, e)| 2 + e.wire_size())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;

    fn row() -> Row {
        Row(vec![
            Value::Int(10),
            Value::Double(250.5),
            Value::Str("ALICE".into()),
            Value::Null,
        ])
    }

    #[test]
    fn comparison_and_arith() {
        let r = row();
        // F0 + 5 > 14
        let e = Expr::Cmp(
            Box::new(Expr::Arith(
                Box::new(Expr::Field(0)),
                ArithOp::Add,
                Box::new(Expr::lit(Value::Int(5))),
            )),
            CmpOp::Gt,
            Box::new(Expr::lit(Value::Int(14))),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        let r = row();
        let null_cmp = Expr::field_cmp(3, CmpOp::Eq, Value::Int(1)); // NULL = 1 -> NULL
        assert_eq!(null_cmp.eval(&r).unwrap(), Value::Null);
        // NULL AND FALSE = FALSE
        let e = Expr::and(null_cmp.clone(), Expr::lit(Value::Bool(false)));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
        // NULL AND TRUE = NULL
        let e = Expr::and(null_cmp.clone(), Expr::lit(Value::Bool(true)));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        // NULL OR TRUE = TRUE
        let e = Expr::or(null_cmp.clone(), Expr::lit(Value::Bool(true)));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        // NOT NULL = NULL
        assert_eq!(Expr::Not(Box::new(null_cmp)).eval(&r).unwrap(), Value::Null);
        // passes() treats NULL as not-selected
        let p = Expr::field_cmp(3, CmpOp::Eq, Value::Int(1));
        assert!(!p.passes(&r).unwrap());
    }

    #[test]
    fn is_null_is_two_valued() {
        let r = row();
        let e = Expr::IsNull {
            expr: Box::new(Expr::Field(3)),
            negated: false,
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        let e = Expr::IsNull {
            expr: Box::new(Expr::Field(0)),
            negated: true,
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn between_and_in() {
        let r = row();
        let e = Expr::Between {
            expr: Box::new(Expr::Field(0)),
            lo: Box::new(Expr::lit(Value::Int(5))),
            hi: Box::new(Expr::lit(Value::Int(15))),
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        let e = Expr::InList(
            Box::new(Expr::Field(0)),
            vec![Expr::lit(Value::Int(9)), Expr::lit(Value::Int(10))],
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        // IN with NULL in list and no match -> NULL.
        let e = Expr::InList(
            Box::new(Expr::Field(0)),
            vec![Expr::lit(Value::Int(9)), Expr::lit(Value::Null)],
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("ALICE", "ALICE"));
        assert!(like_match("ALICE", "A%"));
        assert!(like_match("ALICE", "%ICE"));
        assert!(like_match("ALICE", "%LI%"));
        assert!(like_match("ALICE", "_LICE"));
        assert!(like_match("ALICE", "%"));
        assert!(!like_match("ALICE", "B%"));
        assert!(!like_match("ALICE", "ALICE_"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("AXXB", "A%B"));
    }

    #[test]
    fn divide_by_zero_and_overflow() {
        let r = row();
        let e = Expr::Arith(
            Box::new(Expr::Field(0)),
            ArithOp::Div,
            Box::new(Expr::lit(Value::Int(0))),
        );
        assert_eq!(e.eval(&r), Err(EvalError::DivideByZero));
        let e = Expr::Arith(
            Box::new(Expr::lit(Value::LargeInt(i64::MAX))),
            ArithOp::Add,
            Box::new(Expr::lit(Value::Int(1))),
        );
        assert_eq!(e.eval(&r), Err(EvalError::Overflow));
    }

    #[test]
    fn null_arith_propagates() {
        let r = row();
        let e = Expr::Arith(
            Box::new(Expr::Field(3)),
            ArithOp::Mul,
            Box::new(Expr::lit(Value::Int(2))),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn set_list_sees_old_values() {
        // Simultaneous: SET F0 = F0 + F0, F1 = F0  (F1 gets OLD F0)
        let r = row();
        let s = SetList {
            sets: vec![
                (
                    0,
                    Expr::Arith(
                        Box::new(Expr::Field(0)),
                        ArithOp::Add,
                        Box::new(Expr::Field(0)),
                    ),
                ),
                (1, Expr::Field(0)),
            ],
        };
        let out = s.apply(&r).unwrap();
        assert_eq!(out[0], (0, Value::LargeInt(20)));
        assert_eq!(out[1], (1, Value::Int(10)), "second set sees the OLD F0");
    }

    #[test]
    fn collect_and_remap_fields() {
        let e = Expr::and(
            Expr::field_cmp(2, CmpOp::Eq, Value::Str("X".into())),
            Expr::field_cmp(5, CmpOp::Gt, Value::Int(0)),
        );
        let mut fields = Vec::new();
        e.collect_fields(&mut fields);
        assert_eq!(fields, vec![2, 5]);
        let remapped = e.remap_fields(&|f| f - 2);
        let mut fields = Vec::new();
        remapped.collect_fields(&mut fields);
        assert_eq!(fields, vec![0, 3]);
    }

    #[test]
    fn wire_size_and_cost_positive() {
        let e = Expr::field_cmp(1, CmpOp::Gt, Value::Double(32000.0));
        assert!(e.wire_size() > 8);
        assert!(e.eval_cost() >= 1);
    }
}
