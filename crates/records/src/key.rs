//! Order-preserving key encoding and key ranges.
//!
//! Keys are the currency of the set-oriented FS-DP interface: every
//! `GET^FIRST^VSBB` / `UPDATE^SUBSET^FIRST` message names a *primary key
//! range*, and the continuation re-drive protocol returns the *last
//! processed key* so the File System can re-drive with the remainder of the
//! range. Encoding keys so that byte-wise comparison equals SQL comparison
//! makes all of that (and the B-tree) simple and fast.

use crate::types::{FieldType, RecordDescriptor};
use crate::value::Value;
use std::ops::Bound;

/// Encode one value as an order-preserving byte string, appending to `out`.
///
/// Every component starts with a presence byte (`0x00` = NULL, `0x01` =
/// present) so NULLs sort first; key fields are NOT NULL in practice but the
/// encoding is total so secondary indexes over nullable columns also work.
pub fn encode_key_value(ty: FieldType, v: &Value, out: &mut Vec<u8>) {
    if v.is_null() {
        out.push(0x00);
        return;
    }
    out.push(0x01);
    match (ty, v) {
        (FieldType::SmallInt, _) => {
            let n = v.as_i64().expect("typed") as i16;
            out.extend_from_slice(&((n as u16) ^ 0x8000).to_be_bytes());
        }
        (FieldType::Int, _) => {
            let n = v.as_i64().expect("typed") as i32;
            out.extend_from_slice(&((n as u32) ^ 0x8000_0000).to_be_bytes());
        }
        (FieldType::LargeInt, _) => {
            let n = v.as_i64().expect("typed");
            out.extend_from_slice(&((n as u64) ^ 0x8000_0000_0000_0000).to_be_bytes());
        }
        (FieldType::Double, _) => {
            let x = v.as_f64().expect("typed");
            let bits = x.to_bits();
            // Standard IEEE total-order trick: flip all bits of negatives,
            // flip only the sign bit of non-negatives.
            let mapped = if bits & 0x8000_0000_0000_0000 != 0 {
                !bits
            } else {
                bits ^ 0x8000_0000_0000_0000
            };
            out.extend_from_slice(&mapped.to_be_bytes());
        }
        (FieldType::Char(n), Value::Str(s)) => {
            // Fixed width, space padded: padding preserves PAD SPACE order.
            out.extend_from_slice(s.as_bytes());
            out.extend(std::iter::repeat_n(b' ', n as usize - s.len()));
        }
        (FieldType::Varchar(_), Value::Str(s)) => {
            // 0x00 escaping + terminator keeps prefix ordering correct.
            for &b in s.as_bytes() {
                if b == 0x00 {
                    out.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    out.push(b);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
        _ => panic!("key value {v:?} does not match type {ty:?}"),
    }
}

/// Encode the key of a record (its `key_fields`, in order) from a slice of
/// field values laid out per the descriptor.
pub fn encode_record_key(desc: &RecordDescriptor, values: &[Value]) -> Vec<u8> {
    let mut out = Vec::new();
    for &k in &desc.key_fields {
        encode_key_value(desc.fields[k as usize].ty, &values[k as usize], &mut out);
    }
    out
}

/// Encode a key from an explicit (type, value) list — used for search keys
/// that constrain only a prefix of the key columns.
pub fn encode_key_prefix(parts: &[(FieldType, Value)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (ty, v) in parts {
        encode_key_value(*ty, v, &mut out);
    }
    out
}

/// An owned bound on an encoded key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwnedBound {
    /// No bound in this direction.
    Unbounded,
    /// Bound including the key itself.
    Included(Vec<u8>),
    /// Bound excluding the key itself.
    Excluded(Vec<u8>),
}

impl OwnedBound {
    /// View as a `std::ops::Bound<&[u8]>`.
    pub fn as_ref(&self) -> Bound<&[u8]> {
        match self {
            OwnedBound::Unbounded => Bound::Unbounded,
            OwnedBound::Included(k) => Bound::Included(k.as_slice()),
            OwnedBound::Excluded(k) => Bound::Excluded(k.as_slice()),
        }
    }

    /// Approximate wire size for message accounting.
    pub fn wire_size(&self) -> usize {
        1 + match self {
            OwnedBound::Unbounded => 0,
            OwnedBound::Included(k) | OwnedBound::Excluded(k) => k.len(),
        }
    }
}

/// An encoded-key range `[begin, end]` with open/closed/unbounded ends.
///
/// The set-oriented FS-DP request messages carry exactly this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    /// Lower end.
    pub begin: OwnedBound,
    /// Upper end.
    pub end: OwnedBound,
}

impl KeyRange {
    /// The full key space (the paper's `[LOW-VALUE, HIGH-VALUE]`).
    pub fn all() -> Self {
        KeyRange {
            begin: OwnedBound::Unbounded,
            end: OwnedBound::Unbounded,
        }
    }

    /// The single-key range `[key, key]`.
    pub fn point(key: Vec<u8>) -> Self {
        KeyRange {
            begin: OwnedBound::Included(key.clone()),
            end: OwnedBound::Included(key),
        }
    }

    /// All keys starting with `prefix` (the paper's *generic* key subset).
    pub fn prefix(prefix: Vec<u8>) -> Self {
        let end = match prefix_successor(&prefix) {
            Some(hi) => OwnedBound::Excluded(hi),
            None => OwnedBound::Unbounded,
        };
        KeyRange {
            begin: OwnedBound::Included(prefix),
            end,
        }
    }

    /// Does `key` fall inside the range?
    pub fn contains(&self, key: &[u8]) -> bool {
        let lo_ok = match &self.begin {
            OwnedBound::Unbounded => true,
            OwnedBound::Included(b) => key >= b.as_slice(),
            OwnedBound::Excluded(b) => key > b.as_slice(),
        };
        let hi_ok = match &self.end {
            OwnedBound::Unbounded => true,
            OwnedBound::Included(b) => key <= b.as_slice(),
            OwnedBound::Excluded(b) => key < b.as_slice(),
        };
        lo_ok && hi_ok
    }

    /// Is the range definitely empty (no key can satisfy it)?
    pub fn is_empty(&self) -> bool {
        let (lo, lo_incl) = match &self.begin {
            OwnedBound::Unbounded => return false,
            OwnedBound::Included(b) => (b, true),
            OwnedBound::Excluded(b) => (b, false),
        };
        let (hi, hi_incl) = match &self.end {
            OwnedBound::Unbounded => return false,
            OwnedBound::Included(b) => (b, true),
            OwnedBound::Excluded(b) => (b, false),
        };
        match lo.cmp(hi) {
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => !(lo_incl && hi_incl),
            std::cmp::Ordering::Greater => true,
        }
    }

    /// The continuation range after processing up to (and including)
    /// `last_key`: `(last_key, original-end]`. This is the re-drive message's
    /// "new (non-inclusive) begin-key" from the paper.
    pub fn after(&self, last_key: &[u8]) -> KeyRange {
        KeyRange {
            begin: OwnedBound::Excluded(last_key.to_vec()),
            end: self.end.clone(),
        }
    }

    /// Intersect with another range (used to clip a request range to a
    /// partition's key span).
    pub fn intersect(&self, other: &KeyRange) -> KeyRange {
        fn tighter_lo(a: &OwnedBound, b: &OwnedBound) -> OwnedBound {
            match (a, b) {
                (OwnedBound::Unbounded, x) | (x, OwnedBound::Unbounded) => x.clone(),
                (x, y) => {
                    let (kx, ky) = (bound_key(x), bound_key(y));
                    match kx.cmp(ky) {
                        std::cmp::Ordering::Greater => x.clone(),
                        std::cmp::Ordering::Less => y.clone(),
                        std::cmp::Ordering::Equal => {
                            if matches!(x, OwnedBound::Excluded(_)) {
                                x.clone()
                            } else {
                                y.clone()
                            }
                        }
                    }
                }
            }
        }
        fn tighter_hi(a: &OwnedBound, b: &OwnedBound) -> OwnedBound {
            match (a, b) {
                (OwnedBound::Unbounded, x) | (x, OwnedBound::Unbounded) => x.clone(),
                (x, y) => {
                    let (kx, ky) = (bound_key(x), bound_key(y));
                    match kx.cmp(ky) {
                        std::cmp::Ordering::Less => x.clone(),
                        std::cmp::Ordering::Greater => y.clone(),
                        std::cmp::Ordering::Equal => {
                            if matches!(x, OwnedBound::Excluded(_)) {
                                x.clone()
                            } else {
                                y.clone()
                            }
                        }
                    }
                }
            }
        }
        KeyRange {
            begin: tighter_lo(&self.begin, &other.begin),
            end: tighter_hi(&self.end, &other.end),
        }
    }

    /// Approximate wire size for message accounting.
    pub fn wire_size(&self) -> usize {
        self.begin.wire_size() + self.end.wire_size()
    }
}

fn bound_key(b: &OwnedBound) -> &[u8] {
    match b {
        OwnedBound::Included(k) | OwnedBound::Excluded(k) => k,
        OwnedBound::Unbounded => unreachable!("bounded only"),
    }
}

/// The smallest byte string greater than every string with prefix `k`:
/// `k` with its last non-0xFF byte incremented and the tail dropped.
/// Returns `None` when `k` is empty or all 0xFF (no upper bound exists).
fn prefix_successor(k: &[u8]) -> Option<Vec<u8>> {
    let mut out = k.to_vec();
    while let Some(last) = out.last_mut() {
        if *last == 0xFF {
            out.pop();
        } else {
            *last += 1;
            return Some(out);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FieldDef;

    fn key1(ty: FieldType, v: Value) -> Vec<u8> {
        let mut out = Vec::new();
        encode_key_value(ty, &v, &mut out);
        out
    }

    #[test]
    fn integer_order_preserved() {
        let vals = [i32::MIN, -100, -1, 0, 1, 99, i32::MAX];
        let keys: Vec<_> = vals
            .iter()
            .map(|&v| key1(FieldType::Int, Value::Int(v)))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn double_order_preserved() {
        let vals = [
            f64::NEG_INFINITY,
            -1e100,
            -1.5,
            -0.0,
            0.0,
            2.5,
            1e100,
            f64::INFINITY,
        ];
        let keys: Vec<_> = vals
            .iter()
            .map(|&v| key1(FieldType::Double, Value::Double(v)))
            .collect();
        for (i, w) in keys.windows(2).enumerate() {
            assert!(
                w[0] <= w[1],
                "order broken between {} and {}",
                vals[i],
                vals[i + 1]
            );
        }
    }

    #[test]
    fn null_sorts_first() {
        let n = key1(FieldType::Int, Value::Null);
        let v = key1(FieldType::Int, Value::Int(i32::MIN));
        assert!(n < v);
    }

    #[test]
    fn varchar_prefix_order() {
        let a = key1(FieldType::Varchar(10), Value::Str("AB".into()));
        let b = key1(FieldType::Varchar(10), Value::Str("ABC".into()));
        let c = key1(FieldType::Varchar(10), Value::Str("AC".into()));
        assert!(a < b && b < c);
    }

    #[test]
    fn composite_key_orders_lexicographically() {
        let d = RecordDescriptor::new(
            vec![
                FieldDef::new("A", FieldType::Int),
                FieldDef::new("B", FieldType::Char(4)),
            ],
            vec![0, 1],
        );
        let k1 = encode_record_key(&d, &[Value::Int(1), Value::Str("ZZ".into())]);
        let k2 = encode_record_key(&d, &[Value::Int(2), Value::Str("AA".into())]);
        assert!(k1 < k2, "first key column dominates");
    }

    #[test]
    fn range_contains_and_after() {
        let lo = key1(FieldType::Int, Value::Int(10));
        let hi = key1(FieldType::Int, Value::Int(20));
        let r = KeyRange {
            begin: OwnedBound::Included(lo.clone()),
            end: OwnedBound::Included(hi.clone()),
        };
        let mid = key1(FieldType::Int, Value::Int(15));
        assert!(r.contains(&lo) && r.contains(&mid) && r.contains(&hi));
        assert!(!r.contains(&key1(FieldType::Int, Value::Int(9))));
        let cont = r.after(&mid);
        assert!(!cont.contains(&mid), "re-drive begin-key is non-inclusive");
        assert!(cont.contains(&hi));
    }

    #[test]
    fn range_emptiness() {
        let a = key1(FieldType::Int, Value::Int(5));
        let b = key1(FieldType::Int, Value::Int(3));
        assert!(KeyRange {
            begin: OwnedBound::Included(a.clone()),
            end: OwnedBound::Included(b.clone()),
        }
        .is_empty());
        assert!(KeyRange {
            begin: OwnedBound::Excluded(a.clone()),
            end: OwnedBound::Included(a.clone()),
        }
        .is_empty());
        assert!(!KeyRange::point(a).is_empty());
        assert!(!KeyRange::all().is_empty());
    }

    #[test]
    fn intersect_clips_both_ends() {
        let k = |v| key1(FieldType::Int, Value::Int(v));
        let req = KeyRange {
            begin: OwnedBound::Included(k(5)),
            end: OwnedBound::Included(k(25)),
        };
        let part = KeyRange {
            begin: OwnedBound::Included(k(10)),
            end: OwnedBound::Excluded(k(20)),
        };
        let i = req.intersect(&part);
        assert!(!i.contains(&k(9)));
        assert!(i.contains(&k(10)));
        assert!(i.contains(&k(19)));
        assert!(!i.contains(&k(20)));
        assert!(!i.contains(&k(25)));
    }

    #[test]
    fn prefix_range_covers_extensions() {
        let d = RecordDescriptor::new(
            vec![
                FieldDef::new("A", FieldType::Int),
                FieldDef::new("B", FieldType::Int),
            ],
            vec![0, 1],
        );
        let p = encode_key_prefix(&[(FieldType::Int, Value::Int(7))]);
        let r = KeyRange::prefix(p);
        let in_range = encode_record_key(&d, &[Value::Int(7), Value::Int(123)]);
        let below = encode_record_key(&d, &[Value::Int(6), Value::Int(i32::MAX)]);
        let above = encode_record_key(&d, &[Value::Int(8), Value::Int(i32::MIN)]);
        assert!(r.contains(&in_range));
        assert!(!r.contains(&below));
        assert!(!r.contains(&above));
    }
}
