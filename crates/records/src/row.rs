//! Row encoding/decoding and field access.
//!
//! Two access paths exist deliberately:
//!
//! * [`Row`] — fully decoded values, used by the SQL executor.
//! * [`RawRecord`] — lazy field extraction straight from encoded record
//!   bytes, used by the Disk Process when evaluating pushed-down predicates
//!   and projections (decode only the fields actually touched).

use crate::types::{FieldType, RecordDescriptor};
use crate::value::Value;

/// Errors produced when encoding or decoding records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Value count does not match the descriptor.
    Arity {
        /// Fields in the descriptor.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value does not fit the declared field type.
    TypeMismatch {
        /// Offending field number.
        field: u16,
    },
    /// NULL supplied for a NOT NULL field.
    NullViolation {
        /// Offending field number.
        field: u16,
    },
    /// Record bytes are malformed / truncated.
    Corrupt,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Arity { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            CodecError::TypeMismatch { field } => write!(f, "type mismatch at field {field}"),
            CodecError::NullViolation { field } => {
                write!(f, "NULL not allowed in field {field}")
            }
            CodecError::Corrupt => write!(f, "corrupt record bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Uniform field access for predicate/expression evaluation.
pub trait RowAccessor {
    /// Value of field `i`. Out-of-range access is a logic error upstream and
    /// may panic.
    fn field(&self, i: u16) -> Value;
    /// Number of accessible fields.
    fn width(&self) -> usize;
}

/// A fully decoded row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Total wire size of the row's values.
    pub fn wire_size(&self) -> usize {
        self.0.iter().map(Value::wire_size).sum()
    }
}

impl RowAccessor for Row {
    fn field(&self, i: u16) -> Value {
        self.0[i as usize].clone()
    }
    fn width(&self) -> usize {
        self.0.len()
    }
}

impl RowAccessor for [Value] {
    fn field(&self, i: u16) -> Value {
        self[i as usize].clone()
    }
    fn width(&self) -> usize {
        self.len()
    }
}

/// Borrowed-slice row view (usable as a `&dyn RowAccessor`).
pub struct SliceRow<'a>(pub &'a [Value]);

impl RowAccessor for SliceRow<'_> {
    fn field(&self, i: u16) -> Value {
        self.0[i as usize].clone()
    }
    fn width(&self) -> usize {
        self.0.len()
    }
}

/// Two rows side by side (outer ++ inner), used by the executor for join
/// predicate evaluation.
pub struct ConcatRow<'a, A: ?Sized, B: ?Sized> {
    /// Left (outer) row.
    pub left: &'a A,
    /// Right (inner) row.
    pub right: &'a B,
}

impl<A: RowAccessor + ?Sized, B: RowAccessor + ?Sized> RowAccessor for ConcatRow<'_, A, B> {
    fn field(&self, i: u16) -> Value {
        let lw = self.left.width() as u16;
        if i < lw {
            self.left.field(i)
        } else {
            self.right.field(i - lw)
        }
    }
    fn width(&self) -> usize {
        self.left.width() + self.right.width()
    }
}

/// Encode a row of values per `desc`. Validates arity, types, and NOT NULL.
pub fn encode_row(desc: &RecordDescriptor, values: &[Value]) -> Result<Vec<u8>, CodecError> {
    if values.len() != desc.num_fields() {
        return Err(CodecError::Arity {
            expected: desc.num_fields(),
            got: values.len(),
        });
    }
    let mut buf = vec![0u8; desc.bitmap_len() + desc.fixed_size()];
    let mut tail: Vec<u8> = Vec::new();
    for (i, (v, f)) in values.iter().zip(&desc.fields).enumerate() {
        let slot = desc.slot_offset(i as u16);
        if v.is_null() {
            if !f.nullable {
                return Err(CodecError::NullViolation { field: i as u16 });
            }
            buf[i / 8] |= 1 << (i % 8);
            continue;
        }
        if !f.ty.admits(v) {
            return Err(CodecError::TypeMismatch { field: i as u16 });
        }
        match (f.ty, v) {
            (FieldType::SmallInt, Value::SmallInt(n)) => {
                buf[slot..slot + 2].copy_from_slice(&n.to_be_bytes())
            }
            (FieldType::Int, Value::Int(n)) => {
                buf[slot..slot + 4].copy_from_slice(&n.to_be_bytes())
            }
            (FieldType::LargeInt, Value::LargeInt(n)) => {
                buf[slot..slot + 8].copy_from_slice(&n.to_be_bytes())
            }
            (FieldType::Double, Value::Double(x)) => {
                buf[slot..slot + 8].copy_from_slice(&x.to_be_bytes())
            }
            (FieldType::Char(n), Value::Str(s)) => {
                let n = n as usize;
                if s.len() > n {
                    return Err(CodecError::TypeMismatch { field: i as u16 });
                }
                buf[slot..slot + s.len()].copy_from_slice(s.as_bytes());
                for b in &mut buf[slot + s.len()..slot + n] {
                    *b = b' ';
                }
            }
            (FieldType::Varchar(n), Value::Str(s)) => {
                if s.len() > n as usize {
                    return Err(CodecError::TypeMismatch { field: i as u16 });
                }
                let off = tail.len() as u16;
                buf[slot..slot + 2].copy_from_slice(&off.to_be_bytes());
                buf[slot + 2..slot + 4].copy_from_slice(&(s.len() as u16).to_be_bytes());
                tail.extend_from_slice(s.as_bytes());
            }
            _ => return Err(CodecError::TypeMismatch { field: i as u16 }),
        }
    }
    buf.extend_from_slice(&tail);
    Ok(buf)
}

/// Decode all fields of an encoded record.
pub fn decode_row(desc: &RecordDescriptor, bytes: &[u8]) -> Result<Row, CodecError> {
    let mut out = Vec::with_capacity(desc.num_fields());
    for i in 0..desc.num_fields() as u16 {
        out.push(extract_field(desc, bytes, i)?);
    }
    Ok(Row(out))
}

/// Extract one field from encoded record bytes without decoding the rest.
pub fn extract_field(desc: &RecordDescriptor, bytes: &[u8], i: u16) -> Result<Value, CodecError> {
    let idx = i as usize;
    if idx >= desc.num_fields() || bytes.len() < desc.bitmap_len() + desc.fixed_size() {
        return Err(CodecError::Corrupt);
    }
    if bytes[idx / 8] & (1 << (idx % 8)) != 0 {
        return Ok(Value::Null);
    }
    let slot = desc.slot_offset(i);
    let f = &desc.fields[idx];
    let take = |n: usize| -> Result<&[u8], CodecError> {
        bytes.get(slot..slot + n).ok_or(CodecError::Corrupt)
    };
    Ok(match f.ty {
        FieldType::SmallInt => Value::SmallInt(i16::from_be_bytes(take(2)?.try_into().unwrap())),
        FieldType::Int => Value::Int(i32::from_be_bytes(take(4)?.try_into().unwrap())),
        FieldType::LargeInt => Value::LargeInt(i64::from_be_bytes(take(8)?.try_into().unwrap())),
        FieldType::Double => Value::Double(f64::from_be_bytes(take(8)?.try_into().unwrap())),
        FieldType::Char(n) => {
            let raw = take(n as usize)?;
            let s = std::str::from_utf8(raw).map_err(|_| CodecError::Corrupt)?;
            Value::Str(s.trim_end_matches(' ').to_string())
        }
        FieldType::Varchar(_) => {
            let hdr = take(4)?;
            let off = u16::from_be_bytes(hdr[0..2].try_into().unwrap()) as usize;
            let len = u16::from_be_bytes(hdr[2..4].try_into().unwrap()) as usize;
            let base = desc.bitmap_len() + desc.fixed_size();
            let raw = bytes
                .get(base + off..base + off + len)
                .ok_or(CodecError::Corrupt)?;
            let s = std::str::from_utf8(raw).map_err(|_| CodecError::Corrupt)?;
            Value::Str(s.to_string())
        }
    })
}

/// Lazy field access over encoded record bytes — the Disk Process view.
pub struct RawRecord<'a> {
    /// The record layout.
    pub desc: &'a RecordDescriptor,
    /// Encoded record.
    pub bytes: &'a [u8],
}

impl RowAccessor for RawRecord<'_> {
    fn field(&self, i: u16) -> Value {
        extract_field(self.desc, self.bytes, i).unwrap_or(Value::Null)
    }
    fn width(&self) -> usize {
        self.desc.num_fields()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FieldDef;

    fn desc() -> RecordDescriptor {
        RecordDescriptor::new(
            vec![
                FieldDef::new("ID", FieldType::Int),
                FieldDef::new("NAME", FieldType::Char(8)),
                FieldDef::nullable("SAL", FieldType::Double),
                FieldDef::nullable("NOTE", FieldType::Varchar(20)),
                FieldDef::nullable("N2", FieldType::Varchar(20)),
            ],
            vec![0],
        )
    }

    fn sample() -> Vec<Value> {
        vec![
            Value::Int(42),
            Value::Str("BOB".into()),
            Value::Double(1234.5),
            Value::Str("hello".into()),
            Value::Str("world!".into()),
        ]
    }

    #[test]
    fn round_trip() {
        let d = desc();
        let bytes = encode_row(&d, &sample()).unwrap();
        let row = decode_row(&d, &bytes).unwrap();
        assert_eq!(row.0, sample());
    }

    #[test]
    fn nulls_round_trip() {
        let d = desc();
        let vals = vec![
            Value::Int(1),
            Value::Str("X".into()),
            Value::Null,
            Value::Null,
            Value::Str("v".into()),
        ];
        let bytes = encode_row(&d, &vals).unwrap();
        assert_eq!(decode_row(&d, &bytes).unwrap().0, vals);
    }

    #[test]
    fn lazy_extraction_matches_decode() {
        let d = desc();
        let bytes = encode_row(&d, &sample()).unwrap();
        for i in 0..d.num_fields() as u16 {
            assert_eq!(
                extract_field(&d, &bytes, i).unwrap(),
                decode_row(&d, &bytes).unwrap().0[i as usize]
            );
        }
    }

    #[test]
    fn char_is_space_padded_and_trimmed() {
        let d = desc();
        let bytes = encode_row(&d, &sample()).unwrap();
        // Raw bytes contain the padded form...
        let slot = d.slot_offset(1);
        assert_eq!(&bytes[slot..slot + 8], b"BOB     ");
        // ... but extraction trims.
        assert_eq!(
            extract_field(&d, &bytes, 1).unwrap(),
            Value::Str("BOB".into())
        );
    }

    #[test]
    fn not_null_enforced() {
        let d = desc();
        let mut vals = sample();
        vals[0] = Value::Null;
        assert_eq!(
            encode_row(&d, &vals),
            Err(CodecError::NullViolation { field: 0 })
        );
    }

    #[test]
    fn arity_and_type_checked() {
        let d = desc();
        assert!(matches!(
            encode_row(&d, &sample()[..3]),
            Err(CodecError::Arity { .. })
        ));
        let mut vals = sample();
        vals[0] = Value::Str("no".into());
        assert_eq!(
            encode_row(&d, &vals),
            Err(CodecError::TypeMismatch { field: 0 })
        );
    }

    #[test]
    fn oversized_strings_rejected() {
        let d = desc();
        let mut vals = sample();
        vals[1] = Value::Str("LONGERTHAN8".into());
        assert!(encode_row(&d, &vals).is_err());
        let mut vals = sample();
        vals[3] = Value::Str("x".repeat(21));
        assert!(encode_row(&d, &vals).is_err());
    }

    #[test]
    fn concat_row_spans_both_sides() {
        let left = Row(vec![Value::Int(1), Value::Int(2)]);
        let right = Row(vec![Value::Int(3)]);
        let c = ConcatRow {
            left: &left,
            right: &right,
        };
        assert_eq!(c.width(), 3);
        assert_eq!(c.field(0), Value::Int(1));
        assert_eq!(c.field(2), Value::Int(3));
    }

    #[test]
    fn truncated_bytes_are_corrupt_not_panic() {
        let d = desc();
        let bytes = encode_row(&d, &sample()).unwrap();
        assert_eq!(extract_field(&d, &bytes[..4], 0), Err(CodecError::Corrupt));
    }
}
