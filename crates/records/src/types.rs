//! Field types and record descriptors.
//!
//! A [`RecordDescriptor`] plays the role of Tandem's record descriptor: it
//! tells the Disk Process how to find "field number N" inside an encoded
//! record, so that projection and predicate evaluation can happen *at the
//! data source* without materialising whole rows.

use crate::value::Value;

/// Column data types of the 1988 SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// 16-bit integer.
    SmallInt,
    /// 32-bit integer.
    Int,
    /// 64-bit integer.
    LargeInt,
    /// IEEE double.
    Double,
    /// Fixed-length character string, space padded.
    Char(u16),
    /// Variable-length character string with maximum length.
    Varchar(u16),
}

impl FieldType {
    /// Width of this field's slot in the fixed region of a record.
    /// Varchar slots hold a `(offset, len)` pair pointing into the tail.
    pub fn fixed_width(&self) -> usize {
        match *self {
            FieldType::SmallInt => 2,
            FieldType::Int => 4,
            FieldType::LargeInt | FieldType::Double => 8,
            FieldType::Char(n) => n as usize,
            FieldType::Varchar(_) => 4,
        }
    }

    /// Maximum bytes a value of this type can occupy in a record.
    pub fn max_width(&self) -> usize {
        match *self {
            FieldType::Varchar(n) => 4 + n as usize,
            _ => self.fixed_width(),
        }
    }

    /// Whether a value is of this type (NULL matches any type).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (FieldType::SmallInt, Value::SmallInt(_))
                | (FieldType::Int, Value::Int(_))
                | (FieldType::LargeInt, Value::LargeInt(_))
                | (FieldType::Double, Value::Double(_))
                | (FieldType::Char(_), Value::Str(_))
                | (FieldType::Varchar(_), Value::Str(_))
        )
    }

    /// Coerce `v` into this type if a lossless-enough conversion exists
    /// (integer widening, integer→double, string fitting). Returns `None`
    /// when the value cannot be stored in a column of this type.
    pub fn coerce(&self, v: Value) -> Option<Value> {
        if v.is_null() {
            return Some(Value::Null);
        }
        match self {
            FieldType::SmallInt => {
                let n = v.as_i64()?;
                i16::try_from(n).ok().map(Value::SmallInt)
            }
            FieldType::Int => {
                let n = v.as_i64()?;
                i32::try_from(n).ok().map(Value::Int)
            }
            FieldType::LargeInt => v.as_i64().map(Value::LargeInt),
            FieldType::Double => v.as_f64().map(Value::Double),
            FieldType::Char(n) | FieldType::Varchar(n) => match v {
                Value::Str(s) if s.len() <= *n as usize => Some(Value::Str(s)),
                _ => None,
            },
        }
    }
}

/// A single field (column) definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Column name (upper-cased by the SQL front end).
    pub name: String,
    /// Data type.
    pub ty: FieldType,
    /// Whether NULL is storable.
    pub nullable: bool,
}

impl FieldDef {
    /// Convenience constructor for a non-nullable field.
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// Convenience constructor for a nullable field.
    pub fn nullable(name: impl Into<String>, ty: FieldType) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// Record layout: an ordered list of fields plus which field numbers form
/// the (primary) key.
///
/// Encoded record layout:
/// ```text
/// [ null bitmap: ceil(n/8) bytes ][ fixed region: one slot per field ][ var tail ]
/// ```
/// Fixed slots have precomputed offsets, so extracting field `i` from raw
/// bytes is O(1) — this is what makes Disk-Process-side field operations
/// cheap.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordDescriptor {
    /// Field definitions, in field-number order.
    pub fields: Vec<FieldDef>,
    /// Field numbers (indices into `fields`) forming the record's key.
    pub key_fields: Vec<u16>,
    /// Precomputed offset of each fixed slot from the start of the fixed
    /// region.
    fixed_offsets: Vec<usize>,
    /// Total size of the fixed region.
    fixed_size: usize,
}

impl RecordDescriptor {
    /// Build a descriptor. `key_fields` are indices into `fields`.
    ///
    /// # Panics
    /// Panics if a key field index is out of range or a key field is
    /// nullable (keys must be NOT NULL, as in the original system).
    pub fn new(fields: Vec<FieldDef>, key_fields: Vec<u16>) -> Self {
        for &k in &key_fields {
            let f = &fields[k as usize];
            assert!(!f.nullable, "key field {} must be NOT NULL", f.name);
        }
        let mut fixed_offsets = Vec::with_capacity(fields.len());
        let mut off = 0usize;
        for f in &fields {
            fixed_offsets.push(off);
            off += f.ty.fixed_width();
        }
        RecordDescriptor {
            fields,
            key_fields,
            fixed_offsets,
            fixed_size: off,
        }
    }

    /// Rebuild the precomputed layout (needed after constructing a
    /// descriptor whose cached offsets are stale).
    pub fn rebuild_layout(&mut self) {
        *self = RecordDescriptor::new(
            std::mem::take(&mut self.fields),
            std::mem::take(&mut self.key_fields),
        );
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Size of the null bitmap in bytes.
    pub fn bitmap_len(&self) -> usize {
        self.fields.len().div_ceil(8)
    }

    /// Offset of field `i`'s fixed slot from the start of the record.
    pub fn slot_offset(&self, i: u16) -> usize {
        self.bitmap_len() + self.fixed_offsets[i as usize]
    }

    /// Size of the fixed region (excluding bitmap and var tail).
    pub fn fixed_size(&self) -> usize {
        self.fixed_size
    }

    /// Maximum encoded record size (bitmap + fixed + all varchar maxima).
    pub fn max_record_size(&self) -> usize {
        self.bitmap_len() + self.fields.iter().map(|f| f.ty.max_width()).sum::<usize>()
    }

    /// Look up a field number by (case-insensitive) name.
    pub fn field_named(&self, name: &str) -> Option<u16> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
            .map(|i| i as u16)
    }

    /// Descriptor describing a projection of this record: the given fields,
    /// in the given order, with no key (projected rows are not keyed).
    pub fn project(&self, field_nums: &[u16]) -> RecordDescriptor {
        let fields = field_nums
            .iter()
            .map(|&i| self.fields[i as usize].clone())
            .collect();
        RecordDescriptor::new(fields, Vec::new())
    }

    /// Serialize to bytes (for persistence in volume file labels).
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.fields.len() as u16).to_be_bytes());
        for f in &self.fields {
            out.push(f.nullable as u8);
            let (tag, n): (u8, u16) = match f.ty {
                FieldType::SmallInt => (1, 0),
                FieldType::Int => (2, 0),
                FieldType::LargeInt => (3, 0),
                FieldType::Double => (4, 0),
                FieldType::Char(n) => (5, n),
                FieldType::Varchar(n) => (6, n),
            };
            out.push(tag);
            out.extend_from_slice(&n.to_be_bytes());
            out.extend_from_slice(&(f.name.len() as u16).to_be_bytes());
            out.extend_from_slice(f.name.as_bytes());
        }
        out.extend_from_slice(&(self.key_fields.len() as u16).to_be_bytes());
        for &k in &self.key_fields {
            out.extend_from_slice(&k.to_be_bytes());
        }
        out
    }

    /// Deserialize from [`RecordDescriptor::encode_bytes`] output; returns
    /// the descriptor and the number of bytes consumed.
    ///
    /// # Panics
    /// Panics on malformed bytes (label corruption is a simulation bug).
    pub fn decode_bytes(bytes: &[u8]) -> (RecordDescriptor, usize) {
        let mut pos = 0usize;
        let u16_at = |pos: &mut usize| {
            let v = u16::from_be_bytes(bytes[*pos..*pos + 2].try_into().unwrap());
            *pos += 2;
            v
        };
        let nfields = u16_at(&mut pos) as usize;
        let mut fields = Vec::with_capacity(nfields);
        for _ in 0..nfields {
            let nullable = bytes[pos] != 0;
            let tag = bytes[pos + 1];
            pos += 2;
            let n = u16_at(&mut pos);
            let name_len = u16_at(&mut pos) as usize;
            let name = String::from_utf8(bytes[pos..pos + name_len].to_vec()).unwrap();
            pos += name_len;
            let ty = match tag {
                1 => FieldType::SmallInt,
                2 => FieldType::Int,
                3 => FieldType::LargeInt,
                4 => FieldType::Double,
                5 => FieldType::Char(n),
                6 => FieldType::Varchar(n),
                other => panic!("corrupt descriptor type tag {other}"),
            };
            fields.push(FieldDef { name, ty, nullable });
        }
        let nkeys = u16_at(&mut pos) as usize;
        let mut key_fields = Vec::with_capacity(nkeys);
        for _ in 0..nkeys {
            key_fields.push(u16_at(&mut pos));
        }
        (RecordDescriptor::new(fields, key_fields), pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> RecordDescriptor {
        RecordDescriptor::new(
            vec![
                FieldDef::new("EMPNO", FieldType::Int),
                FieldDef::new("NAME", FieldType::Char(12)),
                FieldDef::nullable("HIRE_DATE", FieldType::Int),
                FieldDef::nullable("SALARY", FieldType::Double),
                FieldDef::nullable("BIO", FieldType::Varchar(100)),
            ],
            vec![0],
        )
    }

    #[test]
    fn offsets_are_cumulative() {
        let d = emp();
        assert_eq!(d.bitmap_len(), 1);
        assert_eq!(d.slot_offset(0), 1);
        assert_eq!(d.slot_offset(1), 5);
        assert_eq!(d.slot_offset(2), 17);
        assert_eq!(d.slot_offset(3), 21);
        assert_eq!(d.slot_offset(4), 29);
        assert_eq!(d.fixed_size(), 4 + 12 + 4 + 8 + 4);
    }

    #[test]
    fn field_lookup_is_case_insensitive() {
        let d = emp();
        assert_eq!(d.field_named("salary"), Some(3));
        assert_eq!(d.field_named("SALARY"), Some(3));
        assert_eq!(d.field_named("nope"), None);
    }

    #[test]
    fn projection_preserves_order() {
        let d = emp();
        let p = d.project(&[1, 2]);
        assert_eq!(p.fields[0].name, "NAME");
        assert_eq!(p.fields[1].name, "HIRE_DATE");
        assert!(p.key_fields.is_empty());
    }

    #[test]
    #[should_panic(expected = "NOT NULL")]
    fn nullable_key_rejected() {
        RecordDescriptor::new(vec![FieldDef::nullable("K", FieldType::Int)], vec![0]);
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            FieldType::LargeInt.coerce(Value::Int(7)),
            Some(Value::LargeInt(7))
        );
        assert_eq!(
            FieldType::SmallInt.coerce(Value::Int(70_000)),
            None,
            "overflowing narrow store is rejected"
        );
        assert_eq!(
            FieldType::Double.coerce(Value::Int(2)),
            Some(Value::Double(2.0))
        );
        assert_eq!(FieldType::Char(3).coerce(Value::Str("abcd".into())), None);
        assert_eq!(
            FieldType::Varchar(8).coerce(Value::Str("abcd".into())),
            Some(Value::Str("abcd".into()))
        );
    }

    #[test]
    fn max_record_size_bounds_layout() {
        let d = emp();
        assert_eq!(d.max_record_size(), 1 + 4 + 12 + 4 + 8 + (4 + 100));
    }

    #[test]
    fn byte_codec_round_trips() {
        let d = emp();
        let bytes = d.encode_bytes();
        let (decoded, used) = RecordDescriptor::decode_bytes(&bytes);
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, d);
        // Layout caches rebuilt correctly.
        assert_eq!(decoded.slot_offset(3), d.slot_offset(3));
    }
}
