//! Runtime values and SQL comparison semantics.

use std::cmp::Ordering;
use std::fmt;

/// A runtime SQL value.
///
/// `Bool` never appears in stored records (there was no BOOLEAN column type
/// in 1988 SQL); it exists as the result type of predicate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL (unknown).
    Null,
    /// Result of a predicate; `Null` encodes the third truth value.
    Bool(bool),
    /// SMALLINT.
    SmallInt(i16),
    /// INTEGER.
    Int(i32),
    /// LARGEINT (Tandem's 64-bit integer).
    LargeInt(i64),
    /// DOUBLE PRECISION.
    Double(f64),
    /// CHAR(n) / VARCHAR(n) contents.
    Str(String),
}

impl Value {
    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as i64, if this value is an integer type.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::SmallInt(v) => Some(v as i64),
            Value::Int(v) => Some(v as i64),
            Value::LargeInt(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as f64 (integers promote), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Double(v) => Some(v),
            _ => self.as_i64().map(|v| v as f64),
        }
    }

    /// String view, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL (unknown) or
    /// the values are not comparable (type error surfaces earlier, at bind
    /// time; this is a defensive fallback).
    ///
    /// CHAR comparison ignores trailing spaces, per SQL PAD SPACE semantics.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.trim_end_matches(' ').cmp(b.trim_end_matches(' '))),
            _ => {
                // Numeric comparison with promotion. Integer/integer stays
                // exact; any double forces a floating comparison.
                if let (Some(a), Some(b)) = (self.as_i64(), other.as_i64()) {
                    Some(a.cmp(&b))
                } else {
                    let (a, b) = (self.as_f64()?, other.as_f64()?);
                    a.partial_cmp(&b)
                }
            }
        }
    }

    /// Approximate size of this value on the wire, in bytes. Used for
    /// message-byte accounting.
    pub fn wire_size(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::SmallInt(_) => 2,
            Value::Int(_) => 4,
            Value::LargeInt(_) | Value::Double(_) => 8,
            Value::Str(s) => 2 + s.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::SmallInt(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::LargeInt(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_compares_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn cross_width_integer_comparison_is_exact() {
        assert_eq!(
            Value::SmallInt(7).sql_cmp(&Value::LargeInt(7)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(-1).sql_cmp(&Value::LargeInt(i64::MAX)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn double_promotes_integers() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Double(3.0).sql_cmp(&Value::LargeInt(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn char_padding_is_insignificant() {
        assert_eq!(
            Value::Str("AB  ".into()).sql_cmp(&Value::Str("AB".into())),
            Some(Ordering::Equal)
        );
        // ... but interior spaces matter.
        assert_eq!(
            Value::Str("A B".into()).sql_cmp(&Value::Str("AB".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn wire_size_tracks_content() {
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::Int(5).wire_size(), 5);
        assert_eq!(Value::Str("abcd".into()).wire_size(), 7);
    }
}
