// Fixture: reads the wall clock outside the allowlist.
use std::time::Instant;

fn elapsed() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
