//! Fixture: silent `Result` discards in wire-protocol code. Both shapes
//! must be counted — the lone-underscore binding and the bare `.ok();`.

fn send() -> Result<u32, String> {
    Err("dropped on the floor".to_string())
}

pub fn fire_and_forget() {
    let _ = send();
    send().ok();
}
