// Fixture: unwrap/expect/panic! in non-test code, counted by the ratchet.

fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

fn second(v: &[u32]) -> u32 {
    *v.get(1).expect("need two elements")
}

fn third(v: &[u32]) -> u32 {
    match v.get(2) {
        Some(x) => *x,
        None => panic!("need three elements"),
    }
}
