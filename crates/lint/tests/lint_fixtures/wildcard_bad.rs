// Fixture: a `_ =>` arm in a match over a protocol enum.

enum DpReply {
    Row(Vec<u8>),
    Done,
    Error(String),
}

fn describe(r: &DpReply) -> &'static str {
    match r {
        DpReply::Row(_) => "row",
        _ => "something else",
    }
}
