//! Fixture twin: every `Result` is consumed — named bindings, bound
//! `.ok()`, returned `.ok()`, and matches all pass.

fn send() -> Result<u32, String> {
    Ok(7)
}

pub fn handled() -> Option<u32> {
    let _reply = send();
    let cached = send().ok();
    if let Err(e) = send() {
        eprintln!("send failed: {e}");
    }
    match send() {
        Ok(v) => drop(v),
        Err(_unused) => {}
    }
    cached?;
    send().ok()
}
