// Fixture: unwrap only inside `#[cfg(test)]`, which the ratchet ignores.

fn safe(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(safe(&[7]).unwrap(), 7);
    }
}
