// Fixture: a typo'd paper-verb trace label (FRIST for FIRST).

fn label() -> &'static str {
    "GET^FRIST^VSBB"
}
