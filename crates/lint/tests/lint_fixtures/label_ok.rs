// Fixture: canonical paper-verb labels and non-label strings pass.

fn labels() -> [&'static str; 3] {
    ["GET^FIRST^VSBB", "UPDATE^SUBSET^FIRST", "plain text, no caret"]
}
