// Fixture: the banned names appear only in comments and strings, which the
// lexer must see through. Instant::now() — not a violation here.

fn describe() -> &'static str {
    "uses Instant and SystemTime by name only"
}
