// Fixture: exhaustive protocol matches and a wildcard over a *non*-protocol
// enum are both fine.

enum DpReply {
    Row(Vec<u8>),
    Done,
    Error(String),
}

enum Color {
    Red,
    Green,
    Blue,
}

fn describe(r: &DpReply) -> &'static str {
    match r {
        DpReply::Row(_) => "row",
        DpReply::Done => "done",
        DpReply::Error(_) => "error",
    }
}

fn warm(c: &Color) -> bool {
    match c {
        Color::Red => true,
        _ => false,
    }
}
