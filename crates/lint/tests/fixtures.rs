//! Fixture-driven rule tests plus the workspace self-check.
//!
//! Each `lint_fixtures/*_bad.rs` file must trigger exactly its rule with a
//! rule-named diagnostic carrying a real file:line; each `*_ok.rs` twin
//! must pass clean. The final test runs the full linter over the real
//! workspace with the checked-in `lint.toml` — the linter lints the repo
//! that ships it.

use nsql_lint::config::Config;
use nsql_lint::rules::{self, Diagnostic};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A config equivalent to the repo's lint.toml for fixture purposes.
fn fixture_config() -> Config {
    Config::parse(
        r#"
[wall_clock]
banned = ["Instant", "SystemTime", "thread_rng"]
allow = ["crates/bench/src/wall_clock.rs"]

[protocol_enums]
names = ["DpRequest", "DpReply", "FsError", "BusError"]

[trace_labels]
canonical = ["GET^FIRST^VSBB", "UPDATE^SUBSET^FIRST", "GET^NEXT"]

[result_discard]
crates = ["fixtures"]

[ratchet]
"fixtures" = 0
"#,
    )
    .expect("fixture config parses")
}

/// Lint one fixture under a fake non-test path (fixtures model product
/// code, so they must not be exempted by test-path rules).
fn lint_fixture(name: &str) -> (Vec<Diagnostic>, u64) {
    let src = std::fs::read_to_string(fixture_dir().join(name)).expect("fixture readable");
    let report = rules::lint_source(&fixture_config(), &format!("fixtures/{name}"), &src);
    (report.diags, report.panic_count)
}

#[test]
fn wall_clock_bad_names_the_rule_and_line() {
    let (diags, _) = lint_fixture("wall_clock_bad.rs");
    let hit = diags
        .iter()
        .find(|d| d.rule == "wall-clock")
        .expect("wall_clock_bad.rs must trip wall-clock");
    assert_eq!(hit.file, "fixtures/wall_clock_bad.rs");
    assert!(hit.line >= 2, "diagnostic carries a real line: {hit}");
    assert!(hit.to_string().contains("wall_clock_bad.rs"));
}

#[test]
fn wall_clock_ok_is_clean() {
    let (diags, _) = lint_fixture("wall_clock_ok.rs");
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

#[test]
fn panic_bad_counts_three_sites() {
    let (_, count) = lint_fixture("panic_bad.rs");
    assert_eq!(count, 3, "unwrap + expect + panic!");
}

#[test]
fn panic_ok_counts_zero() {
    let (_, count) = lint_fixture("panic_ok.rs");
    assert_eq!(count, 0, "cfg(test) regions are exempt");
}

#[test]
fn wildcard_bad_names_the_rule_and_line() {
    let (diags, _) = lint_fixture("wildcard_bad.rs");
    let hit = diags
        .iter()
        .find(|d| d.rule == "wildcard-match")
        .expect("wildcard_bad.rs must trip wildcard-match");
    assert!(hit.line > 0);
    assert!(hit.msg.contains("DpReply"), "names the enum: {}", hit.msg);
}

#[test]
fn wildcard_ok_is_clean() {
    let (diags, _) = lint_fixture("wildcard_ok.rs");
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

#[test]
fn label_bad_names_the_rule_and_line() {
    let (diags, _) = lint_fixture("label_bad.rs");
    let hit = diags
        .iter()
        .find(|d| d.rule == "trace-label")
        .expect("label_bad.rs must trip trace-label");
    assert!(hit.msg.contains("GET^FRIST^VSBB"), "{}", hit.msg);
}

#[test]
fn label_ok_is_clean() {
    let (diags, _) = lint_fixture("label_ok.rs");
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

#[test]
fn discard_bad_counts_both_shapes() {
    let src = std::fs::read_to_string(fixture_dir().join("discard_bad.rs")).expect("fixture");
    let report = rules::lint_source(&fixture_config(), "fixtures/discard_bad.rs", &src);
    assert_eq!(report.discard_count, 2, "let _ = … plus bare .ok();");
    let sites = rules::discard_sites(&src);
    assert_eq!(sites.len(), 2);
    assert!(sites.iter().any(|(_, w)| w == "let _ ="), "{sites:?}");
    assert!(sites.iter().any(|(_, w)| w == ".ok();"), "{sites:?}");
}

#[test]
fn discard_ok_counts_zero() {
    let src = std::fs::read_to_string(fixture_dir().join("discard_ok.rs")).expect("fixture");
    let report = rules::lint_source(&fixture_config(), "fixtures/discard_ok.rs", &src);
    assert_eq!(report.discard_count, 0, "{:?}", rules::discard_sites(&src));
}

#[test]
fn ratchet_flags_fixture_over_zero_ceiling() {
    let cfg = fixture_config();
    let mut counts = std::collections::BTreeMap::new();
    counts.insert("fixtures/panic_bad.rs".to_string(), 3u64);
    let (diags, actual) = rules::enforce_ratchet(&cfg, &counts);
    assert_eq!(actual.get("fixtures"), Some(&3));
    assert!(
        diags.iter().any(|d| d.rule == "panic-ratchet"),
        "over-ceiling bucket must be flagged: {diags:?}"
    );
}

/// The linter runs clean on the workspace that ships it, with the real
/// checked-in lint.toml.
#[test]
fn workspace_self_check_is_clean() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml present");
    let cfg = Config::parse(&text).expect("lint.toml parses");
    let report = nsql_lint::check_workspace(&root, &cfg).expect("workspace scan");
    assert!(
        report.diags.is_empty(),
        "workspace must lint clean:\n{}",
        report
            .diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files > 50, "scanned the real tree");
    // The hard-zero buckets really are zero.
    for bucket in [
        "crates/msg",
        "crates/dp/src/protocol.rs",
        "crates/fs/src/sqlapi.rs",
    ] {
        assert_eq!(
            report.bucket_counts.get(bucket),
            Some(&0),
            "{bucket} must be panic-free"
        );
    }
    // The implicit-zero discard surfaces really discard nothing: fs and
    // lock have no [result_discard] baseline, so any new silent discard
    // there fails the scan above — and their counts are zero today.
    for (file, &n) in &report.discard_counts {
        if file.starts_with("crates/fs/") || file.starts_with("crates/lock/") {
            assert_eq!(n, 0, "{file} must not silently discard Results");
        }
    }
}
