//! Bounded explicit-state model checking of the contention protocol.
//!
//! PR 8 added the system's most schedule-sensitive code: lock manager v2
//! with FIFO waiter queues, youngest-cycle-member victim selection, typed
//! doom propagation (`DpError` → `FsError::Doomed` → `ExecError::Doomed`),
//! virtual-time lock-wait timeouts, and an admission-control gate. The load
//! engine *samples* that state space with a handful of seeds; this module
//! *exhausts* it, the way [`crate::model`] exhausts the FS-DP recovery
//! protocol.
//!
//! The model mirrors the real layers branch-for-branch:
//!
//! * **lock manager** — `crates/lock/src/lib.rs`: `acquire` (covered check,
//!   held-conflict scan, FIFO fairness scan with the upgrade exemption,
//!   grant), `wait` (queue entry keeps its position across re-polls,
//!   `close_cycle` walking the waits-for chain, youngest-member victim
//!   whose wait state is cleared), `release_all`, `stop_waiting`;
//! * **Disk Process** — `crates/dp/src/lib.rs::lock`: the doomed fail-fast
//!   check, queuing behind the holder, dooming a younger victim at the TMF
//!   while the older requester keeps waiting, `LockTimeout` bouncing;
//! * **TMF** — `crates/tmf/src/txn.rs`: `commit` refuses a doomed
//!   transaction (abort instead), abort releases everything;
//! * **client** — `crates/workloads/src/load.rs`: re-polling a `Locked`
//!   bounce, aborting on `Doomed` and retrying as a *fresh, younger*
//!   transaction, the bounded retry budget, and the FIFO admission gate
//!   whose slot is retained across retries and handed to the queue head on
//!   release.
//!
//! Exploration is a deterministic BFS over *canonical* states: transaction
//! identity is reduced to begin-order rank among live transactions (the
//! transaction-symmetry reduction — absolute TMF ids only matter through
//! their relative age), so the retried-transaction id space collapses and
//! the graph is finite. Schedules are counted exactly by path counting over
//! the explored graph; every reported violation carries the action sequence
//! from the initial state, replayable with [`replay`].
//!
//! Invariants, checked on every transition and at every quiescent state:
//!
//! * **fifo-no-overtake** — a grant never bypasses an earlier-queued
//!   incompatible waiter (upgrades excepted);
//! * **youngest-victim** — a detected waits-for cycle's victim is its
//!   youngest member (highest begin rank);
//! * **one-victim-per-cycle** — no transaction is victimized twice for the
//!   same unresolved cycle (dooming must actually dissolve it);
//! * **serializability** — no two live transactions ever hold incompatible
//!   locks on the same item; with strict 2PL (all effects under locks held
//!   to commit/abort) this is exactly conflict-serializability of the
//!   committed effects;
//! * **doomed-commit** — a doomed transaction never commits;
//! * **drain** — at quiescence the lock table, waiter queue, waits-for
//!   graph, and admission gate are all empty;
//! * **liveness** — no stuck state (a non-quiescent state always has an
//!   enabled action: no stuck waiter, no lost wakeup, no lost admission
//!   grant) and no livelock (the canonical state graph is acyclic).
//!
//! Three mutation switches weaken one mechanism each and must produce a
//! printed, replayable counterexample — the contention analogue of the
//! reply-cache `cache=0` double-apply pin:
//!
//! * [`Mutation::OvertakeQueue`] drops the FIFO fairness scan;
//! * [`Mutation::OldestVictim`] picks the cycle's oldest member;
//! * [`Mutation::DropDoom`] detects the deadlock but never dooms the
//!   victim at the TMF.

use std::collections::{HashMap, VecDeque};

/// Lock mode (mirrors `nsql_lock::LockMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Shared (read).
    Shared,
    /// Exclusive (write).
    Exclusive,
}

impl Mode {
    /// Classic S/X compatibility (mirrors `LockMode::compatible`).
    fn compatible(self, other: Mode) -> bool {
        matches!((self, other), (Mode::Shared, Mode::Shared))
    }
}

/// A deliberately weakened mechanism, for counterexample pinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// The faithful protocol.
    #[default]
    None,
    /// `acquire` skips the FIFO fairness scan: a late arrival may overtake
    /// an earlier incompatible queued waiter.
    OvertakeQueue,
    /// `close_cycle` picks the *oldest* cycle member as the victim instead
    /// of the youngest.
    OldestVictim,
    /// The Disk Process detects the deadlock and reports the victim, but
    /// the `txnmgr.doom(victim)` edge is dropped — the victim is never
    /// told, so the cycle does not actually dissolve.
    DropDoom,
}

impl Mutation {
    /// Parse a CLI mutation name.
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "none" => Some(Mutation::None),
            "overtake" => Some(Mutation::OvertakeQueue),
            "oldest-victim" => Some(Mutation::OldestVictim),
            "drop-doom" => Some(Mutation::DropDoom),
            _ => None,
        }
    }
}

/// One step of a transaction's script: acquire `item` in `mode`.
type Step = (u8, Mode);

/// Model parameters. The script shape is derived from `txns`/`locks`:
/// transaction `i` acquires `(i, Shared)`, `((i+1) % locks, Exclusive)`,
/// then upgrades `(i, Exclusive)` — rotated orders make waits-for cycles of
/// every length reachable, the shared first step exercises S/S coexistence
/// and the upgrade exercises the queue-jumping upgrade path.
#[derive(Debug, Clone)]
pub struct LockModelConfig {
    /// Concurrent client slots (K).
    pub txns: usize,
    /// Lockable items (M).
    pub locks: usize,
    /// Admission-gate capacity (slots in flight at once).
    pub max_inflight: usize,
    /// Retries per slot after its first attempt (load-engine
    /// `max_txn_retries`).
    pub max_retries: u8,
    /// Lock-wait timeouts the adversary may fire per schedule.
    pub max_timeouts: u8,
    /// Per-slot acquisition scripts (one `Vec<Step>` per slot).
    pub scripts: Vec<Vec<Step>>,
    /// Weakened mechanism under test.
    pub mutation: Mutation,
}

impl LockModelConfig {
    /// The cycle-heavy configuration: 3 transactions × 3 locks, rotated
    /// scripts with a shared first step and a queue-jumping upgrade, all
    /// slots admitted at once. Deadlock cycles of length 2 and 3 are
    /// reachable, as are upgrade deadlocks.
    pub fn cycle() -> LockModelConfig {
        let txns = 3usize;
        let locks = 3u8;
        let scripts = (0..txns)
            .map(|i| {
                let a = i as u8 % locks;
                let b = (i as u8 + 1) % locks;
                vec![
                    (a, Mode::Shared),
                    (b, Mode::Exclusive),
                    (a, Mode::Exclusive),
                ]
            })
            .collect();
        LockModelConfig {
            txns,
            locks: locks as usize,
            max_inflight: 3,
            max_retries: 3,
            max_timeouts: 1,
            scripts,
            mutation: Mutation::None,
        }
    }

    /// The convoy configuration: 3 transactions all acquiring the same two
    /// items in the same order through a 2-slot admission gate. No cycles
    /// are reachable, so every contention event is a pure FIFO convoy —
    /// the configuration that distinguishes fair queues from overtaking
    /// ones, and admission queueing from open admission.
    pub fn convoy() -> LockModelConfig {
        let txns = 3usize;
        let scripts = (0..txns)
            .map(|_| vec![(0u8, Mode::Exclusive), (1u8, Mode::Exclusive)])
            .collect();
        LockModelConfig {
            txns,
            locks: 2,
            max_inflight: 2,
            max_retries: 2,
            max_timeouts: 2,
            scripts,
            mutation: Mutation::None,
        }
    }
}

/// One scheduler choice. `Arrive` is a client arriving at the admission
/// gate (admitted immediately when a slot is free, queued FIFO otherwise);
/// `Poll` is the slot's next protocol action (acquire / re-poll / begin a
/// retry / commit); `Timeout` fires the armed lock-wait timeout on an
/// established waiter (the adversary's per-step fault choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// Slot arrives at the gate.
    Arrive(u8),
    /// Slot takes its next protocol step.
    Poll(u8),
    /// The lock-wait timeout fires for this waiting slot.
    Timeout(u8),
}

impl std::fmt::Display for Act {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Act::Arrive(s) => write!(f, "Arrive(T{s})"),
            Act::Poll(s) => write!(f, "Poll(T{s})"),
            Act::Timeout(s) => write!(f, "Timeout(T{s})"),
        }
    }
}

/// Where one client slot is in its transaction lifecycle (mirrors the load
/// engine's `TermState`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Not yet arrived at the gate.
    Unarrived,
    /// Arrived; queued at the admission gate.
    Queued,
    /// In flight, executing its script.
    Running,
    /// Bounced off a holder; queued at the lock manager.
    Waiting,
    /// Aborted (doomed victim / timeout); will begin a fresh attempt.
    Backoff,
    /// Committed.
    Committed,
    /// Retry budget exhausted.
    GaveUp,
}

/// One client slot's state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Slot {
    phase: Phase,
    /// Next script step to acquire; `pc == script.len()` means commit next.
    pc: u8,
    /// Attempts begun so far (first attempt = 1).
    attempt: u8,
    /// Begin-order rank among *live* transactions (the symmetry-reduced
    /// TMF id): higher rank = younger. Meaningless unless live.
    rank: u8,
    /// TMF doomed this transaction (deadlock victim chosen while someone
    /// else was requesting).
    doomed: bool,
    /// Chosen as a deadlock victim and not yet aborted — the
    /// one-victim-per-cycle invariant's bookkeeping.
    victimized: bool,
}

impl Slot {
    /// Does this slot currently own a live transaction?
    fn live(&self) -> bool {
        matches!(self.phase, Phase::Running | Phase::Waiting)
    }
}

/// A held lock: `(slot, item, mode)`, insertion-ordered like the real
/// manager's `held` vector.
type Held = (u8, u8, Mode);

/// A queued waiter: `(slot, item, mode)`, FIFO like the real manager's
/// `waiters` vector.
type Waiter = (u8, u8, Mode);

/// The canonical model state. Slots are identified by index (their scripts
/// differ, so slots are distinguishable); transaction *ids* appear only as
/// compressed age ranks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct St {
    slots: Vec<Slot>,
    held: Vec<Held>,
    waiters: Vec<Waiter>,
    /// `waiter slot -> holder slot` edges, sorted (the map iteration order
    /// of the real `waits_for` does not matter — lookup is keyed).
    waits_for: Vec<(u8, u8)>,
    /// Admission-gate FIFO of queued slots.
    gate: Vec<u8>,
    inflight: u8,
    /// Adversary timeout budget consumed.
    timeouts_used: u8,
}

impl St {
    fn initial(cfg: &LockModelConfig) -> St {
        St {
            slots: (0..cfg.txns)
                .map(|_| Slot {
                    phase: Phase::Unarrived,
                    pc: 0,
                    attempt: 0,
                    rank: 0,
                    doomed: false,
                    victimized: false,
                })
                .collect(),
            held: Vec::new(),
            waiters: Vec::new(),
            waits_for: Vec::new(),
            gate: Vec::new(),
            inflight: 0,
            timeouts_used: 0,
        }
    }

    /// The transaction-symmetry reduction: compress live ranks to
    /// `0..live_count` preserving relative age, zero dead ranks.
    fn canonicalize(&mut self) {
        let mut live: Vec<(u8, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live() || s.phase == Phase::Backoff)
            .map(|(i, s)| (s.rank, i))
            .collect();
        live.sort_unstable();
        for (new_rank, &(_, idx)) in live.iter().enumerate() {
            self.slots[idx].rank = new_rank as u8;
        }
        for (i, s) in self.slots.iter_mut().enumerate() {
            if !(s.live() || s.phase == Phase::Backoff) {
                s.rank = 0;
            }
            debug_assert!(
                s.live() || s.phase == Phase::Backoff || (!s.doomed && !s.victimized),
                "slot {i} carries doom state without a live transaction"
            );
        }
        self.waits_for.sort_unstable();
    }

    fn edge_from(&self, waiter: u8) -> Option<u8> {
        self.waits_for
            .iter()
            .find(|(w, _)| *w == waiter)
            .map(|&(_, h)| h)
    }

    fn remove_edge_from(&mut self, waiter: u8) {
        self.waits_for.retain(|(w, _)| *w != waiter);
    }

    /// Mirror of `LockManager::release_all` plus TMF forgetting the txn.
    fn release_all(&mut self, slot: u8) {
        self.held.retain(|&(s, _, _)| s != slot);
        self.waiters.retain(|&(s, _, _)| s != slot);
        self.waits_for.retain(|&(w, h)| w != slot && h != slot);
        self.slots[slot as usize].doomed = false;
        self.slots[slot as usize].victimized = false;
    }
}

/// An invariant violation with its replayable schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: &'static str,
    /// What exactly went wrong.
    pub detail: String,
    /// The action sequence from the initial state that reproduces it.
    pub schedule: Vec<Act>,
}

/// Result of exploring one configuration.
#[derive(Debug, Default)]
pub struct Exploration {
    /// Canonical states visited.
    pub states: u64,
    /// Transitions taken (stutter steps excluded).
    pub transitions: u64,
    /// Distinct schedules (root-to-quiescence interleavings) covered by
    /// the explored graph, saturating at `u64::MAX`.
    pub schedules: u64,
    /// Quiescent states reached.
    pub terminals: u64,
    /// Quiescent states in which some slot exhausted its retry budget.
    pub gave_up_terminals: u64,
    /// First violation found per invariant, minimal-schedule first.
    pub violations: Vec<Violation>,
    /// Total violating transitions (mutants can trip thousands).
    pub violation_count: u64,
}

/// Outcome of applying one action: the successor state, plus any invariant
/// violations the transition itself raised.
struct Applied {
    next: St,
    violations: Vec<(&'static str, String)>,
}

// ----------------------------------------------------------------------
// The protocol step function (the branch-for-branch mirror)
// ----------------------------------------------------------------------

/// Mirror of `LockManager::acquire`'s covered check: does `slot` already
/// hold `item` at sufficient strength?
fn covered(st: &St, slot: u8, item: u8, mode: Mode) -> bool {
    st.held
        .iter()
        .any(|&(s, i, m)| s == slot && i == item && (m == Mode::Exclusive || mode == Mode::Shared))
}

/// Mirror of the upgrade test: does `slot` hold any lock on `item`?
fn upgrading(st: &St, slot: u8, item: u8) -> bool {
    st.held.iter().any(|&(s, i, _)| s == slot && i == item)
}

/// What `acquire` decided.
enum AcquireOutcome {
    /// Granted (or already covered).
    Granted,
    /// Bounced off a holder or an earlier queued waiter.
    Conflict { holder: u8 },
}

/// Mirror of `LockManager::acquire`, with the independent fifo-no-overtake
/// invariant check evaluated at grant time (so a mutated mechanism that
/// grants unfairly is caught by the checker, not trusted).
fn acquire(
    st: &mut St,
    cfg: &LockModelConfig,
    slot: u8,
    item: u8,
    mode: Mode,
    violations: &mut Vec<(&'static str, String)>,
) -> AcquireOutcome {
    // Already covered by one of our own locks at sufficient strength?
    if covered(st, slot, item, mode) {
        st.waiters.retain(|&(s, _, _)| s != slot);
        st.remove_edge_from(slot);
        return AcquireOutcome::Granted;
    }
    // Conflict scan: any overlapping lock by another txn in an
    // incompatible mode blocks us.
    for &(s, i, m) in &st.held {
        if s != slot && i == item && !m.compatible(mode) {
            return AcquireOutcome::Conflict { holder: s };
        }
    }
    // FIFO fairness scan: an incompatible waiter queued before us gets the
    // grant first — unless we are upgrading. The OvertakeQueue mutation
    // deletes exactly this branch.
    let is_upgrade = upgrading(st, slot, item);
    if cfg.mutation != Mutation::OvertakeQueue && !is_upgrade {
        for &(s, i, m) in &st.waiters {
            if s == slot {
                break; // only arrivals ahead of our own position count
            }
            if i == item && !m.compatible(mode) {
                return AcquireOutcome::Conflict { holder: s };
            }
        }
    }
    // Grant. Invariant: the grant must not have bypassed an earlier-queued
    // incompatible waiter (upgrades excepted).
    if !is_upgrade {
        for &(s, i, m) in &st.waiters {
            if s == slot {
                break;
            }
            if i == item && !m.compatible(mode) {
                violations.push((
                    "fifo-no-overtake",
                    format!(
                        "T{slot} granted item {item} {mode:?} over earlier queued \
                         waiter T{s} ({m:?})"
                    ),
                ));
            }
        }
    }
    st.held.push((slot, item, mode));
    st.waiters.retain(|&(s, _, _)| s != slot);
    st.remove_edge_from(slot);
    AcquireOutcome::Granted
}

/// What `wait` (the declared block) decided.
enum WaitOutcome {
    /// Edge recorded; keep waiting.
    Waiting,
    /// The new edge closed a cycle; `victim` was chosen and its wait state
    /// cleared.
    Deadlock { victim: u8 },
}

/// Mirror of `LockManager::wait` + `close_cycle`, with the independent
/// youngest-victim and one-victim-per-cycle invariant checks.
fn wait(
    st: &mut St,
    cfg: &LockModelConfig,
    waiter: u8,
    holder: u8,
    item: u8,
    mode: Mode,
    violations: &mut Vec<(&'static str, String)>,
) -> WaitOutcome {
    // Find or create the FIFO queue entry; a changed request keeps its
    // position but updates in place (mirrors the real manager).
    match st.waiters.iter_mut().find(|(s, _, _)| *s == waiter) {
        Some(w) => {
            w.1 = item;
            w.2 = mode;
        }
        None => st.waiters.push((waiter, item, mode)),
    }
    // close_cycle: walk holder's wait chain; reaching `waiter` is a cycle.
    let mut members = vec![waiter, holder];
    let mut cur = holder;
    let mut hops = 0usize;
    while let Some(next) = st.edge_from(cur) {
        if next == waiter {
            // A cycle. The mechanism picks its victim (youngest, unless
            // mutated); the checker independently recomputes the youngest
            // and audits the choice.
            let mechanism_victim = match cfg.mutation {
                Mutation::OldestVictim => *members
                    .iter()
                    .min_by_key(|&&s| st.slots[s as usize].rank)
                    .unwrap_or(&waiter),
                _ => *members
                    .iter()
                    .max_by_key(|&&s| st.slots[s as usize].rank)
                    .unwrap_or(&waiter),
            };
            let true_youngest = *members
                .iter()
                .max_by_key(|&&s| st.slots[s as usize].rank)
                .unwrap_or(&waiter);
            if mechanism_victim != true_youngest {
                violations.push((
                    "youngest-victim",
                    format!(
                        "cycle {} chose victim T{mechanism_victim} (rank {}), but the \
                         youngest member is T{true_youngest} (rank {})",
                        render_cycle(&members),
                        st.slots[mechanism_victim as usize].rank,
                        st.slots[true_youngest as usize].rank,
                    ),
                ));
            }
            if st.slots[mechanism_victim as usize].victimized {
                violations.push((
                    "one-victim-per-cycle",
                    format!(
                        "cycle {} re-victimized T{mechanism_victim}: its first \
                         victimization never dissolved the cycle (doom dropped?)",
                        render_cycle(&members),
                    ),
                ));
            }
            st.slots[mechanism_victim as usize].victimized = true;
            // Clear the victim's wait state (this is what breaks the cycle)
            // and, when the victim is someone else, record the waiter's
            // edge — the cycle is already broken, so the edge is safe.
            st.remove_edge_from(mechanism_victim);
            st.waiters.retain(|&(s, _, _)| s != mechanism_victim);
            if mechanism_victim != waiter {
                st.remove_edge_from(waiter);
                st.waits_for.push((waiter, holder));
            }
            return WaitOutcome::Deadlock {
                victim: mechanism_victim,
            };
        }
        members.push(next);
        cur = next;
        hops += 1;
        if hops > st.waits_for.len() {
            break; // defensive: malformed graph
        }
    }
    st.remove_edge_from(waiter);
    st.waits_for.push((waiter, holder));
    WaitOutcome::Waiting
}

fn render_cycle(members: &[u8]) -> String {
    let names: Vec<String> = members.iter().map(|s| format!("T{s}")).collect();
    format!("[{}]", names.join("→"))
}

/// Begin a fresh transaction for `slot` (the TMF `begin`): it becomes the
/// youngest live transaction.
fn begin(st: &mut St, slot: u8) {
    let max_rank = st
        .slots
        .iter()
        .filter(|s| s.live() || s.phase == Phase::Backoff)
        .map(|s| s.rank)
        .max()
        .unwrap_or(0);
    let s = &mut st.slots[slot as usize];
    s.phase = Phase::Running;
    s.pc = 0;
    s.attempt += 1;
    s.rank = max_rank + 1;
    s.doomed = false;
    s.victimized = false;
}

/// Abort `slot`'s transaction and put it on the retry path — or give up
/// past the budget, releasing the admission slot (mirrors the load
/// engine's `retry` + `release_slot`).
fn abort_and_retry(st: &mut St, cfg: &LockModelConfig, slot: u8) {
    st.release_all(slot);
    let attempts = st.slots[slot as usize].attempt;
    if attempts > cfg.max_retries {
        st.slots[slot as usize].phase = Phase::GaveUp;
        release_gate_slot(st, cfg);
    } else {
        // The admission slot is retained across the backoff.
        st.slots[slot as usize].phase = Phase::Backoff;
    }
}

/// Free one admission slot and hand it straight to the head of the gate
/// FIFO (mirrors `release_slot`: the granted slot begins immediately).
fn release_gate_slot(st: &mut St, _cfg: &LockModelConfig) {
    st.inflight -= 1;
    if !st.gate.is_empty() {
        let head = st.gate.remove(0);
        st.inflight += 1;
        begin(st, head);
    }
}

/// Apply one action to a state. Returns `None` when the action is not
/// enabled there.
fn apply(st: &St, cfg: &LockModelConfig, act: Act) -> Option<Applied> {
    let mut next = st.clone();
    let mut violations = Vec::new();
    match act {
        Act::Arrive(slot) => {
            if st.slots[slot as usize].phase != Phase::Unarrived {
                return None;
            }
            if (next.inflight as usize) < cfg.max_inflight {
                next.inflight += 1;
                begin(&mut next, slot);
            } else {
                // The admission-queued branch: the arrival parks FIFO.
                next.slots[slot as usize].phase = Phase::Queued;
                next.gate.push(slot);
            }
        }
        Act::Timeout(slot) => {
            // The lock-wait timeout fires: only meaningful for a waiter
            // with an established queue entry, and budgeted per schedule.
            if st.slots[slot as usize].phase != Phase::Waiting
                || st.timeouts_used >= cfg.max_timeouts
                || !st.waiters.iter().any(|&(s, _, _)| s == slot)
            {
                return None;
            }
            next.timeouts_used += 1;
            // Mirror `LockError::WaitTimeout` → `DpError::LockTimeout` →
            // `FsError::Doomed` → client abort + retry: the waiter is
            // dequeued and dooms itself.
            next.waiters.retain(|&(s, _, _)| s != slot);
            next.remove_edge_from(slot);
            abort_and_retry(&mut next, cfg, slot);
        }
        Act::Poll(slot) => {
            let phase = st.slots[slot as usize].phase;
            match phase {
                Phase::Backoff => {
                    // Backoff expired: rerun under a fresh TMF transaction.
                    begin(&mut next, slot);
                }
                Phase::Running | Phase::Waiting => {
                    let script = &cfg.scripts[slot as usize];
                    let pc = st.slots[slot as usize].pc as usize;
                    // The doomed fail-fast check heads both the DP lock
                    // path and the TMF commit.
                    if st.slots[slot as usize].doomed {
                        abort_and_retry(&mut next, cfg, slot);
                        return finish(st, next, violations);
                    }
                    if pc >= script.len() {
                        // Commit. TMF re-checks the doom flag (mirrored
                        // above); committing releases everything and frees
                        // the admission slot.
                        if next.slots[slot as usize].doomed {
                            violations
                                .push(("doomed-commit", format!("T{slot} committed while doomed")));
                        }
                        next.release_all(slot);
                        next.slots[slot as usize].phase = Phase::Committed;
                        release_gate_slot(&mut next, cfg);
                        return finish(st, next, violations);
                    }
                    let (item, mode) = script[pc];
                    match acquire(&mut next, cfg, slot, item, mode, &mut violations) {
                        AcquireOutcome::Granted => {
                            next.slots[slot as usize].phase = Phase::Running;
                            next.slots[slot as usize].pc += 1;
                        }
                        AcquireOutcome::Conflict { holder } => {
                            match wait(&mut next, cfg, slot, holder, item, mode, &mut violations) {
                                WaitOutcome::Waiting => {
                                    next.slots[slot as usize].phase = Phase::Waiting;
                                }
                                WaitOutcome::Deadlock { victim } => {
                                    if victim == slot {
                                        // `DpError::Deadlock` propagates to
                                        // this client, which aborts and
                                        // retries.
                                        abort_and_retry(&mut next, cfg, slot);
                                    } else {
                                        // Doom the younger victim at the
                                        // TMF and keep this (older)
                                        // requester politely waiting. The
                                        // DropDoom mutation loses exactly
                                        // this edge.
                                        if cfg.mutation != Mutation::DropDoom {
                                            next.slots[victim as usize].doomed = true;
                                        }
                                        next.slots[slot as usize].phase = Phase::Waiting;
                                    }
                                }
                            }
                        }
                    }
                }
                Phase::Unarrived | Phase::Queued | Phase::Committed | Phase::GaveUp => {
                    return None;
                }
            }
        }
    }
    finish(st, next, violations)
}

/// Canonicalize the successor, run the per-state invariants, and filter
/// stutter steps (a transition that leaves the canonical state unchanged
/// is not a transition).
fn finish(st: &St, mut next: St, mut violations: Vec<(&'static str, String)>) -> Option<Applied> {
    next.canonicalize();
    if next == *st && violations.is_empty() {
        return None;
    }
    state_invariants(&next, &mut violations);
    Some(Applied { next, violations })
}

/// Invariants of every reachable state (not just quiescent ones).
fn state_invariants(st: &St, violations: &mut Vec<(&'static str, String)>) {
    // Serializability: with strict 2PL (every effect under a lock held to
    // commit/abort), conflict-serializability of committed effects is
    // exactly "no two live transactions hold incompatible locks on the
    // same item".
    for (i, &(s1, it1, m1)) in st.held.iter().enumerate() {
        for &(s2, it2, m2) in &st.held[i + 1..] {
            if s1 != s2 && it1 == it2 && !m1.compatible(m2) {
                violations.push((
                    "serializability",
                    format!(
                        "T{s1} ({m1:?}) and T{s2} ({m2:?}) both hold item {it1}: \
                         incompatible simultaneous holds break 2PL \
                         conflict-serializability"
                    ),
                ));
            }
        }
    }
    // Lock state must belong to live transactions only.
    for &(s, item, _) in st.held.iter().chain(st.waiters.iter()) {
        if !st.slots[s as usize].live() {
            violations.push((
                "drain",
                format!(
                    "T{s} ({:?}) still appears in the lock table / waiter queue \
                     for item {item}",
                    st.slots[s as usize].phase
                ),
            ));
        }
    }
    for &(w, h) in &st.waits_for {
        if !st.slots[w as usize].live() || !st.slots[h as usize].live() {
            violations.push((
                "drain",
                format!("stale waits-for edge T{w}→T{h} references a dead transaction"),
            ));
        }
    }
}

/// Invariants of a quiescent state (no enabled actions).
fn quiescent_invariants(st: &St, violations: &mut Vec<(&'static str, String)>) {
    for (i, s) in st.slots.iter().enumerate() {
        if !matches!(s.phase, Phase::Committed | Phase::GaveUp) {
            violations.push((
                "liveness-stuck",
                format!(
                    "quiescent state leaves T{i} in {:?} (pc {}, attempt {}): \
                     stuck waiter or lost wakeup",
                    s.phase, s.pc, s.attempt
                ),
            ));
        }
    }
    if !st.held.is_empty() || !st.waiters.is_empty() || !st.waits_for.is_empty() {
        violations.push((
            "drain",
            format!(
                "quiescent state leaks lock state: {} held, {} waiting, {} edges",
                st.held.len(),
                st.waiters.len(),
                st.waits_for.len()
            ),
        ));
    }
    if !st.gate.is_empty() || st.inflight != 0 {
        violations.push((
            "drain",
            format!(
                "quiescent state leaks admission state: {} queued, {} in flight",
                st.gate.len(),
                st.inflight
            ),
        ));
    }
}

// ----------------------------------------------------------------------
// Exploration
// ----------------------------------------------------------------------

/// All actions, in the deterministic enumeration order.
fn all_actions(cfg: &LockModelConfig) -> Vec<Act> {
    let mut acts = Vec::new();
    for s in 0..cfg.txns as u8 {
        acts.push(Act::Arrive(s));
        acts.push(Act::Poll(s));
        acts.push(Act::Timeout(s));
    }
    acts
}

/// Exhaustively explore every interleaving of the configuration by BFS
/// over canonical states. Deterministic: state discovery order, violation
/// order, and all counts depend only on `cfg`.
pub fn explore(cfg: &LockModelConfig) -> Exploration {
    assert_eq!(cfg.scripts.len(), cfg.txns, "one script per slot");
    assert!(cfg.max_inflight > 0, "admission gate needs capacity");
    let acts = all_actions(cfg);
    let mut out = Exploration::default();

    // Interned states: canonical state -> dense index.
    let mut index: HashMap<St, u32> = HashMap::new();
    let mut states: Vec<St> = Vec::new();
    // BFS parent pointers for schedule reconstruction.
    let mut parent: Vec<Option<(u32, Act)>> = Vec::new();
    // Explored edges, for path counting.
    let mut edges: Vec<Vec<u32>> = Vec::new();
    let mut quiescent: Vec<bool> = Vec::new();

    let mut root = St::initial(cfg);
    root.canonicalize();
    index.insert(root.clone(), 0);
    states.push(root);
    parent.push(None);
    edges.push(Vec::new());
    quiescent.push(false);

    let mut seen_invariants: Vec<&'static str> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::from([0u32]);
    while let Some(at) = queue.pop_front() {
        let st = states[at as usize].clone();
        let mut enabled = 0usize;
        for &act in &acts {
            let Some(applied) = apply(&st, cfg, act) else {
                continue;
            };
            enabled += 1;
            out.transitions += 1;
            for (invariant, detail) in &applied.violations {
                out.violation_count += 1;
                if !seen_invariants.contains(invariant) {
                    seen_invariants.push(invariant);
                    let mut schedule = reconstruct(&parent, at);
                    schedule.push(act);
                    out.violations.push(Violation {
                        invariant,
                        detail: detail.clone(),
                        schedule,
                    });
                }
            }
            if !applied.violations.is_empty() {
                // A violating transition is a counterexample, not a state
                // to build on: stop expanding past it.
                continue;
            }
            let next_idx = match index.get(&applied.next) {
                Some(&i) => i,
                None => {
                    let i = states.len() as u32;
                    index.insert(applied.next.clone(), i);
                    states.push(applied.next);
                    parent.push(Some((at, act)));
                    edges.push(Vec::new());
                    quiescent.push(false);
                    queue.push_back(i);
                    i
                }
            };
            edges[at as usize].push(next_idx);
        }
        if enabled == 0 {
            quiescent[at as usize] = true;
            out.terminals += 1;
            if st.slots.iter().any(|s| s.phase == Phase::GaveUp) {
                out.gave_up_terminals += 1;
            }
            let mut vs = Vec::new();
            quiescent_invariants(&st, &mut vs);
            for (invariant, detail) in vs {
                out.violation_count += 1;
                if !seen_invariants.contains(&invariant) {
                    seen_invariants.push(invariant);
                    out.violations.push(Violation {
                        invariant,
                        detail,
                        schedule: reconstruct(&parent, at),
                    });
                }
            }
        }
    }
    out.states = states.len() as u64;
    out.schedules = count_schedules(&edges, &quiescent, &mut out.violations);
    out
}

/// Rebuild the action path from the root to `at` via BFS parent pointers.
fn reconstruct(parent: &[Option<(u32, Act)>], mut at: u32) -> Vec<Act> {
    let mut acts = Vec::new();
    while let Some((prev, act)) = parent[at as usize] {
        acts.push(act);
        at = prev;
    }
    acts.reverse();
    acts
}

/// Count distinct root-to-quiescence paths through the explored graph by
/// DP in topological order. The graph must be acyclic — begin ranks,
/// attempt counters and script pcs are monotone along every path — and a
/// cycle would mean a livelock (an infinite schedule making no progress),
/// reported as its own violation.
fn count_schedules(edges: &[Vec<u32>], quiescent: &[bool], violations: &mut Vec<Violation>) -> u64 {
    let n = edges.len();
    let mut indeg = vec![0u32; n];
    for outs in edges {
        for &to in outs {
            indeg[to as usize] += 1;
        }
    }
    let mut paths = vec![0u128; n];
    paths[0] = 1;
    let mut ready: VecDeque<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
    let mut visited = 0usize;
    let mut total: u128 = 0;
    while let Some(at) = ready.pop_front() {
        visited += 1;
        if quiescent[at as usize] {
            total = total.saturating_add(paths[at as usize]);
        }
        for &to in &edges[at as usize] {
            paths[to as usize] = paths[to as usize].saturating_add(paths[at as usize]);
            indeg[to as usize] -= 1;
            if indeg[to as usize] == 0 {
                ready.push_back(to);
            }
        }
    }
    if visited != n {
        violations.push(Violation {
            invariant: "liveness-livelock",
            detail: format!(
                "{} states sit on a cycle in the canonical state graph: some \
                 schedule loops forever without progress",
                n - visited
            ),
            schedule: Vec::new(),
        });
    }
    u64::try_from(total).unwrap_or(u64::MAX)
}

/// Re-execute an exact action sequence from the initial state, returning
/// every invariant violation it raises — the replay half of a pinned
/// counterexample. Returns `Err` if the schedule takes a disabled action.
pub fn replay(cfg: &LockModelConfig, schedule: &[Act]) -> Result<Vec<Violation>, String> {
    let mut st = St::initial(cfg);
    st.canonicalize();
    let mut out = Vec::new();
    for (i, &act) in schedule.iter().enumerate() {
        let Some(applied) = apply(&st, cfg, act) else {
            return Err(format!("step {i}: action {act} is not enabled"));
        };
        for (invariant, detail) in applied.violations {
            out.push(Violation {
                invariant,
                detail,
                schedule: schedule[..=i].to_vec(),
            });
        }
        st = applied.next;
    }
    Ok(out)
}

/// Render a schedule compactly: `Arrive(T0) Poll(T0) Poll(T1) …`.
pub fn format_schedule(schedule: &[Act]) -> String {
    let parts: Vec<String> = schedule.iter().map(|a| a.to_string()).collect();
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_config_is_clean_and_large() {
        let ex = explore(&LockModelConfig::cycle());
        assert!(ex.violations.is_empty(), "{:?}", ex.violations.first());
        // Exact pins: exploration is deterministic, so these only change
        // when the model (or the mirrored protocol) changes — and then
        // lint.toml's [model] floors must be re-measured too.
        assert_eq!(ex.states, 5_456);
        assert_eq!(ex.transitions, 12_525);
        assert_eq!(ex.schedules, 32_055_282);
        assert_eq!(ex.terminals, 13);
        // Strong liveness at default bounds: every transaction commits —
        // no schedule exhausts a retry budget.
        assert_eq!(ex.gave_up_terminals, 0);
    }

    #[test]
    fn convoy_config_is_clean() {
        let ex = explore(&LockModelConfig::convoy());
        assert!(ex.violations.is_empty(), "{:?}", ex.violations.first());
        assert_eq!(ex.states, 1_046);
        assert_eq!(ex.schedules, 199_836);
        assert_eq!(ex.gave_up_terminals, 0);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore(&LockModelConfig::cycle());
        let b = explore(&LockModelConfig::cycle());
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.terminals, b.terminals);
    }

    /// The three pinned mutation counterexamples. Each is the BFS-minimal
    /// schedule, asserted as an exact string (the contention analogue of
    /// the reply-cache `cache=0` double-apply pin) and replayed.
    fn pinned_counterexample(cfg: &LockModelConfig, invariant: &str, want_schedule: &str) {
        let ex = explore(cfg);
        let v = ex
            .violations
            .iter()
            .find(|v| v.invariant == invariant)
            .unwrap_or_else(|| panic!("mutation {:?} must break `{invariant}`", cfg.mutation));
        assert_eq!(format_schedule(&v.schedule), want_schedule);
        let replayed = replay(cfg, &v.schedule).expect("pinned schedule replays");
        assert!(
            replayed.iter().any(|r| r.invariant == invariant),
            "replay must reproduce `{invariant}`, got {replayed:?}"
        );
    }

    #[test]
    fn overtake_mutation_breaks_fifo() {
        // T0 holds item 0 and waits on T1's hold of item 1; T1 queues
        // behind T0 on item 0; T2 then barges straight past queued T1.
        pinned_counterexample(
            &LockModelConfig {
                mutation: Mutation::OvertakeQueue,
                ..LockModelConfig::convoy()
            },
            "fifo-no-overtake",
            "Arrive(T0) Poll(T0) Poll(T0) Arrive(T1) Poll(T1) Poll(T0) Arrive(T2) Poll(T2)",
        );
    }

    #[test]
    fn oldest_victim_mutation_breaks_victim_choice() {
        // The rotated scripts close the 3-cycle T2→T0→T1; the mutated
        // policy shoots T0 (rank 0, the oldest) instead of T2 (rank 2).
        pinned_counterexample(
            &LockModelConfig {
                mutation: Mutation::OldestVictim,
                ..LockModelConfig::cycle()
            },
            "youngest-victim",
            "Arrive(T0) Poll(T0) Arrive(T1) Poll(T1) Poll(T0) Arrive(T2) Poll(T2) \
             Poll(T1) Poll(T2)",
        );
    }

    #[test]
    fn drop_doom_mutation_revictimizes_the_cycle() {
        // The same 3-cycle closes, T2 is chosen — but never doomed, so it
        // keeps waiting, the cycle re-forms, and detection picks T2 again.
        pinned_counterexample(
            &LockModelConfig {
                mutation: Mutation::DropDoom,
                ..LockModelConfig::cycle()
            },
            "one-victim-per-cycle",
            "Arrive(T0) Poll(T0) Arrive(T1) Poll(T1) Poll(T0) Arrive(T2) Poll(T2) \
             Poll(T2) Poll(T1) Poll(T2)",
        );
    }

    #[test]
    fn healthy_protocol_is_clean_on_the_mutant_schedules() {
        // The drop-doom counterexample's action sequence is also enabled
        // under the faithful protocol (same prefix up to the second
        // victimization) — and there it raises nothing.
        let cfg = LockModelConfig::cycle();
        let schedule = [
            Act::Arrive(0),
            Act::Poll(0),
            Act::Arrive(1),
            Act::Poll(1),
            Act::Poll(0),
            Act::Arrive(2),
            Act::Poll(2),
            Act::Poll(2),
            Act::Poll(1),
            Act::Poll(2),
        ];
        let replayed = replay(&cfg, &schedule).expect("schedule enabled under healthy protocol");
        assert!(
            replayed.is_empty(),
            "healthy replay must be clean: {replayed:?}"
        );
    }

    #[test]
    fn replay_rejects_disabled_actions() {
        let cfg = LockModelConfig::cycle();
        // Polling a slot that never arrived is not an enabled action.
        assert!(replay(&cfg, &[Act::Poll(0)]).is_err());
    }

    #[test]
    fn format_schedule_is_replay_shaped() {
        let s = format_schedule(&[Act::Arrive(0), Act::Poll(0), Act::Timeout(1)]);
        assert_eq!(s, "Arrive(T0) Poll(T0) Timeout(T1)");
    }
}
