//! Bounded explicit-state model checking of the FS-DP recovery protocol.
//!
//! PR 2 added the protocol machinery the paper's FS-DP interface needs to
//! survive a lossy bus and server crashes: sync IDs with a bounded
//! per-opener reply cache (duplicate suppression), bounded exponential
//! backoff with retries reusing the sync ID, backup takeover via path
//! switch, and Subset Control Block rebuild resuming after the last
//! confirmed key. The chaos suite samples that state space with 8 seeds;
//! this module *exhausts* it, up to a bounded number of injected faults per
//! schedule.
//!
//! Two small-step models mirror `crates/fs/src/lib.rs::send`,
//! `crates/fs/src/sqlapi.rs::send_redrive` and
//! `crates/dp/src/lib.rs::handle_sync` closely enough that every branch of
//! the real code has a counterpart here:
//!
//! * the **scan model** — a `GET^FIRST` / `GET^NEXT` continuation chain
//!   over `keys` rows, checking the client observes every key exactly once
//!   in order, across drops, duplicates, delays and mid-scan takeover
//!   (`BadSubset` → rebuild after the last confirmed key);
//! * the **update model** — `keys` point updates in one transaction
//!   followed by commit, checking committed effects are exactly-once (the
//!   reply cache suppresses re-execution after a lost reply; TMF dooms the
//!   transaction when its writes die with a crashed primary).
//!
//! Both also check the reply cache never exceeds its configured bound.
//! Schedules are enumerated by deterministic DFS over per-exchange fault
//! choices — no randomness anywhere, so a reported violation is replayable
//! from its printed schedule.

use std::collections::VecDeque;

/// What the fault plane does to one FS-DP exchange (mirrors the `Fault`
/// enum in `crates/msg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Unperturbed request/reply.
    Deliver,
    /// Request lost before the server saw it; requester times out.
    DropRequest,
    /// Server executed, reply lost; requester times out.
    DropReply,
    /// Request delivered twice (second execution must be suppressed).
    Duplicate,
    /// Delivery delayed (timing-only fault; state-equivalent to Deliver,
    /// kept so schedule counts match the chaos plane's action space).
    Delay,
    /// The primary's CPU fails before handling; its volatile state (reply
    /// cache, SCBs) dies with it. The path switch brings up a backup.
    CpuDown,
    /// The primary's CPU crashes and the same process **restarts in
    /// place**, replaying the audit trail: volatile state (reply cache,
    /// SCBs) is gone, and recovery UNDOes the in-flight transaction's
    /// uncommitted applies (it is doomed) before service resumes.
    Restart,
}

/// The faults the DFS branches over (everything but `Deliver`).
pub const FAULTS: [Action; 6] = [
    Action::DropRequest,
    Action::DropReply,
    Action::Duplicate,
    Action::Delay,
    Action::CpuDown,
    Action::Restart,
];

/// Model parameters.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Keys scanned / point updates applied.
    pub keys: u64,
    /// Maximum injected faults per schedule (the bounded depth).
    pub max_faults: usize,
    /// Reply-cache capacity per opener (the repo's REPLY_CACHE_PER_OPENER).
    pub cache: usize,
    /// Client retry budget per logical request (RetryPolicy::max_retries).
    pub max_retries: u32,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            keys: 6,
            max_faults: 3,
            cache: 8,
            max_retries: 6,
        }
    }
}

/// An invariant violation, with the schedule that reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: &'static str,
    /// What exactly went wrong.
    pub detail: String,
    /// Fault decisions per exchange index (exchanges past the end were
    /// delivered clean).
    pub schedule: Vec<Action>,
}

/// Result of exhaustively exploring one model.
#[derive(Debug, Default)]
pub struct Exploration {
    /// Schedules fully executed.
    pub schedules: u64,
    /// Most exchanges any schedule needed.
    pub max_exchanges: usize,
    /// Invariant violations (empty on a healthy protocol).
    pub violations: Vec<Violation>,
}

// ----------------------------------------------------------------------
// Shared server model
// ----------------------------------------------------------------------

/// One primary's volatile protocol state. Takeover replaces the whole
/// struct: the reply cache and SCB table die with the CPU, exactly as
/// `DpState` does in `crates/dp`.
#[derive(Debug, Clone, Default)]
struct ServerVolatile {
    /// `(sync seq, reply)` pairs, oldest first (mirrors `DpState::replies`
    /// for the single opener the model needs).
    replies: VecDeque<(u64, Reply)>,
    /// The open SCB: `Some(next key to produce)`.
    scb: Option<u64>,
}

impl ServerVolatile {
    /// Look up a retransmission; mirrors the head of `handle_sync`.
    fn cached(&self, seq: u64) -> Option<Reply> {
        self.replies
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, r)| r.clone())
    }

    /// Remember a reply, bounded; mirrors the tail of `handle_sync`.
    /// Capacity 0 disables the cache entirely (the negative-test knob).
    /// Returns the cache length after insertion for the boundedness check.
    fn remember(&mut self, seq: u64, reply: Reply, cap: usize) -> usize {
        if cap == 0 {
            return 0;
        }
        if self.replies.len() >= cap {
            self.replies.pop_front();
        }
        self.replies.push_back((seq, reply));
        self.replies.len()
    }
}

/// Server replies in the model (a collapsed `DpReply`).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Reply {
    /// A subset block: the key produced, whether the range is exhausted.
    Row { key: u64, done: bool },
    /// Unknown Subset Control Block (after takeover).
    BadSubset,
    /// A point update was applied.
    Applied,
}

/// What the client asked for.
#[derive(Debug, Clone, Copy)]
enum Request {
    /// `GET^FIRST` resuming strictly after `after` (0 = start of range).
    First { after: u64 },
    /// `GET^NEXT` continuation on the open SCB (the resume position is
    /// server-side state, not a request field — that is the point).
    Next,
    /// `UPDATE^POINT` on `key`.
    Update { key: u64 },
}

/// Outcome of one client-level request (after retries).
enum SendOutcome {
    Ok(Reply),
    /// Retries exhausted — the statement fails cleanly (`FsError::Unavailable`).
    Unavailable,
}

/// The deterministic schedule: a prefix of explicit decisions, `Deliver`
/// afterwards. Tracks how many exchanges were consulted.
struct Schedule<'a> {
    prefix: &'a [Action],
    consulted: usize,
}

impl<'a> Schedule<'a> {
    fn next(&mut self) -> Action {
        let a = self
            .prefix
            .get(self.consulted)
            .copied()
            .unwrap_or(Action::Deliver);
        self.consulted += 1;
        a
    }
}

// ----------------------------------------------------------------------
// Execution harness shared by both models
// ----------------------------------------------------------------------

/// Everything mutable during one schedule execution.
struct Run<'a> {
    cfg: ModelConfig,
    sched: Schedule<'a>,
    server: ServerVolatile,
    /// Durable per-key apply counts (survive takeover, as the disk does).
    applied: Vec<u64>,
    /// The in-flight transaction's undo log (mirrors the trail's audit
    /// records for the transaction): one entry per uncommitted apply, in
    /// order. Crash-restart recovery and abort discharge it in reverse.
    undo: Vec<u64>,
    /// Monotone sync sequence (retries reuse the current value).
    next_seq: u64,
    /// TMF doomed the transaction (a primary died holding its writes).
    doomed: bool,
    /// Largest reply-cache length ever observed.
    cache_high_water: usize,
    /// Exchange budget fuse — the model is finite, but a bug in the model
    /// itself must not hang the checker.
    exchanges_left: u32,
}

impl<'a> Run<'a> {
    fn new(cfg: ModelConfig, prefix: &'a [Action]) -> Run<'a> {
        Run {
            cfg,
            sched: Schedule {
                prefix,
                consulted: 0,
            },
            server: ServerVolatile::default(),
            applied: vec![0; cfg.keys as usize + 1],
            undo: Vec::new(),
            next_seq: 0,
            doomed: false,
            cache_high_water: 0,
            exchanges_left: 10_000,
        }
    }

    /// Server-side execution of one delivered request with sync ID `seq` —
    /// the model's `handle_sync` + `handle_request`.
    fn server_handle(&mut self, seq: u64, req: Request) -> Reply {
        if let Some(cached) = self.server.cached(seq) {
            return cached; // duplicate suppression: no re-execution
        }
        let reply = match req {
            Request::First { after } => {
                let key = after + 1;
                let done = key >= self.cfg.keys;
                self.server.scb = (!done).then_some(key + 1);
                self.applied[key as usize] += 1;
                Reply::Row { key, done }
            }
            Request::Next => match self.server.scb {
                None => Reply::BadSubset,
                Some(key) => {
                    let done = key >= self.cfg.keys;
                    self.server.scb = (!done).then_some(key + 1);
                    self.applied[key as usize] += 1;
                    Reply::Row { key, done }
                }
            },
            Request::Update { key } => {
                self.applied[key as usize] += 1;
                self.undo.push(key);
                Reply::Applied
            }
        };
        // BadSubset is answered statelessly in the real DP (the SCB lookup
        // itself failed); everything else goes through the reply cache.
        if reply != Reply::BadSubset {
            let len = self.server.remember(seq, reply.clone(), self.cfg.cache);
            self.cache_high_water = self.cache_high_water.max(len);
        }
        reply
    }

    /// Client-side send with retries — the model's `FileSystem::send`.
    /// `writes_in_flight`: whether a primary crash now strands uncommitted
    /// writes (dooming the transaction, TMF's CPU-failure rule).
    fn send(&mut self, req: Request, writes_in_flight: bool) -> Option<SendOutcome> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut attempt = 0u32;
        loop {
            if self.exchanges_left == 0 {
                return None; // model fuse blown — caller reports it
            }
            self.exchanges_left -= 1;
            match self.sched.next() {
                Action::Deliver | Action::Delay => {
                    return Some(SendOutcome::Ok(self.server_handle(seq, req)));
                }
                Action::Duplicate => {
                    // Two deliveries; the requester sees the second reply.
                    let _ = self.server_handle(seq, req);
                    return Some(SendOutcome::Ok(self.server_handle(seq, req)));
                }
                Action::DropRequest => {
                    // Nothing executed; fall through to the retry path.
                }
                Action::DropReply => {
                    // Executed server-side; only the answer was lost.
                    let _ = self.server_handle(seq, req);
                }
                Action::CpuDown => {
                    // The primary dies before handling: volatile state is
                    // gone. The path switch installs the backup (always
                    // present in the model, as in the process-pair design).
                    // If the dead primary held this transaction's writes,
                    // their undo died with it and TMF dooms the transaction.
                    self.server = ServerVolatile::default();
                    if writes_in_flight && self.applied.iter().any(|&n| n > 0) {
                        self.doomed = true;
                    }
                }
                Action::Restart => {
                    // Crash-restart in place: volatile state is gone AND
                    // recovery replays the trail — the in-flight
                    // transaction is a loser, so its uncommitted applies
                    // are UNDOne (reverse LSN order) before service
                    // resumes, and TMF dooms it.
                    self.server = ServerVolatile::default();
                    if !self.undo.is_empty() {
                        self.doomed = true;
                    }
                    self.rollback();
                }
            }
            // Timeout / down path: bounded retry with the same sync ID.
            attempt += 1;
            if attempt > self.cfg.max_retries {
                return Some(SendOutcome::Unavailable);
            }
        }
    }

    /// Discharge the undo log in reverse: recovery (or abort) rolls back
    /// every uncommitted apply the trail recorded.
    fn rollback(&mut self) {
        while let Some(key) = self.undo.pop() {
            self.applied[key as usize] = self.applied[key as usize].saturating_sub(1);
        }
    }
}

// ----------------------------------------------------------------------
// The two protocol models
// ----------------------------------------------------------------------

/// Outcome of one full schedule execution.
enum RunResult {
    Ok,
    Violation(&'static str, String),
}

/// `(result, exchanges consulted, cache high-water)` from one execution.
type RunOutput = (RunResult, usize, usize);

/// One scan-model execution: `GET^FIRST`, then `GET^NEXT` until done, with
/// the `send_redrive` rebuild on `BadSubset`. The invariant is checked on
/// the stream of keys the *client* observes.
fn run_scan(cfg: ModelConfig, prefix: &[Action]) -> RunOutput {
    let mut run = Run::new(cfg, prefix);
    let mut observed: Vec<u64> = Vec::new();
    let mut last_confirmed = 0u64;
    let mut phase_first = true;
    let mut finished = false;
    loop {
        let req = if phase_first {
            Request::First {
                after: last_confirmed,
            }
        } else {
            Request::Next
        };
        let Some(outcome) = run.send(req, false) else {
            return (
                RunResult::Violation("model-fuse", "exchange budget exhausted".into()),
                run.sched.consulted,
                run.cache_high_water,
            );
        };
        match outcome {
            SendOutcome::Ok(Reply::Row { key, done }) => {
                observed.push(key);
                last_confirmed = key;
                phase_first = false;
                if done {
                    finished = true;
                    break;
                }
            }
            SendOutcome::Ok(Reply::BadSubset) => {
                // Mid-scan takeover: rebuild the SCB, resuming strictly
                // after the last confirmed key (sqlapi::send_redrive).
                phase_first = true;
            }
            SendOutcome::Ok(Reply::Applied) => {
                return (
                    RunResult::Violation("protocol", "Applied reply to a scan request".into()),
                    run.sched.consulted,
                    run.cache_high_water,
                );
            }
            SendOutcome::Unavailable => break, // clean statement failure
        }
    }
    // Exactly-once, in-order delivery to the client: the observed stream
    // must be 1, 2, 3, … with no gap and no repeat; a completed scan must
    // have observed every key.
    for (i, &k) in observed.iter().enumerate() {
        if k != i as u64 + 1 {
            return (
                RunResult::Violation(
                    "scan-exactly-once",
                    format!("client observed {observed:?}; expected 1..=n prefix"),
                ),
                run.sched.consulted,
                run.cache_high_water,
            );
        }
    }
    if finished && observed.len() as u64 != cfg.keys {
        return (
            RunResult::Violation(
                "scan-complete",
                format!(
                    "scan reported done after {} of {} keys",
                    observed.len(),
                    cfg.keys
                ),
            ),
            run.sched.consulted,
            run.cache_high_water,
        );
    }
    (RunResult::Ok, run.sched.consulted, run.cache_high_water)
}

/// One update-model execution: `keys` point updates then commit. Checks
/// committed effects are exactly-once per acknowledged update.
fn run_update(cfg: ModelConfig, prefix: &[Action]) -> RunOutput {
    let mut run = Run::new(cfg, prefix);
    let mut acked: Vec<u64> = Vec::new();
    let mut failed = false;
    for key in 1..=cfg.keys {
        match run.send(Request::Update { key }, true) {
            Some(SendOutcome::Ok(Reply::Applied)) => acked.push(key),
            Some(SendOutcome::Ok(r)) => {
                return (
                    RunResult::Violation("protocol", format!("{r:?} reply to UPDATE^POINT")),
                    run.sched.consulted,
                    run.cache_high_water,
                );
            }
            Some(SendOutcome::Unavailable) => {
                failed = true;
                break;
            }
            None => {
                return (
                    RunResult::Violation("model-fuse", "exchange budget exhausted".into()),
                    run.sched.consulted,
                    run.cache_high_water,
                );
            }
        }
    }
    // Commit: doomed or failed transactions abort (undoing every apply);
    // otherwise the applies become durable.
    let committed = !run.doomed && !failed;
    if committed {
        for key in 1..=cfg.keys as usize {
            let n = run.applied[key];
            let want = u64::from(acked.contains(&(key as u64)));
            if n != want {
                return (
                    RunResult::Violation(
                        "update-exactly-once",
                        format!(
                            "key {key} applied {n} time(s) in a committed txn \
                             (acked: {}); duplicate suppression failed",
                            acked.contains(&(key as u64)),
                        ),
                    ),
                    run.sched.consulted,
                    run.cache_high_water,
                );
            }
        }
    } else {
        // Abort / crash-restart path: rolling back the remaining undo log
        // must leave zero net effect — a transaction that failed (or was
        // doomed by a restart's recovery) contributes nothing durable.
        run.rollback();
        for key in 1..=cfg.keys as usize {
            let n = run.applied[key];
            if n != 0 {
                return (
                    RunResult::Violation(
                        "abort-rollback",
                        format!(
                            "key {key} still applied {n} time(s) after an \
                             aborted txn's rollback; recovery UNDO leaked"
                        ),
                    ),
                    run.sched.consulted,
                    run.cache_high_water,
                );
            }
        }
    }
    (RunResult::Ok, run.sched.consulted, run.cache_high_water)
}

// ----------------------------------------------------------------------
// DFS schedule enumeration
// ----------------------------------------------------------------------

/// Exhaustively explore every schedule with at most `cfg.max_faults`
/// injected faults. Each schedule is executed exactly once: the canonical
/// prefix always ends with a fault, and exchanges past the prefix deliver
/// clean.
fn explore(cfg: ModelConfig, run_one: &dyn Fn(ModelConfig, &[Action]) -> RunOutput) -> Exploration {
    let mut out = Exploration::default();
    // Breadth-first, so a violation is always reported with a minimal
    // counterexample (fewest faults, earliest positions) first.
    let mut queue: VecDeque<Vec<Action>> = VecDeque::from([Vec::new()]);
    while let Some(prefix) = queue.pop_front() {
        let (result, exchanges, cache_high) = run_one(cfg, &prefix);
        out.schedules += 1;
        out.max_exchanges = out.max_exchanges.max(exchanges);
        if let RunResult::Violation(invariant, detail) = result {
            out.violations.push(Violation {
                invariant,
                detail,
                schedule: prefix.clone(),
            });
        }
        // The cache bound is an invariant of every state, not just final ones.
        if cache_high > cfg.cache.max(1) {
            out.violations.push(Violation {
                invariant: "cache-bounded",
                detail: format!(
                    "reply cache reached {cache_high} entries (bound {})",
                    cfg.cache
                ),
                schedule: prefix.clone(),
            });
        }
        let faults_used = prefix
            .iter()
            .filter(|a| !matches!(a, Action::Deliver))
            .count();
        if faults_used < cfg.max_faults {
            // Branch: inject one more fault at every exchange the clean
            // tail touched.
            for pos in prefix.len()..exchanges {
                for &fault in FAULTS.iter() {
                    let mut next = prefix.clone();
                    next.extend(std::iter::repeat_n(Action::Deliver, pos - prefix.len()));
                    next.push(fault);
                    queue.push_back(next);
                }
            }
        }
    }
    out
}

/// Explore the scan model.
pub fn check_scan(cfg: ModelConfig) -> Exploration {
    explore(cfg, &run_scan)
}

/// Explore the update model.
pub fn check_update(cfg: ModelConfig) -> Exploration {
    explore(cfg, &run_update)
}

/// Render a schedule compactly (`[Deliver ×2, DropReply, CpuDown]`).
pub fn format_schedule(schedule: &[Action]) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < schedule.len() {
        let a = schedule[i];
        let mut n = 1usize;
        while i + n < schedule.len() && schedule[i + n] == a {
            n += 1;
        }
        if n > 1 {
            parts.push(format!("{a:?} ×{n}"));
        } else {
            parts.push(format!("{a:?}"));
        }
        i += n;
    }
    format!("[{}]", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_protocol_has_no_violations_depth_2() {
        let cfg = ModelConfig {
            max_faults: 2,
            ..ModelConfig::default()
        };
        let scan = check_scan(cfg);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations.first());
        assert!(scan.schedules > 100);
        let upd = check_update(cfg);
        assert!(upd.violations.is_empty(), "{:?}", upd.violations.first());
        assert!(upd.schedules > 100);
    }

    #[test]
    fn full_depth_exceeds_ten_thousand_schedules() {
        let cfg = ModelConfig::default();
        let scan = check_scan(cfg);
        let upd = check_update(cfg);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations.first());
        assert!(upd.violations.is_empty(), "{:?}", upd.violations.first());
        assert!(
            scan.schedules + upd.schedules >= 10_000,
            "only {} schedules",
            scan.schedules + upd.schedules
        );
    }

    #[test]
    fn zero_reply_cache_reproduces_double_apply_deterministically() {
        let cfg = ModelConfig {
            cache: 0,
            max_faults: 1,
            ..ModelConfig::default()
        };
        let upd = check_update(cfg);
        let dup = upd
            .violations
            .iter()
            .find(|v| v.invariant == "update-exactly-once");
        let Some(dup) = dup else {
            unreachable!("cache=0 must produce a double apply: {:?}", upd.violations)
        };
        // Deterministic: the minimal schedule is a single dropped reply —
        // the server executed, the retry re-executed because nothing was
        // cached.
        assert_eq!(dup.schedule, vec![Action::DropReply]);
        // And a second run finds the identical counterexample.
        let again = check_update(cfg);
        let Some(dup2) = again
            .violations
            .iter()
            .find(|v| v.invariant == "update-exactly-once")
        else {
            unreachable!("determinism lost")
        };
        assert_eq!(dup2.schedule, dup.schedule);
    }

    #[test]
    fn crash_restart_schedules_are_explored_and_clean() {
        // Restart is a first-class fault: every ≤3-fault schedule that
        // includes a server crash-restart (volatile state wiped, recovery
        // rollback of the in-flight txn) must satisfy both invariants.
        assert!(FAULTS.contains(&Action::Restart));
        let with = check_update(ModelConfig::default());
        assert!(with.violations.is_empty(), "{:?}", with.violations.first());
        // A single restart mid-update dooms the txn, so the txn aborts and
        // rollback must leave zero net effect — still violation-free even
        // with the reply cache disabled (restart wipes it anyway).
        let cfg = ModelConfig {
            cache: 0,
            max_faults: 1,
            ..ModelConfig::default()
        };
        let upd = check_update(cfg);
        assert!(upd
            .violations
            .iter()
            .all(|v| v.invariant != "abort-rollback"));
    }

    #[test]
    fn schedule_counts_are_deterministic() {
        let cfg = ModelConfig {
            max_faults: 2,
            ..ModelConfig::default()
        };
        let a = check_scan(cfg);
        let b = check_scan(cfg);
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.max_exchanges, b.max_exchanges);
    }

    #[test]
    fn format_schedule_compresses_runs() {
        let s = format_schedule(&[
            Action::Deliver,
            Action::Deliver,
            Action::DropReply,
            Action::CpuDown,
        ]);
        assert_eq!(s, "[Deliver ×2, DropReply, CpuDown]");
    }
}
