//! A lightweight Rust tokenizer — just enough lexical fidelity for the
//! rule engine.
//!
//! The linter must never be fooled by the word `panic` inside a comment, a
//! string literal, or a doc example, so the lexer does real comment and
//! string-literal scanning (nested block comments, raw strings with any
//! number of `#`s, byte strings, char literals vs. lifetimes). It does
//! *not* attempt full Rust grammar — the rules work on token patterns plus
//! brace depth, which is exactly what this produces.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// String literal (`"…"`, `r#"…"#`, `b"…"`); `text` holds the contents
    /// without quotes or escapes processing.
    Str,
    /// Numeric literal.
    Num,
    /// A single punctuation character (`{`, `}`, `=`, `>`, `!`, …).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme kind.
    pub kind: TokKind,
    /// Token text (for `Str`, the unquoted raw contents).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Is this an identifier equal to `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token equal to `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Tokenize Rust source. Comments and whitespace are discarded; everything
/// else becomes a [`Tok`]. The lexer is resilient: malformed input degrades
/// to punctuation tokens rather than failing.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Nested block comments, per Rust.
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (s, ni, nl) = scan_string(&b, i + 1, line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: s,
                    line: start_line,
                });
                i = ni;
                line = nl;
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let start_line = line;
                let (s, ni, nl) = scan_prefixed_string(&b, i, line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: s,
                    line: start_line,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                if is_lifetime(&b, i) {
                    let mut j = i + 1;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    i = j; // lifetimes carry no rule signal; drop them
                } else {
                    let (ni, nl) = scan_char_literal(&b, i + 1, line);
                    i = ni;
                    line = nl;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_' || b[j] == '.') {
                    // Stop at `..` (range) — only consume a dot followed by a digit.
                    if b[j] == '.' && !(j + 1 < n && b[j + 1].is_ascii_digit()) {
                        break;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Scan a normal `"…"` body starting just after the opening quote.
fn scan_string(b: &[char], mut i: usize, mut line: usize) -> (String, usize, usize) {
    let mut s = String::new();
    while i < b.len() {
        match b[i] {
            '\\' if i + 1 < b.len() => {
                if b[i + 1] == '\n' {
                    line += 1;
                }
                s.push(b[i + 1]);
                i += 2;
            }
            '"' => return (s, i + 1, line),
            '\n' => {
                line += 1;
                s.push('\n');
                i += 1;
            }
            c => {
                s.push(c);
                i += 1;
            }
        }
    }
    (s, i, line)
}

/// Does `r`/`b` at `i` start a raw/byte string (`r"`, `r#`, `b"`, `br"`, `rb"`)?
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (`br`, `rb`), then `#`* then `"`.
    for _ in 0..2 {
        if j < b.len() && (b[j] == 'r' || b[j] == 'b') {
            j += 1;
        }
    }
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j > i && j < b.len() && b[j] == '"'
}

/// Scan a raw or byte string starting at its prefix letter.
fn scan_prefixed_string(b: &[char], mut i: usize, mut line: usize) -> (String, usize, usize) {
    let mut raw = false;
    while i < b.len() && (b[i] == 'r' || b[i] == 'b') {
        raw |= b[i] == 'r';
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    if !raw {
        return scan_string(b, i, line);
    }
    let mut s = String::new();
    while i < b.len() {
        if b[i] == '"' {
            // Closed only when followed by `hashes` `#`s.
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == '#' && seen < hashes {
                j += 1;
                seen += 1;
            }
            if seen == hashes {
                return (s, j, line);
            }
        }
        if b[i] == '\n' {
            line += 1;
        }
        s.push(b[i]);
        i += 1;
    }
    (s, i, line)
}

/// A `'` starts a lifetime when followed by ident chars that are *not*
/// closed by another `'` (i.e. `'a` / `'static`, not `'a'`).
fn is_lifetime(b: &[char], i: usize) -> bool {
    let n = b.len();
    if i + 1 >= n {
        return false;
    }
    let c1 = b[i + 1];
    if !(c1.is_alphabetic() || c1 == '_') {
        return false; // '\n', '0', … — char literal or stray quote
    }
    // `'x'` is a char literal; `'xy` or `'x,` is a lifetime.
    !(i + 2 < n && b[i + 2] == '\'')
}

/// Scan a char literal body starting just after the opening quote.
fn scan_char_literal(b: &[char], mut i: usize, mut line: usize) -> (usize, usize) {
    while i < b.len() {
        match b[i] {
            '\\' if i + 1 < b.len() => i += 2,
            '\'' => return (i + 1, line),
            '\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_idents() {
        let src = r##"
            // Instant::now in a comment
            /* panic! in /* nested */ block */
            let s = "Instant::now()";
            let r = r#"panic!("x")"#;
            let c = 'p';
            fn f<'a>(x: &'a str) {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(ids.contains(&"f".to_string()));
    }

    #[test]
    fn string_tokens_carry_contents() {
        let toks = tokenize(r#"let l = "GET^FIRST^VSBB";"#);
        let s: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text, "GET^FIRST^VSBB");
    }

    #[test]
    fn line_numbers_advance() {
        let toks = tokenize("a\nb\n\nc");
        let lines: Vec<_> = toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 4usize)]
        );
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let ids = idents("fn g<'long>(c: char) { let a = 'x'; let b = '\\n'; }");
        assert!(!ids.contains(&"long".to_string()));
        // `'x'` is a char literal, not the lifetime `'x` + stray quote.
        assert!(!ids.contains(&"x".to_string()));
        assert!(ids.contains(&"a".to_string()));
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let toks = tokenize(r###"let s = r##"quote " and "# inside"##;"###);
        let s: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(s.len(), 1);
        assert!(s[0].text.contains("quote \" and \"# inside"));
    }
}
