//! The `nsql-lint` command-line driver.
//!
//! ```text
//! nsql-lint check [--root DIR] [--config FILE] [--update-ratchet]
//! nsql-lint check-protocol [--keys N] [--depth N] [--cache N] [--retries N]
//! nsql-lint check-locks [--config FILE] [--mutation NAME] [--retries N] [--timeouts N]
//! ```
//!
//! `check` lints every `.rs` file in the workspace against `lint.toml` and
//! exits non-zero on any violation. `check-protocol` exhaustively explores
//! fault schedules against the FS-DP protocol model and exits non-zero if
//! any invariant breaks. `check-locks` does the same for the lock-manager /
//! deadlock / retry protocol; with `--mutation` it instead *demands* a
//! counterexample from a deliberately weakened mechanism.

use nsql_lint::config::Config;
use nsql_lint::lockmodel::{self, LockModelConfig, Mutation};
use nsql_lint::model::{self, ModelConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("check-protocol") => cmd_check_protocol(&args[1..]),
        Some("check-locks") => cmd_check_locks(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("usage: nsql-lint <check|check-protocol|check-locks> [options]");
            eprintln!("  check           lint the workspace against lint.toml");
            eprintln!("    --root DIR          workspace root (default: .)");
            eprintln!("    --config FILE       config path (default: <root>/lint.toml)");
            eprintln!("    --update-ratchet    rewrite [ratchet] with current counts");
            eprintln!("  check-protocol  model-check the FS-DP fault-tolerance protocol");
            eprintln!("    --keys N            rows per scan/update model (default 6)");
            eprintln!("    --depth N           max injected faults per schedule (default 3)");
            eprintln!("    --cache N           reply-cache entries per opener (default 8)");
            eprintln!("    --retries N         send retries before giving up (default 6)");
            eprintln!("  check-locks     model-check the lock/deadlock/retry protocol");
            eprintln!(
                "    --config FILE       lint.toml with [model] floors (default: ./lint.toml)"
            );
            eprintln!("    --retries N         client retries per slot (default per config)");
            eprintln!("    --timeouts N        adversary timeout budget (default per config)");
            eprintln!("    --mutation NAME     weaken one mechanism and demand a counterexample");
            eprintln!("                        (overtake | oldest-victim | drop-doom)");
            return if args.is_empty() {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            };
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try --help)")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("nsql-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Parse `--flag value` pairs plus boolean flags from `args`.
fn parse_opts(
    args: &[String],
    valued: &[&str],
    boolean: &[&str],
) -> Result<std::collections::BTreeMap<String, String>, String> {
    let mut out = std::collections::BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if boolean.contains(&arg.as_str()) {
            out.insert(arg.clone(), "true".to_string());
        } else if valued.contains(&arg.as_str()) {
            let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
            out.insert(arg.clone(), v.clone());
        } else {
            return Err(format!("unknown option `{arg}`"));
        }
    }
    Ok(out)
}

fn parse_num(
    opts: &std::collections::BTreeMap<String, String>,
    key: &str,
    default: u64,
) -> Result<u64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{key} expects an integer, got `{v}`")),
    }
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args, &["--root", "--config"], &["--update-ratchet"])?;
    let root = PathBuf::from(opts.get("--root").map(String::as_str).unwrap_or("."));
    let config_path = opts
        .get("--config")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("lint.toml"));
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let cfg = Config::parse(&text).map_err(|e| e.to_string())?;
    let report = nsql_lint::check_workspace(&root, &cfg)
        .map_err(|e| format!("scanning {}: {e}", root.display()))?;

    if opts.contains_key("--update-ratchet") {
        let mut buckets = report.bucket_counts.clone();
        // Keep hard-zero buckets pinned at zero even if currently clean —
        // the ratchet records policy, not just observation.
        for (k, &ceiling) in &cfg.ratchet {
            if ceiling == 0 {
                buckets.insert(k.clone(), 0);
            }
        }
        let new_section = Config::ratchet_lines(&buckets);
        let updated = replace_ratchet_section(&text, &new_section)?;
        std::fs::write(&config_path, updated)
            .map_err(|e| format!("cannot write {}: {e}", config_path.display()))?;
        println!(
            "nsql-lint: [ratchet] rewritten with {} buckets in {}",
            buckets.len(),
            config_path.display()
        );
    }

    let mut diags = report.diags.clone();
    diags.extend(nsql_lint::zero_ratchet_sites(&root, &cfg, &report));
    diags.extend(nsql_lint::discard_ratchet_sites(&root, &cfg, &report));
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags.dedup_by(|a, b| (&a.file, a.line, a.rule, &a.msg) == (&b.file, b.line, b.rule, &b.msg));

    if diags.is_empty() {
        println!(
            "nsql-lint: OK — {} files, {} ratchet buckets, 0 violations",
            report.files,
            report.bucket_counts.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!(
            "nsql-lint: FAIL — {} violation(s) across {} files scanned",
            diags.len(),
            report.files
        );
        Ok(ExitCode::FAILURE)
    }
}

/// Replace the body of the `[ratchet]` section in `text` with `new_body`,
/// preserving everything before the header and any later section.
fn replace_ratchet_section(text: &str, new_body: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut in_ratchet = false;
    let mut replaced = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed == "[ratchet]" {
            out.push_str(line);
            out.push('\n');
            out.push_str(new_body);
            in_ratchet = true;
            replaced = true;
            continue;
        }
        if in_ratchet {
            if trimmed.starts_with('[') {
                in_ratchet = false; // a following section resumes copying
            } else {
                continue; // drop the old ratchet body
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    if !replaced {
        return Err("lint.toml has no [ratchet] section to update".to_string());
    }
    Ok(out)
}

fn cmd_check_protocol(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args, &["--keys", "--depth", "--cache", "--retries"], &[])?;
    let d = ModelConfig::default();
    let cfg = ModelConfig {
        keys: parse_num(&opts, "--keys", d.keys)?,
        max_faults: parse_num(&opts, "--depth", d.max_faults as u64)? as usize,
        cache: parse_num(&opts, "--cache", d.cache as u64)? as usize,
        max_retries: parse_num(&opts, "--retries", u64::from(d.max_retries))? as u32,
    };
    println!(
        "nsql-lint check-protocol: keys={} depth={} cache={} retries={}",
        cfg.keys, cfg.max_faults, cfg.cache, cfg.max_retries
    );

    let scan = model::check_scan(cfg);
    println!(
        "  scan model:   {} schedules explored (max {} exchanges), {} violation(s)",
        scan.schedules,
        scan.max_exchanges,
        scan.violations.len()
    );
    let update = model::check_update(cfg);
    println!(
        "  update model: {} schedules explored (max {} exchanges), {} violation(s)",
        update.schedules,
        update.max_exchanges,
        update.violations.len()
    );
    println!(
        "  total:        {} schedules",
        scan.schedules + update.schedules
    );

    let mut failed = false;
    for v in scan.violations.iter().chain(update.violations.iter()) {
        failed = true;
        eprintln!(
            "VIOLATION [{}]: {}\n  schedule: {}",
            v.invariant,
            v.detail,
            model::format_schedule(&v.schedule)
        );
    }
    if failed {
        eprintln!("nsql-lint check-protocol: FAIL");
        Ok(ExitCode::FAILURE)
    } else {
        println!("nsql-lint check-protocol: OK — all invariants hold on every schedule");
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_check_locks(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(
        args,
        &["--config", "--retries", "--timeouts", "--mutation"],
        &[],
    )?;
    let mutation = match opts.get("--mutation") {
        None => Mutation::None,
        Some(name) => Mutation::parse(name).ok_or_else(|| {
            format!("unknown mutation `{name}` (overtake | oldest-victim | drop-doom)")
        })?,
    };
    // Coverage floors come from lint.toml; a missing file means no floor
    // (mutation runs and ad-hoc invocations outside the workspace root).
    let config_path = PathBuf::from(
        opts.get("--config")
            .map(String::as_str)
            .unwrap_or("lint.toml"),
    );
    let floors = std::fs::read_to_string(&config_path)
        .ok()
        .map(|text| Config::parse(&text).map_err(|e| e.to_string()))
        .transpose()?;

    let mut configs = vec![
        ("cycle", LockModelConfig::cycle()),
        ("convoy", LockModelConfig::convoy()),
    ];
    for (_, cfg) in &mut configs {
        cfg.mutation = mutation;
        if let Some(r) = opts.get("--retries") {
            cfg.max_retries = r
                .parse()
                .map_err(|_| format!("--retries expects an integer, got `{r}`"))?;
        }
        if let Some(t) = opts.get("--timeouts") {
            cfg.max_timeouts = t
                .parse()
                .map_err(|_| format!("--timeouts expects an integer, got `{t}`"))?;
        }
    }
    println!(
        "nsql-lint check-locks: mutation={mutation:?} retries={} timeouts={}",
        configs[0].1.max_retries, configs[0].1.max_timeouts
    );

    let mut total_schedules: u64 = 0;
    let mut total_states: u64 = 0;
    let mut violations = Vec::new();
    for (name, cfg) in &configs {
        let ex = lockmodel::explore(cfg);
        println!(
            "  {name} model ({}T×{}L, gate {}): {} states, {} transitions, \
             {} schedules ({} quiescent, {} gave-up), {} violating transition(s)",
            cfg.txns,
            cfg.locks,
            cfg.max_inflight,
            ex.states,
            ex.transitions,
            ex.schedules,
            ex.terminals,
            ex.gave_up_terminals,
            ex.violation_count
        );
        total_schedules = total_schedules.saturating_add(ex.schedules);
        total_states += ex.states;
        violations.extend(ex.violations.into_iter().map(|v| (*name, v)));
    }
    println!("  total:        {total_schedules} schedules over {total_states} states");

    for (name, v) in &violations {
        eprintln!(
            "VIOLATION [{}] in {name} model: {}\n  schedule: {}",
            v.invariant,
            v.detail,
            lockmodel::format_schedule(&v.schedule)
        );
    }

    if mutation != Mutation::None {
        // Mutation runs invert the exit semantics: the weakened mechanism
        // MUST produce a counterexample, and it must replay.
        if violations.is_empty() {
            eprintln!("nsql-lint check-locks: FAIL — mutation {mutation:?} produced no violation");
            return Ok(ExitCode::FAILURE);
        }
        for (name, v) in &violations {
            let Some((_, cfg)) = configs.iter().find(|(n, _)| n == name) else {
                continue;
            };
            let replayed = lockmodel::replay(cfg, &v.schedule)
                .map_err(|e| format!("counterexample does not replay: {e}"))?;
            if !replayed.iter().any(|r| r.invariant == v.invariant) {
                eprintln!(
                    "nsql-lint check-locks: FAIL — replay of [{}] counterexample \
                     did not reproduce it",
                    v.invariant
                );
                return Ok(ExitCode::FAILURE);
            }
        }
        println!(
            "nsql-lint check-locks: OK — mutation {mutation:?} caught with {} replayable \
             counterexample(s)",
            violations.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let mut failed = !violations.is_empty();
    if let Some(cfg) = &floors {
        if cfg.lock_min_schedules > 0 && total_schedules < cfg.lock_min_schedules {
            eprintln!(
                "COVERAGE: {total_schedules} schedules < lock_min_schedules floor {} \
                 (coverage can only grow)",
                cfg.lock_min_schedules
            );
            failed = true;
        }
        if cfg.lock_min_states > 0 && total_states < cfg.lock_min_states {
            eprintln!(
                "COVERAGE: {total_states} states < lock_min_states floor {} \
                 (coverage can only grow)",
                cfg.lock_min_states
            );
            failed = true;
        }
    }
    if failed {
        eprintln!("nsql-lint check-locks: FAIL");
        Ok(ExitCode::FAILURE)
    } else {
        println!("nsql-lint check-locks: OK — all invariants hold on every schedule");
        Ok(ExitCode::SUCCESS)
    }
}
