#![warn(missing_docs)]
//! `nsql-lint` — the repo's dependency-free invariant linter and bounded
//! FS-DP protocol model checker.
//!
//! The paper's argument rests on protocol discipline between the File
//! System and the Disk Process. Repo-wide invariants protect it:
//! virtual-time-only determinism, typed errors on the FS-DP hot path,
//! exhaustive handling of protocol variants, and no silently dropped
//! `Result`s on the wire. `nsql-lint check` enforces them statically over
//! every crate (see [`rules`]); `nsql-lint check-protocol` exhaustively
//! model-checks the sync-ID / reply-cache / backoff / takeover protocol
//! (see [`model`]); `nsql-lint check-locks` exhaustively model-checks the
//! lock / deadlock / doom / retry / admission protocol (see
//! [`lockmodel`]). Ratchet ceilings live in the checked-in `lint.toml`
//! ([`config`]) so panic counts can only go down — and model-checker
//! coverage floors so explored schedules can only go up.
//!
//! Everything here is plain `std` — the linter must run in the offline CI
//! container that builds the rest of the workspace.

pub mod config;
pub mod lexer;
pub mod lockmodel;
pub mod model;
pub mod rules;

use config::Config;
use rules::{Diagnostic, FileReport};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directories never scanned: build output, VCS, and the linter's own
/// deliberately-violating fixture tree.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "lint_fixtures", "node_modules"];

/// Result of a full workspace scan.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All rule violations, sorted by file and line.
    pub diags: Vec<Diagnostic>,
    /// Non-test `unwrap/expect/panic!` count per file.
    pub file_counts: BTreeMap<String, u64>,
    /// Summed counts per ratchet bucket.
    pub bucket_counts: BTreeMap<String, u64>,
    /// Silent `Result` discard count per wire-protocol file.
    pub discard_counts: BTreeMap<String, u64>,
    /// Summed discard counts per `[result_discard]` bucket.
    pub discard_buckets: BTreeMap<String, u64>,
    /// Files scanned.
    pub files: usize,
}

/// Collect every `.rs` file under `root`, workspace-relative, sorted.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint the whole workspace rooted at `root` against `cfg`.
pub fn check_workspace(root: &Path, cfg: &Config) -> std::io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    let mut emitted = std::collections::BTreeSet::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let FileReport {
            diags,
            panic_count,
            discard_count,
            strings,
        } = rules::lint_source(cfg, &rel, &src);
        report.diags.extend(diags);
        emitted.extend(strings);
        if !rules::is_test_path(&rel) {
            if rules::is_discard_path(cfg, &rel) {
                report.discard_counts.insert(rel.clone(), discard_count);
            }
            report.file_counts.insert(rel, panic_count);
        }
        report.files += 1;
    }
    let (ratchet_diags, buckets) = rules::enforce_ratchet(cfg, &report.file_counts);
    report.diags.extend(ratchet_diags);
    report.bucket_counts = buckets;
    let (discard_diags, discard_buckets) =
        rules::enforce_discard_ratchet(cfg, &report.discard_counts);
    report.diags.extend(discard_diags);
    report.discard_buckets = discard_buckets;
    report.diags.extend(rules::stale_registry(cfg, &emitted));
    report
        .diags
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// For zero-ratchet buckets that are over their ceiling, list each
/// offending site with file:line so the diagnostic is actionable.
pub fn zero_ratchet_sites(root: &Path, cfg: &Config, report: &WorkspaceReport) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (bucket, &ceiling) in &cfg.ratchet {
        let Some(&actual) = report.bucket_counts.get(bucket) else {
            continue;
        };
        if actual <= ceiling {
            continue;
        }
        for (file, &n) in &report.file_counts {
            if n == 0 || !(file == bucket || file.starts_with(&format!("{bucket}/"))) {
                continue;
            }
            if let Ok(src) = std::fs::read_to_string(root.join(file)) {
                for (line, what) in rules::panic_sites(&src) {
                    out.push(Diagnostic {
                        rule: "panic-ratchet",
                        file: file.clone(),
                        line,
                        msg: format!("{what} counted against over-ceiling bucket `{bucket}`"),
                    });
                }
            }
        }
    }
    out
}

/// For `[result_discard]` buckets over their ceiling (or uncovered files
/// over the implicit zero), list each offending site with file:line.
pub fn discard_ratchet_sites(
    root: &Path,
    cfg: &Config,
    report: &WorkspaceReport,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (file, &n) in &report.discard_counts {
        if n == 0 {
            continue;
        }
        let over = match cfg
            .result_discard_ratchet
            .iter()
            .find(|(k, _)| file == *k || file.starts_with(&format!("{k}/")))
        {
            // A covered bucket lists sites only when the bucket overflows.
            Some((bucket, &ceiling)) => {
                report.discard_buckets.get(bucket).copied().unwrap_or(0) > ceiling
            }
            // No baseline: every site is over the implicit zero.
            None => true,
        };
        if !over {
            continue;
        }
        if let Ok(src) = std::fs::read_to_string(root.join(file)) {
            for (line, what) in rules::discard_sites(&src) {
                out.push(Diagnostic {
                    rule: "result-discard",
                    file: file.clone(),
                    line,
                    msg: format!("`{what}` counted against an over-ceiling discard budget"),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_skips_fixture_and_target_dirs() {
        let dir = std::env::temp_dir().join(format!("nsql_lint_walk_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("src")).unwrap();
        std::fs::create_dir_all(dir.join("target/debug")).unwrap();
        std::fs::create_dir_all(dir.join("tests/lint_fixtures")).unwrap();
        std::fs::write(dir.join("src/lib.rs"), "fn a() {}").unwrap();
        std::fs::write(dir.join("target/debug/gen.rs"), "fn b() {}").unwrap();
        std::fs::write(dir.join("tests/lint_fixtures/bad.rs"), "fn c() {}").unwrap();
        let files = collect_rs_files(&dir).unwrap();
        let rels: Vec<String> = files
            .iter()
            .map(|p| p.strip_prefix(&dir).unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(rels, vec!["src/lib.rs"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
