//! The rule engine: repo invariants enforced over the token stream.
//!
//! Four rules, each guarding a mechanism the paper reproduction depends on:
//!
//! * **`wall-clock`** — no `Instant::now` / `SystemTime` / OS randomness
//!   outside the allowlisted helper. Replay determinism, seeded chaos runs
//!   and byte-identical traces all assume the virtual clock is the *only*
//!   clock.
//! * **`panic-ratchet`** — per-path ceilings on `unwrap()` / `expect()` /
//!   `panic!` in non-test code, with hard zero on the FS-DP hot path. The
//!   ceilings live in `lint.toml` and can only go down.
//! * **`wildcard-match`** — no `_ =>` arms in matches over the protocol
//!   enums (`DpRequest`, `DpReply`, …): adding a protocol variant must be
//!   a compile/lint error everywhere it is interpreted, not a silent
//!   default (the `_ => 8` wire-size guess this rule was born from).
//! * **`trace-label`** — every paper-verb string (`GET^FIRST^VSBB` style)
//!   in non-test code must be in the canonical registry rendered by
//!   `format_sequence`, so traces and tests never drift apart on spelling.
//! * **`result-discard`** — no silent `Result` discards (`let _ = …` /
//!   bare `.ok();`) in the wire-protocol crates: a dropped `Err` on the
//!   FS-DP path is a protocol step that silently never happened. Existing
//!   offenders live under ratcheted per-path ceilings (`[result_discard]`
//!   in `lint.toml`) that, like the panic ratchet, only go down.
//! * **`stale-registry`** — the registry discipline cuts both ways: a
//!   `[trace_labels]` canonical label or counter name that *no* source
//!   file emits any more is dead weight that would mask a future
//!   misspelling, and is flagged until removed.

use crate::config::Config;
use crate::lexer::{tokenize, Tok, TokKind};
use std::collections::BTreeMap;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `wall-clock`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line (0 when the finding is file-level).
    pub line: usize,
    /// Human-readable explanation.
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.msg
            )
        } else {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.msg)
        }
    }
}

/// The lint result of one source file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations found (ratchet counting is done by the caller).
    pub diags: Vec<Diagnostic>,
    /// `unwrap()/expect()/panic!` occurrences in non-test code.
    pub panic_count: u64,
    /// Silent `Result` discards (`let _ =` / bare `.ok();`) in non-test
    /// code — only counted for files under a `[result_discard]` crate.
    pub discard_count: u64,
    /// Every string literal in the file (tests included) — the emission
    /// side of the bidirectional registry check.
    pub strings: Vec<String>,
}

/// Is this path test or bench code (excluded from the ratchet, wildcard and
/// label rules; the wall-clock rule still applies)?
pub fn is_test_path(rel: &str) -> bool {
    let p = rel.replace('\\', "/");
    p.starts_with("tests/")
        || p.contains("/tests/")
        || p.ends_with("/tests.rs")
        || p.contains("/benches/")
        || p.starts_with("examples/")
}

/// Lint one file's source text. `rel` is the workspace-relative path used
/// in diagnostics and for the wall-clock allowlist.
pub fn lint_source(cfg: &Config, rel: &str, src: &str) -> FileReport {
    let mut report = FileReport::default();
    let toks = tokenize(src);
    let test_path = is_test_path(rel);
    let in_test = test_region_mask(&toks);

    wall_clock_rule(cfg, rel, &toks, &mut report);
    if !test_path {
        report.panic_count = panic_count(&toks, &in_test, rel, &mut report);
        wildcard_match_rule(cfg, rel, &toks, &in_test, &mut report);
        trace_label_rule(cfg, rel, &toks, &in_test, &mut report);
        if is_discard_path(cfg, rel) {
            report.discard_count = discard_positions(&toks, &in_test).len() as u64;
        }
    }
    report.strings = toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text.clone())
        .collect();
    report
}

// ----------------------------------------------------------------------
// #[cfg(test)] region detection
// ----------------------------------------------------------------------

/// A boolean per token: is it inside a `#[cfg(test)]`-gated item?
fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // Skip to the end of the attribute, then blank out the item.
            let attr_end = close_delim(toks, i + 1, '[', ']');
            let item_end = item_end(toks, attr_end);
            for m in mask.iter_mut().take(item_end).skip(i) {
                *m = true;
            }
            i = item_end;
        } else {
            i += 1;
        }
    }
    mask
}

/// Does `# [ cfg ( test ) ]`-style attribute start at token `i`? Also
/// accepts `#[cfg(all(test, …))]` and any `cfg(...)` whose argument list
/// mentions the bare `test` flag.
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    if !(toks.get(i).is_some_and(|t| t.is_punct('#'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
        && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('(')))
    {
        return false;
    }
    let end = close_delim(toks, i + 3, '(', ')');
    toks[i + 4..end.saturating_sub(1)]
        .iter()
        .any(|t| t.is_ident("test"))
}

/// Given `toks[open_at]` is (or precedes) an opening delimiter, return the
/// index one past its matching close. `open_at` may point at the opener.
fn close_delim(toks: &[Tok], open_at: usize, open: char, close: char) -> usize {
    let mut depth = 0i64;
    let mut i = open_at;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// One past the end of the item starting at `i` (after an attribute): skips
/// further attributes, then either a braced body or a `;`-terminated item.
fn item_end(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i = close_delim(toks, i + 1, '[', ']');
            continue;
        }
        break;
    }
    let mut j = i;
    let mut depth = 0i64;
    while j < toks.len() {
        if toks[j].is_punct(';') && depth == 0 {
            return j + 1;
        }
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

// ----------------------------------------------------------------------
// Rule: wall-clock
// ----------------------------------------------------------------------

fn wall_clock_rule(cfg: &Config, rel: &str, toks: &[Tok], report: &mut FileReport) {
    if cfg.wall_clock_allow.iter().any(|a| a == rel) {
        return;
    }
    for t in toks {
        if t.kind == TokKind::Ident && cfg.wall_clock_banned.iter().any(|b| b == &t.text) {
            report.diags.push(Diagnostic {
                rule: "wall-clock",
                file: rel.to_string(),
                line: t.line,
                msg: format!(
                    "`{}` is wall-clock/OS-randomness; use the virtual clock (nsql_sim) or \
                     the sanctioned crates/bench wall_clock helper",
                    t.text
                ),
            });
        }
    }
}

// ----------------------------------------------------------------------
// Rule: panic-ratchet (counting half; ceilings enforced by the caller)
// ----------------------------------------------------------------------

/// Count `unwrap()` / `expect()` / `panic!` in non-test tokens. Emits no
/// diagnostics itself except to carry per-occurrence positions for the
/// zero-ratchet paths (the caller decides which counts are violations).
fn panic_count(toks: &[Tok], in_test: &[bool], _rel: &str, _report: &mut FileReport) -> u64 {
    let mut count = 0u64;
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        let hit = (t.is_ident("panic") && toks.get(i + 1).is_some_and(|n| n.is_punct('!')))
            || ((t.is_ident("unwrap") || t.is_ident("expect"))
                && i > 0
                && toks[i - 1].is_punct('.'));
        if hit {
            count += 1;
        }
    }
    count
}

/// Positions of each non-test `unwrap/expect/panic!` (for zero-ratchet
/// diagnostics with file:line).
pub fn panic_sites(src: &str) -> Vec<(usize, String)> {
    let toks = tokenize(src);
    let in_test = test_region_mask(&toks);
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("panic") && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            sites.push((t.line, "panic!".to_string()));
        } else if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct('.')
        {
            sites.push((t.line, format!(".{}()", t.text)));
        }
    }
    sites
}

// ----------------------------------------------------------------------
// Rule: wildcard-match
// ----------------------------------------------------------------------

fn wildcard_match_rule(
    cfg: &Config,
    rel: &str,
    toks: &[Tok],
    in_test: &[bool],
    report: &mut FileReport,
) {
    for i in 0..toks.len() {
        if in_test[i] || !toks[i].is_ident("match") {
            continue;
        }
        // Find the match body: the first `{` at zero paren/bracket depth.
        let mut j = i + 1;
        let mut depth = 0i64;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                // A `;` or another `match` before the body means this
                // `match` wasn't an expression head (e.g. an ident named
                // match can't occur — match is a keyword — so this is just
                // a safety stop for malformed input).
                ";" if depth == 0 => {
                    j = toks.len();
                }
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() {
            continue;
        }
        analyze_match_body(cfg, rel, toks, j, report);
    }
}

/// Walk one match body (opening brace at `open`), splitting top-level arms
/// into pattern/expression, and flag a `_ =>` arm when any arm pattern
/// names a protocol enum.
fn analyze_match_body(cfg: &Config, rel: &str, toks: &[Tok], open: usize, report: &mut FileReport) {
    let end = close_delim(toks, open, '{', '}');
    let mut i = open + 1;
    let mut pattern: Vec<usize> = Vec::new();
    let mut protocol_enum: Option<String> = None;
    let mut wildcard_line: Option<usize> = None;
    let mut in_pattern = true;
    while i + 1 < end {
        let t = &toks[i];
        if in_pattern {
            if t.is_punct('=') && toks.get(i + 1).is_some_and(|n| n.is_punct('>')) {
                // Pattern complete: classify it.
                classify_pattern(cfg, toks, &pattern, &mut protocol_enum, &mut wildcard_line);
                pattern.clear();
                in_pattern = false;
                i += 2;
                continue;
            }
            // Skip grouped parts of the pattern (tuple/struct payloads).
            match t.text.as_str() {
                "(" => {
                    i = close_delim(toks, i, '(', ')');
                    continue;
                }
                "[" => {
                    i = close_delim(toks, i, '[', ']');
                    continue;
                }
                "{" => {
                    i = close_delim(toks, i, '{', '}');
                    continue;
                }
                _ => {}
            }
            pattern.push(i);
            i += 1;
        } else {
            // In the arm expression: it ends at a top-level `,`, or, for a
            // block-bodied arm, at its closing brace.
            match t.text.as_str() {
                "," => {
                    in_pattern = true;
                    i += 1;
                }
                "(" => i = close_delim(toks, i, '(', ')'),
                "[" => i = close_delim(toks, i, '[', ']'),
                "{" => {
                    i = close_delim(toks, i, '{', '}');
                    // A block body may or may not be followed by a comma.
                    if toks.get(i).is_some_and(|n| n.is_punct(',')) {
                        i += 1;
                    }
                    in_pattern = true;
                }
                _ => i += 1,
            }
        }
    }
    if let (Some(enum_name), Some(line)) = (&protocol_enum, wildcard_line) {
        report.diags.push(Diagnostic {
            rule: "wildcard-match",
            file: rel.to_string(),
            line,
            msg: format!(
                "wildcard `_ =>` arm in a match over protocol enum `{enum_name}`; \
                 spell out every variant so new protocol messages fail to compile here"
            ),
        });
    }
}

/// Inspect one arm's pattern tokens: record protocol-enum mentions and
/// wildcard arms.
fn classify_pattern(
    cfg: &Config,
    toks: &[Tok],
    pattern: &[usize],
    protocol_enum: &mut Option<String>,
    wildcard_line: &mut Option<usize>,
) {
    // `_ =>` or `_ if guard =>`: lone underscore leading the pattern.
    if let Some(&first) = pattern.first() {
        let lone =
            toks[first].is_ident("_") && (pattern.len() == 1 || toks[pattern[1]].is_ident("if"));
        if lone {
            *wildcard_line = Some(toks[first].line);
        }
    }
    for (k, &pi) in pattern.iter().enumerate() {
        let t = &toks[pi];
        if t.kind == TokKind::Ident && cfg.protocol_enums.iter().any(|e| e == &t.text) {
            // Require a following `::` so a binding named like the enum
            // doesn't count.
            if let (Some(&a), Some(&b)) = (pattern.get(k + 1), pattern.get(k + 2)) {
                if toks[a].is_punct(':') && toks[b].is_punct(':') {
                    *protocol_enum = Some(t.text.clone());
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Rule: trace-label
// ----------------------------------------------------------------------

/// Paper-verb shape: uppercase words joined by `^` (`GET^FIRST^VSBB`).
fn is_paper_verb(s: &str) -> bool {
    s.contains('^')
        && !s.is_empty()
        && s.split('^')
            .all(|w| !w.is_empty() && w.chars().all(|c| c.is_ascii_uppercase()))
}

/// MEASURE counter-field shape: two or more dotted lowercase segments,
/// each starting with a letter (`msgs.recv`, `cache.hits`). A trailing
/// segment that is a file extension (`lint.toml`, `trace.json`) makes it
/// a path, not a counter.
fn is_counter_name(s: &str) -> bool {
    const EXTENSIONS: &[&str] = &[
        "toml", "json", "jsonl", "rs", "md", "yml", "yaml", "sh", "py", "lock", "txt",
    ];
    let segs: Vec<&str> = s.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|w| {
            w.starts_with(|c: char| c.is_ascii_lowercase())
                && w.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
        && !matches!(segs.last(), Some(last) if EXTENSIONS.contains(last))
}

fn trace_label_rule(
    cfg: &Config,
    rel: &str,
    toks: &[Tok],
    in_test: &[bool],
    report: &mut FileReport,
) {
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Str {
            continue;
        }
        if is_paper_verb(&t.text) && !cfg.trace_labels.iter().any(|l| l == &t.text) {
            report.diags.push(Diagnostic {
                rule: "trace-label",
                file: rel.to_string(),
                line: t.line,
                msg: format!(
                    "`{}` is not in the canonical paper-verb registry ([trace_labels] in \
                     lint.toml); register it or fix the spelling so format_sequence and the \
                     trace tests stay in agreement",
                    t.text
                ),
            });
        }
        if is_counter_name(&t.text) && !cfg.counter_names.iter().any(|l| l == &t.text) {
            report.diags.push(Diagnostic {
                rule: "trace-label",
                file: rel.to_string(),
                line: t.line,
                msg: format!(
                    "`{}` is not in the MEASURE counter registry ([trace_labels] counters in \
                     lint.toml); register it or fix the spelling so counter lookups cannot \
                     silently miss",
                    t.text
                ),
            });
        }
    }
}

// ----------------------------------------------------------------------
// Rule: result-discard (counting half; ceilings enforced by the caller)
// ----------------------------------------------------------------------

/// Is this file under one of the `[result_discard] crates` prefixes (the
/// wire-protocol surfaces where silent discards are ratcheted)?
pub fn is_discard_path(cfg: &Config, rel: &str) -> bool {
    cfg.result_discard_crates
        .iter()
        .any(|c| rel == c || rel.starts_with(&format!("{c}/")))
}

/// Positions of silent `Result` discards in non-test tokens: a lone
/// `let _ = …` binding (which drops any `Err` on the floor — a named
/// `_reason` binding does not match) or a bare `.ok();` statement (the
/// `Result` → `Option` → void laundering idiom).
fn discard_positions(toks: &[Tok], in_test: &[bool]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("let")
            && toks.get(i + 1).is_some_and(|n| n.is_ident("_"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('='))
        {
            out.push((t.line, "let _ =".to_string()));
        }
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_ident("ok"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
            && toks.get(i + 4).is_some_and(|n| n.is_punct(';'))
            && ok_is_bare(toks, i)
        {
            out.push((toks[i + 1].line, ".ok();".to_string()));
        }
    }
    out
}

/// Is the `.ok();` ending at the `.` in `toks[dot]` a *bare* expression
/// statement (value dropped), rather than bound or returned
/// (`let before = rel.read(n).ok();` consumes the `Option`)? Walks back to
/// the statement boundary, skipping balanced groups, looking for a
/// consuming `let` / `return` / `=` at statement depth.
fn ok_is_bare(toks: &[Tok], dot: usize) -> bool {
    let mut depth = 0i64;
    let mut j = dot;
    while j > 0 {
        let p = &toks[j - 1];
        if p.kind == TokKind::Punct {
            match p.text.chars().next() {
                Some(')') | Some(']') => depth += 1,
                Some('(') | Some('[') => {
                    if depth == 0 {
                        return true; // opened a group: statement starts here
                    }
                    depth -= 1;
                }
                Some(';') | Some('{') | Some('}') if depth == 0 => return true,
                Some('=') if depth == 0 => return false, // bound or assigned
                _ => {}
            }
        } else if depth == 0 && (p.is_ident("let") || p.is_ident("return")) {
            return false;
        }
        j -= 1;
    }
    true
}

/// Site list for over-ceiling diagnostics (mirrors [`panic_sites`]).
pub fn discard_sites(src: &str) -> Vec<(usize, String)> {
    let toks = tokenize(src);
    let in_test = test_region_mask(&toks);
    discard_positions(&toks, &in_test)
}

/// Enforce the `[result_discard]` ratchet: per-file discard counts sum
/// into each configured path bucket; a covered file under no bucket has an
/// implicit ceiling of zero (new wire-protocol code may not discard at
/// all).
pub fn enforce_discard_ratchet(
    cfg: &Config,
    counts: &BTreeMap<String, u64>,
) -> (Vec<Diagnostic>, BTreeMap<String, u64>) {
    let mut diags = Vec::new();
    let mut actual: BTreeMap<String, u64> = BTreeMap::new();
    for key in cfg.result_discard_ratchet.keys() {
        actual.insert(key.clone(), 0);
    }
    for (file, &n) in counts {
        let mut covered = false;
        for (key, sum) in actual.iter_mut() {
            if file == key || file.starts_with(&format!("{key}/")) {
                *sum += n;
                covered = true;
            }
        }
        if !covered && n > 0 {
            diags.push(Diagnostic {
                rule: "result-discard",
                file: file.clone(),
                line: 0,
                msg: format!(
                    "{n} silent Result discard(s) (`let _ =` / bare `.ok();`) in a \
                     wire-protocol crate with no [result_discard] baseline; handle the \
                     error or match on it explicitly"
                ),
            });
        }
    }
    for (key, &n) in &actual {
        let ceiling = cfg.result_discard_ratchet.get(key).copied().unwrap_or(0);
        if n > ceiling {
            diags.push(Diagnostic {
                rule: "result-discard",
                file: key.clone(),
                line: 0,
                msg: format!(
                    "silent Result discard count {n} exceeds the ratcheted ceiling \
                     {ceiling}; handle the error instead (ceilings only go down)"
                ),
            });
        }
    }
    (diags, actual)
}

// ----------------------------------------------------------------------
// Rule: stale-registry (the reverse direction of trace-label)
// ----------------------------------------------------------------------

/// Flag every registry entry — canonical paper verb or MEASURE counter —
/// that no scanned source file emits as a string literal. `emitted` is the
/// union of all files' [`FileReport::strings`].
pub fn stale_registry(
    cfg: &Config,
    emitted: &std::collections::BTreeSet<String>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for label in &cfg.trace_labels {
        if !emitted.contains(label) {
            diags.push(Diagnostic {
                rule: "stale-registry",
                file: "lint.toml".to_string(),
                line: 0,
                msg: format!(
                    "canonical trace label `{label}` is emitted by no source file; \
                     remove the registry entry or restore the emission (a dead entry \
                     would mask a future misspelling)"
                ),
            });
        }
    }
    for counter in &cfg.counter_names {
        if !emitted.contains(counter) {
            diags.push(Diagnostic {
                rule: "stale-registry",
                file: "lint.toml".to_string(),
                line: 0,
                msg: format!(
                    "MEASURE counter `{counter}` is emitted by no source file; \
                     remove the registry entry or restore the emission"
                ),
            });
        }
    }
    diags
}

// ----------------------------------------------------------------------
// Ratchet enforcement over a whole workspace scan
// ----------------------------------------------------------------------

/// Sum per-file panic counts into each configured ratchet bucket (a file
/// contributes to every key that path-prefixes it) and diff against the
/// ceilings. Files under no bucket are themselves violations, so every new
/// crate must be given a baseline.
pub fn enforce_ratchet(
    cfg: &Config,
    counts: &BTreeMap<String, u64>,
) -> (Vec<Diagnostic>, BTreeMap<String, u64>) {
    let mut diags = Vec::new();
    let mut actual: BTreeMap<String, u64> = BTreeMap::new();
    for key in cfg.ratchet.keys() {
        actual.insert(key.clone(), 0);
    }
    for (file, n) in counts {
        let mut covered = false;
        for (key, sum) in actual.iter_mut() {
            if file == key || file.starts_with(&format!("{key}/")) {
                *sum += n;
                covered = true;
            }
        }
        if !covered {
            diags.push(Diagnostic {
                rule: "panic-ratchet",
                file: file.clone(),
                line: 0,
                msg: "file is not covered by any [ratchet] entry in lint.toml; \
                      add a baseline for its crate"
                    .to_string(),
            });
        }
    }
    for (key, &n) in &actual {
        let ceiling = cfg.ratchet.get(key).copied().unwrap_or(0);
        if n > ceiling {
            diags.push(Diagnostic {
                rule: "panic-ratchet",
                file: key.clone(),
                line: 0,
                msg: format!(
                    "unwrap/expect/panic! count {n} exceeds the ratcheted ceiling {ceiling}; \
                     convert the new sites to typed errors (ceilings only go down)"
                ),
            });
        }
    }
    (diags, actual)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> Config {
        Config {
            wall_clock_banned: vec!["Instant".into(), "SystemTime".into(), "thread_rng".into()],
            wall_clock_allow: vec!["allowed/wall_clock.rs".into()],
            protocol_enums: vec!["DpRequest".into(), "DpReply".into(), "FileKind".into()],
            trace_labels: vec!["GET^NEXT".into(), "GET^FIRST^VSBB".into()],
            counter_names: vec!["msgs.recv".into(), "cache.hits".into()],
            ratchet: BTreeMap::new(),
            result_discard_crates: vec!["proto".into()],
            result_discard_ratchet: BTreeMap::new(),
            lock_min_schedules: 0,
            lock_min_states: 0,
        }
    }

    #[test]
    fn wall_clock_flags_banned_idents_but_not_strings() {
        let cfg = test_cfg();
        let r = lint_source(&cfg, "x.rs", "let t = Instant::now();");
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].rule, "wall-clock");
        let r = lint_source(&cfg, "x.rs", r#"let s = "Instant::now()"; // Instant"#);
        assert!(r.diags.is_empty());
        let r = lint_source(&cfg, "allowed/wall_clock.rs", "let t = Instant::now();");
        assert!(r.diags.is_empty());
    }

    #[test]
    fn panic_count_skips_cfg_test_modules() {
        let cfg = test_cfg();
        let src = r#"
            fn f(x: Option<u32>) -> u32 { x.unwrap() }
            fn g() { panic!("boom") }
            #[cfg(test)]
            mod tests {
                fn t() { None::<u32>.unwrap(); panic!("fine in tests") }
            }
        "#;
        let r = lint_source(&cfg, "x.rs", src);
        assert_eq!(r.panic_count, 2);
        let sites = panic_sites(src);
        assert_eq!(sites.len(), 2);
    }

    #[test]
    fn wildcard_match_needs_both_enum_and_underscore() {
        let cfg = test_cfg();
        // Protocol enum + wildcard → flagged.
        let r = lint_source(
            &cfg,
            "x.rs",
            "fn f(r: DpRequest) -> usize { match r { DpRequest::FlushCache => 0, _ => 8 } }",
        );
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].rule, "wildcard-match");
        // Wildcard over a non-protocol enum → fine.
        let r = lint_source(
            &cfg,
            "x.rs",
            "fn f(x: Option<u32>) -> u32 { match x { Some(v) => v, _ => 0 } }",
        );
        assert!(r.diags.is_empty());
        // Protocol enum fully spelled out → fine.
        let r = lint_source(
            &cfg,
            "x.rs",
            "fn f(k: FileKind) -> usize { match k { FileKind::EntrySequenced => 0, \
             FileKind::Relative { .. } => 8 } }",
        );
        assert!(r.diags.is_empty());
        // `other =>` binding is not a wildcard.
        let r = lint_source(
            &cfg,
            "x.rs",
            "fn f(r: DpReply) -> usize { match r { DpReply::Ok => 0, other => 1 } }",
        );
        assert!(r.diags.is_empty());
    }

    #[test]
    fn nested_match_is_analyzed_independently() {
        let cfg = test_cfg();
        // The outer match is exhaustive; the inner FileKind match hides a
        // wildcard — exactly the protocol.rs:369 shape this rule targets.
        let src = "fn f(r: DpRequest) -> usize { match r { \
                   DpRequest::CreateFile { kind } => match kind { \
                   FileKind::KeySequenced(d) => d.len(), _ => 8 }, \
                   DpRequest::FlushCache => 0 } }";
        let r = lint_source(&cfg, "x.rs", src);
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert!(r.diags[0].msg.contains("FileKind"));
    }

    #[test]
    fn result_discard_counts_bare_drops_only() {
        let cfg = test_cfg();
        // Lone `_` binding and bare `.ok();` in a covered crate count…
        let src = r#"
            fn f() {
                let _ = send();
                send().ok();
            }
            #[cfg(test)]
            mod tests {
                fn t() { let _ = send(); send().ok(); }
            }
        "#;
        let r = lint_source(&cfg, "proto/src/lib.rs", src);
        assert_eq!(r.discard_count, 2, "{:?}", discard_sites(src));
        // …but a named `_reason` binding, a *bound* `.ok()`, a returned
        // `.ok()`, and an `.ok()` consumed inside a call do not.
        let src = r#"
            fn g() -> Option<u32> {
                let _hint = send();
                let before = read(7).ok();
                take(read(9).ok());
                return send().ok();
            }
        "#;
        let r = lint_source(&cfg, "proto/src/lib.rs", src);
        assert_eq!(r.discard_count, 0, "{:?}", discard_sites(src));
        // Outside the covered crates nothing is counted at all.
        let r = lint_source(&cfg, "other/src/lib.rs", "fn f() { let _ = send(); }");
        assert_eq!(r.discard_count, 0);
    }

    #[test]
    fn discard_ratchet_enforces_ceilings_and_implicit_zero() {
        let mut cfg = test_cfg();
        cfg.result_discard_ratchet
            .insert("proto/src/lib.rs".into(), 1);
        let mut counts = BTreeMap::new();
        counts.insert("proto/src/lib.rs".to_string(), 2u64); // over its ceiling of 1
        counts.insert("proto/src/wire.rs".to_string(), 1u64); // no baseline → implicit 0
        counts.insert("proto/src/clean.rs".to_string(), 0u64);
        let (diags, buckets) = enforce_discard_ratchet(&cfg, &counts);
        assert_eq!(buckets.get("proto/src/lib.rs"), Some(&2));
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["result-discard", "result-discard"], "{diags:?}");
        assert!(diags.iter().any(|d| d.file == "proto/src/wire.rs"));
        assert!(diags
            .iter()
            .any(|d| d.msg.contains("exceeds the ratcheted ceiling 1")));
    }

    #[test]
    fn stale_registry_flags_never_emitted_entries() {
        let cfg = test_cfg();
        let mut emitted: std::collections::BTreeSet<String> =
            ["GET^NEXT", "GET^FIRST^VSBB", "msgs.recv"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        // `cache.hits` is registered but never emitted → stale.
        let diags = stale_registry(&cfg, &emitted);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "stale-registry");
        assert!(diags[0].msg.contains("cache.hits"));
        // Emitting it anywhere (tests included) clears the flag.
        emitted.insert("cache.hits".to_string());
        assert!(stale_registry(&cfg, &emitted).is_empty());
    }

    #[test]
    fn trace_labels_check_the_registry() {
        let cfg = test_cfg();
        let r = lint_source(&cfg, "x.rs", r#"let l = "GET^NEXT";"#);
        assert!(r.diags.is_empty());
        let r = lint_source(&cfg, "x.rs", r#"let l = "GET^FRIST^VSBB";"#);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].rule, "trace-label");
        // Non-verb strings with carets are ignored.
        let r = lint_source(&cfg, "x.rs", r#"let l = "a^b";"#);
        assert!(r.diags.is_empty());
    }

    #[test]
    fn counter_names_check_the_same_registry() {
        let cfg = test_cfg();
        let r = lint_source(&cfg, "x.rs", r#"let c = "msgs.recv";"#);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        let r = lint_source(&cfg, "x.rs", r#"let c = "msgs.rcv";"#);
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].rule, "trace-label");
        assert!(r.diags[0].msg.contains("MEASURE counter registry"));
        // Paths, versions, and rendered ratios are not counter names.
        for ok in [
            r#"let p = "lint.toml";"#,
            r#"let p = "trace.json";"#,
            r#"let v = "0.1.0";"#,
            r#"let x = "1.0x";"#,
            r#"let s = "a.B";"#,
        ] {
            let r = lint_source(&cfg, "x.rs", ok);
            assert!(r.diags.is_empty(), "{ok}: {:?}", r.diags);
        }
    }

    #[test]
    fn ratchet_sums_prefixes_and_flags_increases() {
        let mut cfg = test_cfg();
        cfg.ratchet.insert("crates/dp".into(), 5);
        cfg.ratchet.insert("crates/dp/src/protocol.rs".into(), 0);
        let mut counts = BTreeMap::new();
        counts.insert("crates/dp/src/lib.rs".to_string(), 5u64);
        counts.insert("crates/dp/src/protocol.rs".to_string(), 1u64);
        let (diags, actual) = enforce_ratchet(&cfg, &counts);
        // protocol.rs ceiling 0 violated; crates/dp total 6 > 5 violated too.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(actual.get("crates/dp"), Some(&6));
        // Uncovered files are violations.
        let mut counts = BTreeMap::new();
        counts.insert("crates/new/src/lib.rs".to_string(), 0u64);
        let (diags, _) = enforce_ratchet(&cfg, &counts);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].msg.contains("not covered"));
    }

    #[test]
    fn test_paths_are_exempt_from_ratchet_but_not_wall_clock() {
        let cfg = test_cfg();
        let src = "fn f() { let x = foo().unwrap(); let t = Instant::now(); }";
        let r = lint_source(&cfg, "crates/dp/src/tests.rs", src);
        assert_eq!(r.panic_count, 0);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].rule, "wall-clock");
        assert!(is_test_path("tests/chaos.rs"));
        assert!(is_test_path("crates/lint/tests/fixtures.rs"));
        assert!(!is_test_path("crates/lint/src/lib.rs"));
    }
}
