//! `lint.toml` — the checked-in lint configuration and ratchet table.
//!
//! The file is parsed with a tiny built-in reader (the linter must stay
//! dependency-free to preserve the offline build) that supports exactly the
//! subset the config uses: `[section]` headers, `key = <integer>`,
//! `key = "string"`, and (possibly multi-line) `key = [ "a", "b" ]` arrays,
//! with `#` comments. Keys may be quoted (ratchet entries are paths).

use std::collections::BTreeMap;
use std::fmt;

/// A parse/IO problem with the config file.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// The linter's configuration, as read from `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Identifiers banned outside the wall-clock allowlist
    /// (`[wall_clock] banned`).
    pub wall_clock_banned: Vec<String>,
    /// Files (workspace-relative) allowed to touch the wall clock
    /// (`[wall_clock] allow`).
    pub wall_clock_allow: Vec<String>,
    /// Enum type names whose matches must not use a `_ =>` arm
    /// (`[protocol_enums] names`).
    pub protocol_enums: Vec<String>,
    /// The canonical paper-verb trace labels (`[trace_labels] canonical`).
    pub trace_labels: Vec<String>,
    /// The canonical MEASURE counter-field names (`[trace_labels]
    /// counters`); same registry discipline, same rule.
    pub counter_names: Vec<String>,
    /// Ratchet ceilings: path prefix → max `unwrap/expect/panic!` count in
    /// non-test code under that prefix (`[ratchet]`).
    pub ratchet: BTreeMap<String, u64>,
    /// Crate-path prefixes in which silent `Result` discards are banned
    /// (`[result_discard] crates`) — the wire-protocol surfaces.
    pub result_discard_crates: Vec<String>,
    /// Ratcheted allowlist for existing discard offenders: path prefix →
    /// max discard count (`[result_discard]` quoted-path entries). Any
    /// covered file not under one of these prefixes has an implicit
    /// ceiling of zero.
    pub result_discard_ratchet: BTreeMap<String, u64>,
    /// Coverage floor: `check-locks` must explore at least this many
    /// distinct schedules across its default configurations
    /// (`[model] lock_min_schedules`). Only ever raised.
    pub lock_min_schedules: u64,
    /// Coverage floor on canonical states explored
    /// (`[model] lock_min_states`).
    pub lock_min_states: u64,
}

impl Config {
    /// Parse the configuration from `lint.toml` text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((ln, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, mut value) = split_kv(&line, ln)?;
            // Multi-line array: keep consuming lines until the bracket closes.
            if value.starts_with('[') && !array_closed(&value) {
                for (_, cont) in lines.by_ref() {
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                    if array_closed(&value) {
                        break;
                    }
                }
            }
            apply(&mut cfg, &section, &key, &value, ln)?;
        }
        Ok(cfg)
    }

    /// Serialize the `[ratchet]` section body (used by `--update-ratchet`).
    pub fn ratchet_lines(counts: &BTreeMap<String, u64>) -> String {
        let mut out = String::new();
        for (k, v) in counts {
            out.push_str(&format!("\"{k}\" = {v}\n"));
        }
        out
    }
}

/// Strip a trailing `#` comment (not inside a quoted string).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Is a (possibly concatenated) array value bracket-balanced?
fn array_closed(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// Split `key = value`, unquoting the key if needed.
fn split_kv(line: &str, ln: usize) -> Result<(String, String), ConfigError> {
    // The `=` separating key and value is the first one outside quotes.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => {
                let key = line[..i].trim().trim_matches('"').to_string();
                let value = line[i + 1..].trim().to_string();
                if key.is_empty() || value.is_empty() {
                    return Err(ConfigError(format!("line {}: empty key or value", ln + 1)));
                }
                return Ok((key, value));
            }
            _ => {}
        }
    }
    Err(ConfigError(format!(
        "line {}: expected `key = value`, got `{line}`",
        ln + 1
    )))
}

/// Parse a `[ "a", "b" ]` array value into its string elements.
fn parse_str_array(value: &str, ln: usize) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ConfigError(format!("line {}: expected an array", ln + 1)))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let s = part
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| {
                ConfigError(format!(
                    "line {}: array element `{part}` not quoted",
                    ln + 1
                ))
            })?;
        out.push(s.to_string());
    }
    Ok(out)
}

fn apply(
    cfg: &mut Config,
    section: &str,
    key: &str,
    value: &str,
    ln: usize,
) -> Result<(), ConfigError> {
    match (section, key) {
        ("wall_clock", "banned") => cfg.wall_clock_banned = parse_str_array(value, ln)?,
        ("wall_clock", "allow") => cfg.wall_clock_allow = parse_str_array(value, ln)?,
        ("protocol_enums", "names") => cfg.protocol_enums = parse_str_array(value, ln)?,
        ("trace_labels", "canonical") => cfg.trace_labels = parse_str_array(value, ln)?,
        ("trace_labels", "counters") => cfg.counter_names = parse_str_array(value, ln)?,
        ("ratchet", path) => {
            let n: u64 = value.parse().map_err(|_| {
                ConfigError(format!(
                    "line {}: ratchet value for `{path}` is not an integer",
                    ln + 1
                ))
            })?;
            cfg.ratchet.insert(path.to_string(), n);
        }
        ("result_discard", "crates") => cfg.result_discard_crates = parse_str_array(value, ln)?,
        ("result_discard", path) => {
            let n: u64 = value.parse().map_err(|_| {
                ConfigError(format!(
                    "line {}: result_discard ceiling for `{path}` is not an integer",
                    ln + 1
                ))
            })?;
            cfg.result_discard_ratchet.insert(path.to_string(), n);
        }
        ("model", "lock_min_schedules") => {
            cfg.lock_min_schedules = value.parse().map_err(|_| {
                ConfigError(format!(
                    "line {}: lock_min_schedules is not an integer",
                    ln + 1
                ))
            })?;
        }
        ("model", "lock_min_states") => {
            cfg.lock_min_states = value.parse().map_err(|_| {
                ConfigError(format!(
                    "line {}: lock_min_states is not an integer",
                    ln + 1
                ))
            })?;
        }
        _ => {
            return Err(ConfigError(format!(
                "line {}: unknown key `{key}` in section `[{section}]`",
                ln + 1
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(
            r#"
# comment
[wall_clock]
banned = ["Instant", "SystemTime"]
allow = ["crates/bench/src/wall_clock.rs"]

[protocol_enums]
names = [
    "DpRequest",
    "DpReply", # trailing comment
]

[trace_labels]
canonical = ["GET^NEXT"]

[ratchet]
"crates/msg" = 0
"crates/dp/src/protocol.rs" = 0
"crates/btree" = 27
"#,
        )
        .map_err(|e| e.to_string())
        .unwrap();
        assert_eq!(cfg.wall_clock_banned, vec!["Instant", "SystemTime"]);
        assert_eq!(cfg.protocol_enums, vec!["DpRequest", "DpReply"]);
        assert_eq!(cfg.ratchet.get("crates/msg"), Some(&0));
        assert_eq!(cfg.ratchet.get("crates/btree"), Some(&27));
    }

    #[test]
    fn parses_result_discard_and_model_sections() {
        let cfg = Config::parse(
            r#"
[result_discard]
crates = ["crates/msg", "crates/dp"]
"crates/dp/src/lib.rs" = 5

[model]
lock_min_schedules = 10000
lock_min_states = 1200
"#,
        )
        .map_err(|e| e.to_string())
        .unwrap();
        assert_eq!(cfg.result_discard_crates, vec!["crates/msg", "crates/dp"]);
        assert_eq!(
            cfg.result_discard_ratchet.get("crates/dp/src/lib.rs"),
            Some(&5)
        );
        assert_eq!(cfg.lock_min_schedules, 10000);
        assert_eq!(cfg.lock_min_states, 1200);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_ints() {
        assert!(Config::parse("[wall_clock]\nnope = 3\n").is_err());
        assert!(Config::parse("[ratchet]\n\"x\" = yes\n").is_err());
        assert!(Config::parse("just garbage\n").is_err());
    }
}
