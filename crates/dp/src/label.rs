//! The volume label: the on-disk directory of files on a volume.
//!
//! Block 0 of every volume holds the label: for each file its id, structure
//! kind, anchor block (B-tree root / header block) and, for key-sequenced
//! files, the record descriptor. The label is what lets a Disk Process —
//! or its backup after a takeover — reopen the volume's files after losing
//! all in-memory state.

use crate::protocol::{FileId, FileKind};
use nsql_btree::BlockNo;
use nsql_records::RecordDescriptor;
use std::collections::BTreeMap;

/// One file's label entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FileLabel {
    /// File id within the volume.
    pub id: FileId,
    /// Structure kind (with descriptor for key-sequenced files).
    pub kind: FileKind,
    /// Anchor block: B-tree root or relative/entry-sequenced header.
    pub anchor: BlockNo,
}

/// The whole volume label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VolumeLabel {
    /// Files by id.
    pub files: BTreeMap<FileId, FileLabel>,
    /// Next file id to assign.
    pub next_file: FileId,
}

impl VolumeLabel {
    /// Serialize to block-0 bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"NSQL");
        out.extend_from_slice(&self.next_file.to_be_bytes());
        out.extend_from_slice(&(self.files.len() as u16).to_be_bytes());
        for f in self.files.values() {
            out.extend_from_slice(&f.id.to_be_bytes());
            out.extend_from_slice(&f.anchor.to_be_bytes());
            match &f.kind {
                FileKind::KeySequenced(desc) => {
                    out.push(1);
                    let d = desc.encode_bytes();
                    out.extend_from_slice(&(d.len() as u16).to_be_bytes());
                    out.extend_from_slice(&d);
                }
                FileKind::Relative { slot_size } => {
                    out.push(2);
                    out.extend_from_slice(&slot_size.to_be_bytes());
                }
                FileKind::EntrySequenced => out.push(3),
            }
        }
        out
    }

    /// Deserialize from block-0 bytes.
    ///
    /// # Panics
    /// Panics on a corrupt label (simulation bug, not runtime condition).
    pub fn decode(bytes: &[u8]) -> VolumeLabel {
        assert_eq!(&bytes[0..4], b"NSQL", "not a volume label");
        let next_file = u32::from_be_bytes(bytes[4..8].try_into().unwrap());
        let n = u16::from_be_bytes(bytes[8..10].try_into().unwrap()) as usize;
        let mut pos = 10;
        let mut files = BTreeMap::new();
        for _ in 0..n {
            let id = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let anchor = u32::from_be_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            pos += 8;
            let kind = match bytes[pos] {
                1 => {
                    let dlen =
                        u16::from_be_bytes(bytes[pos + 1..pos + 3].try_into().unwrap()) as usize;
                    let (desc, used) =
                        RecordDescriptor::decode_bytes(&bytes[pos + 3..pos + 3 + dlen]);
                    assert_eq!(used, dlen, "descriptor length mismatch");
                    pos += 3 + dlen;
                    FileKind::KeySequenced(desc)
                }
                2 => {
                    let slot = u32::from_be_bytes(bytes[pos + 1..pos + 5].try_into().unwrap());
                    pos += 5;
                    FileKind::Relative { slot_size: slot }
                }
                3 => {
                    pos += 1;
                    FileKind::EntrySequenced
                }
                other => panic!("corrupt file-kind tag {other}"),
            };
            files.insert(id, FileLabel { id, kind, anchor });
        }
        VolumeLabel { files, next_file }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_records::{FieldDef, FieldType};

    #[test]
    fn label_round_trips() {
        let desc = RecordDescriptor::new(
            vec![
                FieldDef::new("ID", FieldType::Int),
                FieldDef::nullable("NAME", FieldType::Varchar(30)),
            ],
            vec![0],
        );
        let mut label = VolumeLabel {
            next_file: 3,
            ..VolumeLabel::default()
        };
        label.files.insert(
            0,
            FileLabel {
                id: 0,
                kind: FileKind::KeySequenced(desc),
                anchor: 1,
            },
        );
        label.files.insert(
            1,
            FileLabel {
                id: 1,
                kind: FileKind::Relative { slot_size: 128 },
                anchor: 9,
            },
        );
        label.files.insert(
            2,
            FileLabel {
                id: 2,
                kind: FileKind::EntrySequenced,
                anchor: 14,
            },
        );
        let decoded = VolumeLabel::decode(&label.encode());
        assert_eq!(decoded, label);
    }

    #[test]
    fn empty_label_round_trips() {
        let label = VolumeLabel::default();
        assert_eq!(VolumeLabel::decode(&label.encode()), label);
    }

    #[test]
    #[should_panic(expected = "not a volume label")]
    fn garbage_rejected() {
        VolumeLabel::decode(&[0u8; 16]);
    }
}
