//! The FS-DP interface: the messages the File System sends a Disk Process.
//!
//! Two generations coexist, exactly as in the paper:
//!
//! * the **old ENSCRIBE interface** — record-at-a-time reads, writes,
//!   deletes and explicit locking, plus real sequential block buffering
//!   (one physical block copy per message);
//! * the **new NonStop SQL interface** — field- and set-oriented messages
//!   (`GET^FIRST^VSBB`, `GET^NEXT^VSBB`, `UPDATE^SUBSET^FIRST`, ...) that
//!   carry key ranges, selection predicates, projections, update
//!   expressions and integrity constraints down to the Disk Process, with
//!   the continuation re-drive protocol on top.
//!
//! Every request/reply reports its wire size so the message system can
//! account bytes — the paper's central metric.

use nsql_lock::{LockMode, TxnId};
use nsql_records::{Expr, KeyRange, RecordDescriptor, SetList};

/// File identifier within a volume.
pub type FileId = u32;

/// Identifier of a Subset Control Block within a Disk Process.
pub type SubsetId = u64;

/// The duplicate-suppression identity every FS-DP request carries in its
/// header: the requester's opener id plus a per-opener sequence number.
/// Tandem's File System kept exactly this "sync ID" so a server could
/// recognise a retransmission after a lost reply and answer it from saved
/// state instead of re-executing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncId {
    /// The opener (one File System instance's session with the server).
    pub opener: u64,
    /// Monotone per-opener request number. Retries of one logical request
    /// reuse the same sequence number.
    pub seq: u64,
}

/// A [`DpRequest`] as it travels on the wire: the request plus its
/// [`SyncId`]. The sync ID rides in the 16-byte request header that
/// [`DpRequest::wire_size`] already accounts for, so carrying it costs no
/// extra message bytes.
#[derive(Debug, Clone)]
pub struct SyncRequest {
    /// Duplicate-suppression identity.
    pub sync: SyncId,
    /// Causal span identity of the request (trace / span / parent). Like the
    /// sync ID it rides in the 16-byte request header that
    /// [`DpRequest::wire_size`] already accounts for, so carrying it costs
    /// no extra message bytes.
    pub span: nsql_sim::SpanHeader,
    /// The request itself.
    pub req: DpRequest,
}

/// File structure kinds (the three ENSCRIBE/SQL access methods).
#[derive(Debug, Clone, PartialEq)]
pub enum FileKind {
    /// Key-sequenced (B-tree). Carries the record descriptor so the Disk
    /// Process can evaluate field-level operations at the data source.
    KeySequenced(RecordDescriptor),
    /// Relative (direct access by record number) with fixed slot size.
    Relative {
        /// Slot size in bytes.
        slot_size: u32,
    },
    /// Entry-sequenced (append at EOF only).
    EntrySequenced,
}

/// How records touched by a read are locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadLock {
    /// Browse access: no locks (dirty read).
    None,
    /// Shared locks — for VSBB, one *group* lock covering the virtual
    /// block's key span.
    Shared,
}

/// Whether audit records carry full images (ENSCRIBE) or field-compressed
/// images (SQL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMode {
    /// Full record before/after images.
    FullImage,
    /// Field-level before/after images.
    FieldCompressed,
}

/// Read-subset transfer mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubsetMode {
    /// Real sequential block buffering: full records, one physical block's
    /// worth per reply, no selection or projection.
    Rsbb,
    /// Virtual sequential block buffering: the Disk Process builds virtual
    /// blocks of selected, projected data.
    Vsbb,
}

/// A request message on the FS-DP interface.
#[derive(Debug, Clone)]
pub enum DpRequest {
    // ----- administration -----
    /// Create a file on the volume.
    CreateFile {
        /// Structure and (for key-sequenced) record layout.
        kind: FileKind,
    },
    /// Synchronously flush dirty cache (orderly shutdown / checkpoint).
    FlushCache,

    // ----- old ENSCRIBE record-at-a-time interface -----
    /// Read one record by key.
    Read {
        /// Enclosing transaction, if any.
        txn: Option<TxnId>,
        /// Target file.
        file: FileId,
        /// Encoded primary key.
        key: Vec<u8>,
        /// Lock behaviour.
        lock: ReadLock,
    },
    /// Read the single next record after a key (ENSCRIBE record-at-a-time
    /// sequential read: one message per record).
    ReadNext {
        /// Enclosing transaction, if any.
        txn: Option<TxnId>,
        /// Target file.
        file: FileId,
        /// Resume point (None = first record).
        after: Option<Vec<u8>>,
        /// Lock behaviour.
        lock: ReadLock,
    },
    /// Read one physical block's worth of records starting at a key
    /// (ENSCRIBE sequential block buffering; requires a file lock, which
    /// the File System must hold).
    ReadSeqBlock {
        /// Enclosing transaction, if any.
        txn: Option<TxnId>,
        /// Target file.
        file: FileId,
        /// Resume point: records strictly after this key (None = start).
        after: Option<Vec<u8>>,
    },
    /// Insert a record.
    Insert {
        /// Enclosing transaction.
        txn: TxnId,
        /// Target file.
        file: FileId,
        /// Encoded primary key.
        key: Vec<u8>,
        /// Encoded record.
        record: Vec<u8>,
    },
    /// Replace a record with a full new image (ENSCRIBE WRITE).
    UpdateRecord {
        /// Enclosing transaction.
        txn: TxnId,
        /// Target file.
        file: FileId,
        /// Encoded primary key.
        key: Vec<u8>,
        /// Full new record image.
        record: Vec<u8>,
        /// Audit image mode.
        audit: AuditMode,
    },
    /// Delete a record by key.
    DeleteRecord {
        /// Enclosing transaction.
        txn: TxnId,
        /// Target file.
        file: FileId,
        /// Encoded primary key.
        key: Vec<u8>,
    },
    /// Acquire an explicit lock (ENSCRIBE LOCKFILE / LOCKREC; also used by
    /// the File System for SBB's mandatory file lock).
    Lock {
        /// Locking transaction.
        txn: TxnId,
        /// Target file.
        file: FileId,
        /// Key for a record lock, or None for a file lock.
        key: Option<Vec<u8>>,
        /// Mode.
        mode: LockMode,
    },

    // ----- new NonStop SQL field/set-oriented interface -----
    /// `GET^FIRST^VSBB` / `GET^FIRST^RSBB`: open a read subset.
    GetSubsetFirst {
        /// Enclosing transaction, if any.
        txn: Option<TxnId>,
        /// Target file.
        file: FileId,
        /// Primary key range.
        range: KeyRange,
        /// Selection predicate (single-variable query), evaluated per
        /// record at the Disk Process.
        predicate: Option<Expr>,
        /// Projected field numbers (VSBB only; None = whole records).
        projection: Option<Vec<u16>>,
        /// RSBB or VSBB.
        mode: SubsetMode,
        /// Lock behaviour for returned records.
        lock: ReadLock,
    },
    /// `GET^NEXT^*`: continuation re-drive. The predicate and projection
    /// are *not* re-sent — they live in the Subset Control Block.
    GetSubsetNext {
        /// Subset Control Block id from the FIRST reply.
        subset: SubsetId,
        /// Last key processed (the new exclusive begin-key).
        after: Vec<u8>,
    },
    /// `UPDATE^SUBSET^FIRST`: set-oriented update with an update expression
    /// evaluated at the data source.
    UpdateSubsetFirst {
        /// Enclosing transaction.
        txn: TxnId,
        /// Target file.
        file: FileId,
        /// Primary key range.
        range: KeyRange,
        /// Selection predicate.
        predicate: Option<Expr>,
        /// Update expressions (`SET BALANCE = BALANCE * 1.07`).
        sets: SetList,
        /// Integrity constraint checked on each new record at the Disk
        /// Process (`CHECK QUANTITY >= 0`).
        constraint: Option<Expr>,
    },
    /// `UPDATE^SUBSET^NEXT`: continuation re-drive for an update subset.
    UpdateSubsetNext {
        /// Subset Control Block id.
        subset: SubsetId,
        /// New exclusive begin-key.
        after: Vec<u8>,
    },
    /// `DELETE^SUBSET^FIRST`: set-oriented delete.
    DeleteSubsetFirst {
        /// Enclosing transaction.
        txn: TxnId,
        /// Target file.
        file: FileId,
        /// Primary key range.
        range: KeyRange,
        /// Selection predicate.
        predicate: Option<Expr>,
    },
    /// `DELETE^SUBSET^NEXT`: continuation re-drive for a delete subset.
    DeleteSubsetNext {
        /// Subset Control Block id.
        subset: SubsetId,
        /// New exclusive begin-key.
        after: Vec<u8>,
    },
    /// Single-record update with expressions and constraint (the
    /// read-before-write eliminator for point updates).
    UpdatePoint {
        /// Enclosing transaction.
        txn: TxnId,
        /// Target file.
        file: FileId,
        /// Encoded primary key.
        key: Vec<u8>,
        /// Update expressions over the record at hand.
        sets: SetList,
        /// Integrity constraint on the new record.
        constraint: Option<Expr>,
    },
    /// Blocked sequential insert (the paper's *Opportunities for Future
    /// Performance Enhancements*): many records in one message. The File
    /// System must hold a lock on the target key range by prior agreement.
    BlockedInsert {
        /// Enclosing transaction.
        txn: TxnId,
        /// Target file.
        file: FileId,
        /// `(key, record)` pairs in key order.
        records: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// Release a Subset Control Block early (statement closed).
    CloseSubset {
        /// Subset Control Block id.
        subset: SubsetId,
    },
    /// Buffered `UPDATE WHERE CURRENT` (future-work extension): full new
    /// images for records the requester's cursor updated, in one message.
    BlockedUpdate {
        /// Enclosing transaction.
        txn: TxnId,
        /// Target file.
        file: FileId,
        /// `(key, full new record image)` pairs.
        records: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// Buffered `DELETE WHERE CURRENT` (future-work extension).
    BlockedDelete {
        /// Enclosing transaction.
        txn: TxnId,
        /// Target file.
        file: FileId,
        /// Keys of records the cursor deleted.
        keys: Vec<Vec<u8>>,
    },

    // ----- relative files (direct access by record number) -----
    /// Write (insert or replace) the slot at `recnum`.
    RelativeWrite {
        /// Enclosing transaction.
        txn: TxnId,
        /// Target relative file.
        file: FileId,
        /// Record number.
        recnum: u64,
        /// Record bytes (at most the file's slot size).
        record: Vec<u8>,
    },
    /// Read the slot at `recnum`.
    RelativeRead {
        /// Target relative file.
        file: FileId,
        /// Record number.
        recnum: u64,
    },
    /// Delete the slot at `recnum`.
    RelativeDelete {
        /// Enclosing transaction.
        txn: TxnId,
        /// Target relative file.
        file: FileId,
        /// Record number.
        recnum: u64,
    },

    // ----- entry-sequenced files (insert at EOF only) -----
    /// Append an entry at EOF; replies with its stable address.
    /// Entry-sequenced files are non-audited in this reproduction (ENSCRIBE
    /// supported non-audited files; appends are not transactional).
    EntryAppend {
        /// Target entry-sequenced file.
        file: FileId,
        /// Entry bytes.
        record: Vec<u8>,
    },
    /// Read the entry at `address`.
    EntryRead {
        /// Target entry-sequenced file.
        file: FileId,
        /// Address returned by `EntryAppend`.
        address: u64,
    },
}

fn opt_len(v: &Option<Vec<u8>>) -> usize {
    1 + v.as_ref().map_or(0, Vec::len)
}

impl DpRequest {
    /// Wire size in bytes for message accounting. Header of 16 bytes plus
    /// variant payload.
    pub fn wire_size(&self) -> usize {
        16 + match self {
            DpRequest::CreateFile { kind } => match kind {
                FileKind::KeySequenced(desc) => desc.encode_bytes().len(),
                FileKind::Relative { .. } => 8,
                FileKind::EntrySequenced => 8,
            },
            DpRequest::FlushCache => 0,
            DpRequest::Read { key, .. } => 8 + key.len(),
            DpRequest::ReadNext { after, .. } => 9 + opt_len(after),
            DpRequest::ReadSeqBlock { after, .. } => 8 + opt_len(after),
            DpRequest::Insert { key, record, .. } => 8 + key.len() + record.len(),
            DpRequest::UpdateRecord { key, record, .. } => 9 + key.len() + record.len(),
            DpRequest::DeleteRecord { key, .. } => 8 + key.len(),
            DpRequest::Lock { key, .. } => 9 + opt_len(key),
            DpRequest::GetSubsetFirst {
                range,
                predicate,
                projection,
                ..
            } => {
                10 + range.wire_size()
                    + predicate.as_ref().map_or(1, Expr::wire_size)
                    + projection.as_ref().map_or(1, |p| 1 + 2 * p.len())
            }
            DpRequest::GetSubsetNext { after, .. }
            | DpRequest::UpdateSubsetNext { after, .. }
            | DpRequest::DeleteSubsetNext { after, .. } => 8 + after.len(),
            DpRequest::UpdateSubsetFirst {
                range,
                predicate,
                sets,
                constraint,
                ..
            } => {
                8 + range.wire_size()
                    + predicate.as_ref().map_or(1, Expr::wire_size)
                    + sets.wire_size()
                    + constraint.as_ref().map_or(1, Expr::wire_size)
            }
            DpRequest::DeleteSubsetFirst {
                range, predicate, ..
            } => 8 + range.wire_size() + predicate.as_ref().map_or(1, Expr::wire_size),
            DpRequest::UpdatePoint {
                key,
                sets,
                constraint,
                ..
            } => 8 + key.len() + sets.wire_size() + constraint.as_ref().map_or(1, Expr::wire_size),
            DpRequest::BlockedInsert { records, .. } => {
                8 + records
                    .iter()
                    .map(|(k, r)| 4 + k.len() + r.len())
                    .sum::<usize>()
            }
            DpRequest::CloseSubset { .. } => 8,
            DpRequest::BlockedUpdate { records, .. } => {
                8 + records
                    .iter()
                    .map(|(k, r)| 4 + k.len() + r.len())
                    .sum::<usize>()
            }
            DpRequest::BlockedDelete { keys, .. } => {
                8 + keys.iter().map(|k| 2 + k.len()).sum::<usize>()
            }
            DpRequest::RelativeWrite { record, .. } => 16 + record.len(),
            DpRequest::RelativeRead { .. } | DpRequest::RelativeDelete { .. } => 16,
            DpRequest::EntryAppend { record, .. } => 8 + record.len(),
            DpRequest::EntryRead { .. } => 16,
        }
    }

    /// Short verb name in the paper's style, used to label trace events.
    pub fn name(&self) -> &'static str {
        match self {
            DpRequest::CreateFile { .. } => "CREATE^FILE",
            DpRequest::FlushCache => "FLUSH^CACHE",
            DpRequest::Read { .. } => "READ",
            DpRequest::ReadNext { .. } => "READ^NEXT",
            DpRequest::ReadSeqBlock { .. } => "READ^SEQ^BLOCK",
            DpRequest::Insert { .. } => "INSERT",
            DpRequest::UpdateRecord { .. } => "WRITE",
            DpRequest::DeleteRecord { .. } => "DELETE",
            DpRequest::Lock { .. } => "LOCK",
            DpRequest::GetSubsetFirst { mode, .. } => match mode {
                SubsetMode::Vsbb => "GET^FIRST^VSBB",
                SubsetMode::Rsbb => "GET^FIRST^RSBB",
            },
            DpRequest::GetSubsetNext { .. } => "GET^NEXT",
            DpRequest::UpdateSubsetFirst { .. } => "UPDATE^SUBSET^FIRST",
            DpRequest::UpdateSubsetNext { .. } => "UPDATE^SUBSET^NEXT",
            DpRequest::DeleteSubsetFirst { .. } => "DELETE^SUBSET^FIRST",
            DpRequest::DeleteSubsetNext { .. } => "DELETE^SUBSET^NEXT",
            DpRequest::UpdatePoint { .. } => "UPDATE^POINT",
            DpRequest::BlockedInsert { .. } => "BLOCKED^INSERT",
            DpRequest::CloseSubset { .. } => "CLOSE^SUBSET",
            DpRequest::BlockedUpdate { .. } => "BLOCKED^UPDATE",
            DpRequest::BlockedDelete { .. } => "BLOCKED^DELETE",
            DpRequest::RelativeWrite { .. } => "RELATIVE^WRITE",
            DpRequest::RelativeRead { .. } => "RELATIVE^READ",
            DpRequest::RelativeDelete { .. } => "RELATIVE^DELETE",
            DpRequest::EntryAppend { .. } => "ENTRY^APPEND",
            DpRequest::EntryRead { .. } => "ENTRY^READ",
        }
    }

    /// Is this a continuation re-drive (for message-kind attribution)?
    pub fn is_redrive(&self) -> bool {
        matches!(
            self,
            DpRequest::GetSubsetNext { .. }
                | DpRequest::UpdateSubsetNext { .. }
                | DpRequest::DeleteSubsetNext { .. }
        )
    }
}

/// Errors a Disk Process reports to the File System.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// No such file on this volume.
    BadFile(FileId),
    /// Record not found.
    NotFound,
    /// Insert of an existing key.
    DuplicateKey,
    /// Lock conflict with another transaction.
    Locked {
        /// Holder of the conflicting lock.
        holder: TxnId,
    },
    /// Waiting for the conflicting holder would deadlock. The youngest
    /// transaction in the cycle is chosen as the victim; when the victim
    /// is the requester itself this error tells it to abort, otherwise the
    /// victim was doomed at the TMF and will learn on its next request.
    Deadlock {
        /// The deadlock victim (youngest transaction in the cycle).
        victim: TxnId,
    },
    /// The requester out-waited the lock-wait timeout budget and has been
    /// bounced from the wait queue; it should abort and retry.
    LockTimeout {
        /// The timed-out requester.
        victim: TxnId,
    },
    /// Integrity constraint rejected the new record.
    ConstraintViolation,
    /// Expression evaluation failed (type error, division by zero, ...).
    EvalFailed(String),
    /// Record/row malformed for the file's descriptor.
    BadRecord(String),
    /// Unknown Subset Control Block (closed or never opened).
    BadSubset(SubsetId),
    /// Attempt to update a primary-key field.
    KeyUpdateNotAllowed,
    /// Operation illegal for the file kind.
    WrongFileKind,
}

impl std::fmt::Display for DpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpError::BadFile(id) => write!(f, "no file {id} on this volume"),
            DpError::NotFound => write!(f, "record not found"),
            DpError::DuplicateKey => write!(f, "duplicate key"),
            DpError::Locked { holder } => write!(f, "record locked by {holder}"),
            DpError::Deadlock { victim } => {
                write!(
                    f,
                    "deadlock detected; transaction {victim} chosen as victim"
                )
            }
            DpError::LockTimeout { victim } => {
                write!(f, "lock wait timeout; transaction {victim} doomed")
            }
            DpError::ConstraintViolation => write!(f, "integrity constraint violated"),
            DpError::EvalFailed(e) => write!(f, "expression evaluation failed: {e}"),
            DpError::BadRecord(e) => write!(f, "malformed record: {e}"),
            DpError::BadSubset(id) => write!(f, "unknown subset control block {id}"),
            DpError::KeyUpdateNotAllowed => write!(f, "primary key fields cannot be updated"),
            DpError::WrongFileKind => write!(f, "operation illegal for this file structure"),
        }
    }
}

impl std::error::Error for DpError {}

/// A reply message on the FS-DP interface.
#[derive(Debug, Clone)]
pub enum DpReply {
    /// Generic success.
    Ok,
    /// File created.
    FileCreated(FileId),
    /// Point-read result.
    Record(Option<Vec<u8>>),
    /// Stable address of an appended entry.
    Appended(u64),
    /// A (real or virtual) sequential block plus re-drive state.
    Subset {
        /// Encoded rows: full records (RSBB) or projected rows (VSBB).
        rows: Vec<Vec<u8>>,
        /// Key of the last record *processed* (not necessarily returned) —
        /// the re-drive continuation point.
        last_key: Option<Vec<u8>>,
        /// True when the key range is exhausted (no re-drive needed).
        done: bool,
        /// Subset Control Block id (present on FIRST replies that need
        /// re-driving).
        subset: Option<SubsetId>,
        /// Records examined by this request execution.
        examined: u32,
        /// Records selected/updated/deleted by this request execution.
        affected: u32,
    },
    /// Request failed.
    Error(DpError),
}

impl DpReply {
    /// Wire size in bytes for message accounting.
    pub fn wire_size(&self) -> usize {
        16 + match self {
            DpReply::Ok | DpReply::FileCreated(_) | DpReply::Appended(_) => 8,
            DpReply::Record(r) => 1 + r.as_ref().map_or(0, Vec::len),
            DpReply::Subset { rows, last_key, .. } => {
                rows.iter().map(|r| 2 + r.len()).sum::<usize>()
                    + 1
                    + last_key.as_ref().map_or(0, Vec::len)
                    + 10
            }
            DpReply::Error(_) => 8,
        }
    }

    /// Unwrap into a result, mapping `Error` replies to `Err`.
    pub fn into_result(self) -> Result<DpReply, DpError> {
        match self {
            DpReply::Error(e) => Err(e),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_records::{CmpOp, Value};

    #[test]
    fn wire_sizes_scale_with_content() {
        let small = DpRequest::Read {
            txn: None,
            file: 0,
            key: vec![0; 4],
            lock: ReadLock::None,
        };
        let big = DpRequest::Read {
            txn: None,
            file: 0,
            key: vec![0; 64],
            lock: ReadLock::None,
        };
        assert!(big.wire_size() > small.wire_size());

        let with_pred = DpRequest::GetSubsetFirst {
            txn: None,
            file: 0,
            range: KeyRange::all(),
            predicate: Some(Expr::field_cmp(3, CmpOp::Gt, Value::Double(32000.0))),
            projection: Some(vec![1, 2]),
            mode: SubsetMode::Vsbb,
            lock: ReadLock::None,
        };
        let without = DpRequest::GetSubsetFirst {
            txn: None,
            file: 0,
            range: KeyRange::all(),
            predicate: None,
            projection: None,
            mode: SubsetMode::Rsbb,
            lock: ReadLock::None,
        };
        assert!(with_pred.wire_size() > without.wire_size());
    }

    #[test]
    fn redrive_classification() {
        assert!(DpRequest::GetSubsetNext {
            subset: 1,
            after: vec![]
        }
        .is_redrive());
        assert!(!DpRequest::FlushCache.is_redrive());
    }

    #[test]
    fn reply_size_counts_rows() {
        let empty = DpReply::Subset {
            rows: vec![],
            last_key: None,
            done: true,
            subset: None,
            examined: 0,
            affected: 0,
        };
        let full = DpReply::Subset {
            rows: vec![vec![0; 100]; 10],
            last_key: Some(vec![0; 8]),
            done: false,
            subset: Some(1),
            examined: 10,
            affected: 10,
        };
        assert!(full.wire_size() > empty.wire_size() + 1000);
    }

    #[test]
    fn error_replies_convert_to_err() {
        assert!(DpReply::Error(DpError::NotFound).into_result().is_err());
        assert!(DpReply::Ok.into_result().is_ok());
    }
}
