//! Bridging the access methods to the buffer pool.
//!
//! The B-tree (and the other file structures) see a [`nsql_btree::BlockStore`];
//! this module implements it over the Disk Process's [`BufferPool`], adding:
//!
//! * the **current-LSN tag** — every block written during a record
//!   operation is stamped with the audit LSN of that operation, which is
//!   what the write-ahead-log check in the cache keys on;
//! * the **scan options** — while a set-oriented request is executing, leaf
//!   reads go through the bulk-I/O / pre-fetch path;
//! * the volume **block allocator** (block 0 is the volume label).

use nsql_btree::{BlockNo, BlockStore};
use nsql_cache::{BufferPool, ScanOptions};
use nsql_sim::sync::Mutex;
use std::cell::Cell;

/// Volume block allocator. Block 0 is reserved for the volume label.
#[derive(Debug)]
pub struct Allocator {
    next: BlockNo,
    free: Vec<BlockNo>,
}

impl Allocator {
    /// Allocator for a fresh volume (block 0 reserved).
    pub fn new() -> Self {
        Allocator {
            next: 1,
            free: Vec::new(),
        }
    }

    /// Allocator recovered after a crash: resume after the highest block
    /// ever written. Blocks freed before the crash leak (documented
    /// simplification; a real system re-derives the free list from file
    /// labels).
    pub fn recovered(disk_len: usize) -> Self {
        Allocator {
            next: (disk_len as BlockNo).max(1),
            free: Vec::new(),
        }
    }

    /// Allocate a block number.
    pub fn alloc(&mut self) -> BlockNo {
        if let Some(b) = self.free.pop() {
            return b;
        }
        let b = self.next;
        self.next += 1;
        b
    }

    /// Free a block number.
    pub fn free(&mut self, b: BlockNo) {
        self.free.push(b);
    }

    /// High-water mark (tests).
    pub fn high_water(&self) -> BlockNo {
        self.next
    }
}

impl Default for Allocator {
    fn default() -> Self {
        Self::new()
    }
}

/// The per-operation view of the volume's blocks.
pub struct DpStore<'a> {
    /// The Disk Process's buffer pool.
    pub pool: &'a BufferPool,
    /// The volume's allocator.
    pub alloc: &'a Mutex<Allocator>,
    /// Audit LSN stamped onto blocks written by the current operation.
    pub lsn: Cell<u64>,
    /// Scan behaviour for `read_for_scan` during the current operation.
    pub scan: Cell<ScanOptions>,
}

impl<'a> DpStore<'a> {
    /// A store view with no audit tag and point-access reads.
    pub fn new(pool: &'a BufferPool, alloc: &'a Mutex<Allocator>) -> Self {
        DpStore {
            pool,
            alloc,
            lsn: Cell::new(0),
            scan: Cell::new(ScanOptions::default()),
        }
    }
}

impl BlockStore for DpStore<'_> {
    fn block_size(&self) -> usize {
        self.pool.disk().block_size()
    }

    fn read(&self, block: BlockNo) -> Vec<u8> {
        self.pool
            .read(block)
            .unwrap_or_else(|e| panic!("volume read failed: {e}"))
    }

    fn read_for_scan(&self, block: BlockNo) -> Vec<u8> {
        self.pool
            .read_scan(block, self.scan.get())
            .unwrap_or_else(|e| panic!("volume scan read failed: {e}"))
    }

    fn will_need(&self, block: BlockNo) {
        if self.scan.get().prefetch {
            self.pool.prefetch(block);
        }
    }

    fn write(&self, block: BlockNo, data: Vec<u8>) {
        self.pool
            .write(block, data, self.lsn.get())
            .unwrap_or_else(|e| panic!("volume write failed: {e}"))
    }

    fn alloc(&self) -> BlockNo {
        self.alloc.lock().alloc()
    }

    fn free(&self, block: BlockNo) {
        self.alloc.lock().free(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_cache::NoWal;
    use nsql_disk::Disk;
    use nsql_sim::Sim;
    use std::sync::Arc;

    #[test]
    fn allocator_reserves_label_block() {
        let mut a = Allocator::new();
        assert_eq!(a.alloc(), 1);
        assert_eq!(a.alloc(), 2);
        a.free(1);
        assert_eq!(a.alloc(), 1);
    }

    #[test]
    fn recovered_allocator_resumes_past_disk() {
        let a = Allocator::recovered(17);
        assert_eq!(a.high_water(), 17);
    }

    #[test]
    fn store_round_trips_through_pool() {
        let sim = Sim::new();
        let disk = Disk::new(sim.clone(), "$D", false);
        let pool = BufferPool::new(sim, disk, Arc::new(NoWal), 16);
        let alloc = Mutex::new(Allocator::new());
        let store = DpStore::new(&pool, &alloc);
        let b = store.alloc();
        store.lsn.set(7);
        store.write(b, vec![1, 2, 3]);
        assert_eq!(store.read(b), vec![1, 2, 3]);
    }
}
