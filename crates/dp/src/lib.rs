#![warn(missing_docs)]
//! The Disk Process — the low-level disk file server of the Tandem OS.
//!
//! "The implementation moves a large part of the new SQL function to the
//! server side of the disk I/O subsystem." A [`DiskProcess`] owns one disk
//! volume and integrates every component the paper enumerates:
//!
//! * **record management** — the key-sequenced / relative / entry-sequenced
//!   access methods (`nsql-btree`);
//! * **cache management** — an LRU buffer pool obeying write-ahead log,
//!   with bulk I/O, pre-fetch, and write-behind (`nsql-cache`);
//! * **lock management** — file / record / generic / virtual-block-group
//!   locks (`nsql-lock`);
//! * **transaction support** — audit generation (full-image for ENSCRIBE
//!   requests, field-compressed for SQL requests), per-transaction undo,
//!   participation in TMF's end-transaction protocol, and crash recovery
//!   from the audit trail (`nsql-tmf`).
//!
//! Requests arrive as [`protocol::DpRequest`] messages on the bus. The SQL
//! set-oriented requests evaluate predicates, projections, update
//! expressions and integrity constraints *here*, at the data source, under
//! the continuation re-drive protocol with Subset Control Blocks.

pub mod label;
pub mod protocol;
pub mod store;

pub use label::{FileLabel, VolumeLabel};
pub use protocol::{
    AuditMode, DpError, DpReply, DpRequest, FileId, FileKind, ReadLock, SubsetId, SubsetMode,
    SyncId, SyncRequest,
};
pub use store::{Allocator, DpStore};

use nsql_btree::{BTreeFile, EntrySequencedFile, RelativeFile, ScanControl, TreeError};
use nsql_cache::{BufferPool, ScanOptions, WalGate};
use nsql_disk::Disk;
use nsql_lock::{LockError, LockManager, LockMode, LockScope, TxnId};
use nsql_msg::{Bus, CpuId, MsgKind, Response, Server};
use nsql_records::row::{decode_row, encode_row, extract_field, RawRecord};
use nsql_records::{Expr, OwnedBound, RecordDescriptor, SetList, Value};
use nsql_sim::sync::Mutex;
use nsql_sim::trace::TraceEventKind;
use nsql_sim::Wait;
use nsql_sim::{CpuLayer, Ctr, EntityKind, MeasureRecord, Micros, Sim};
use nsql_tmf::audit::FieldImage;
use nsql_tmf::txn::{EndTxnReply, EndTxnRequest};
use nsql_tmf::{AuditBody, Trail, TxnManager, VolumeAuditor};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Tunables of a Disk Process.
#[derive(Debug, Clone)]
pub struct DpConfig {
    /// Buffer-pool capacity in frames.
    pub cache_frames: usize,
    /// Reply (virtual block) buffer size in bytes: a full buffer triggers a
    /// continuation re-drive.
    pub reply_buffer: usize,
    /// Records examined per request execution before a re-drive — the
    /// elapsed/processor-time limit that prevents one set-oriented request
    /// from monopolizing the Disk Process.
    pub max_records_per_request: u32,
    /// Send process-pair checkpoint messages to the backup.
    pub checkpointing: bool,
    /// Run write-behind during idle time after set-oriented requests.
    pub write_behind: bool,
    /// Read sequential strings of blocks with bulk I/O during set-oriented
    /// scans.
    pub bulk_io: bool,
    /// Pre-fetch the next string asynchronously during set-oriented scans.
    pub prefetch: bool,
    /// Lock-wait timeout budget in virtual microseconds; a waiter that
    /// out-waits the budget is bounced with [`DpError::LockTimeout`] so
    /// convoy stragglers abort and retry instead of queueing forever.
    /// `0` disables the timeout (the default).
    pub lock_wait_timeout_us: u64,
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig {
            cache_frames: 256,
            reply_buffer: 4096,
            max_records_per_request: 500,
            checkpointing: false,
            write_behind: true,
            bulk_io: true,
            prefetch: true,
            lock_wait_timeout_us: 0,
        }
    }
}

/// WAL gate wired to the audit subsystem: durability comes from the trail;
/// forcing first ships the volume's unsent audit.
struct AuditorGate {
    auditor: Arc<VolumeAuditor>,
    trail: Arc<Trail>,
}

impl WalGate for AuditorGate {
    fn durable(&self, lsn: u64, now: Micros) -> bool {
        lsn == 0 || self.trail.durable_lsn(now) >= lsn
    }
    fn force(&self, lsn: u64, now: Micros) -> Micros {
        self.auditor.send();
        self.trail.force_up_to(lsn, now)
    }
}

/// Per-transaction undo entry kept by the Disk Process until end-txn.
#[derive(Debug, Clone)]
enum UndoOp {
    Insert {
        file: FileId,
        key: Vec<u8>,
    },
    Delete {
        file: FileId,
        key: Vec<u8>,
        before: Vec<u8>,
    },
    UpdateFull {
        file: FileId,
        key: Vec<u8>,
        before: Vec<u8>,
    },
    UpdateFields {
        file: FileId,
        key: Vec<u8>,
        before: FieldImage,
    },
}

/// What a Subset Control Block remembers between re-drives: "these latter
/// were saved in the Subset Control Block which was created by the Disk
/// Process at GET^FIRST time".
#[derive(Debug, Clone)]
struct Scb {
    txn: Option<TxnId>,
    file: FileId,
    end: OwnedBound,
    predicate: Option<Expr>,
    op: ScbOp,
}

#[derive(Debug, Clone)]
enum ScbOp {
    Read {
        mode: SubsetMode,
        projection: Option<Vec<u16>>,
        lock: ReadLock,
    },
    Update {
        sets: SetList,
        constraint: Option<Expr>,
    },
    Delete,
}

/// Replies remembered per opener for duplicate suppression (Tandem kept a
/// similar small "sync block" per opener).
const REPLY_CACHE_PER_OPENER: usize = 8;

#[derive(Default)]
struct DpState {
    label: VolumeLabel,
    subsets: HashMap<SubsetId, Scb>,
    next_subset: SubsetId,
    undo: HashMap<TxnId, Vec<UndoOp>>,
    /// Per-opener cache of the last few `(sync seq, reply)` pairs: a
    /// retransmitted request (lost reply, duplicate delivery) is answered
    /// from here instead of being re-executed.
    replies: HashMap<u64, VecDeque<(u64, DpReply)>>,
}

/// One Disk Process: the server for one disk volume.
pub struct DiskProcess {
    sim: Sim,
    bus: Arc<Bus>,
    /// Process name (`$DATA1`); also the volume name.
    pub name: String,
    cpu: CpuId,
    trail: Arc<Trail>,
    txnmgr: Arc<TxnManager>,
    auditor: Arc<VolumeAuditor>,
    /// The volume's lock table.
    pub locks: LockManager,
    pool: BufferPool,
    alloc: Mutex<Allocator>,
    /// Tunables (mutable for experiment sweeps).
    pub config: Mutex<DpConfig>,
    state: Mutex<DpState>,
    /// MEASURE record for this process.
    rec: Arc<MeasureRecord>,
    /// MEASURE record for this volume's Subset Control Blocks.
    scb_rec: Arc<MeasureRecord>,
    /// Per-open-file MEASURE records (`$VOL#Fn`), created on first touch.
    file_recs: Mutex<HashMap<FileId, Arc<MeasureRecord>>>,
}

/// Everything a Disk Process plugs into.
#[derive(Clone)]
pub struct DpContext {
    /// Simulation context.
    pub sim: Sim,
    /// Message bus.
    pub bus: Arc<Bus>,
    /// The audit-trail Disk Process.
    pub trail: Arc<Trail>,
    /// The transaction manager.
    pub txnmgr: Arc<TxnManager>,
    /// The cluster-wide LSN sequencer.
    pub lsns: Arc<nsql_tmf::LsnSource>,
}

impl DiskProcess {
    /// Create a Disk Process over a **fresh** volume: formats the label and
    /// registers the process on the bus.
    pub fn format(
        ctx: &DpContext,
        name: &str,
        cpu: CpuId,
        disk: Arc<Disk>,
        config: DpConfig,
    ) -> Arc<DiskProcess> {
        let dp = Self::build(ctx, name, cpu, disk, config, true);
        let label = dp.state.lock().label.clone();
        dp.persist_label(&label);
        ctx.bus.register(name, cpu, dp.clone());
        dp
    }

    /// Open a Disk Process over an **existing** volume (takeover or
    /// restart): reads the label from block 0, rebuilds the allocator, and
    /// registers on the bus. Call [`DiskProcess::recover`] afterwards to
    /// redo/undo from the audit trail.
    pub fn open(
        ctx: &DpContext,
        name: &str,
        cpu: CpuId,
        disk: Arc<Disk>,
        config: DpConfig,
    ) -> Arc<DiskProcess> {
        let dp = Self::build(ctx, name, cpu, disk, config, false);
        {
            let bytes = dp.pool.read(0).expect("volume label unreadable");
            dp.state.lock().label = VolumeLabel::decode(&bytes);
        }
        ctx.bus.register(name, cpu, dp.clone());
        dp
    }

    fn build(
        ctx: &DpContext,
        name: &str,
        cpu: CpuId,
        disk: Arc<Disk>,
        config: DpConfig,
        fresh: bool,
    ) -> Arc<DiskProcess> {
        let auditor = Arc::new(VolumeAuditor::new(
            Arc::clone(&ctx.bus),
            cpu,
            name,
            Arc::clone(&ctx.lsns),
        ));
        let gate = Arc::new(AuditorGate {
            auditor: Arc::clone(&auditor),
            trail: Arc::clone(&ctx.trail),
        });
        let pool = BufferPool::new(
            ctx.sim.clone(),
            Arc::clone(&disk),
            gate,
            config.cache_frames,
        );
        let alloc = if fresh {
            Allocator::new()
        } else {
            Allocator::recovered(disk.len_blocks())
        };
        let locks = LockManager::new();
        locks.set_wait_timeout(config.lock_wait_timeout_us);
        Arc::new(DiskProcess {
            sim: ctx.sim.clone(),
            bus: Arc::clone(&ctx.bus),
            name: name.to_string(),
            cpu,
            trail: Arc::clone(&ctx.trail),
            txnmgr: Arc::clone(&ctx.txnmgr),
            auditor,
            locks,
            pool,
            alloc: Mutex::new(alloc),
            config: Mutex::new(config),
            state: Mutex::new(DpState::default()),
            rec: ctx.sim.measure.entity(EntityKind::Process, name),
            scb_rec: ctx.sim.measure.entity(EntityKind::Scb, name),
            file_recs: Mutex::new(HashMap::new()),
        })
    }

    /// The buffer pool (tests and experiments).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The CPU this Disk Process runs on.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Tune the audit send-buffer threshold (experiment E15's ablation).
    pub fn set_audit_send_threshold(&self, bytes: usize) {
        self.auditor.set_send_threshold(bytes);
    }

    /// Arm (or, with `0`, disarm) the lock-wait timeout at runtime; also
    /// settable at construction via [`DpConfig::lock_wait_timeout_us`].
    pub fn set_lock_wait_timeout(&self, us: u64) {
        self.config.lock().lock_wait_timeout_us = us;
        self.locks.set_wait_timeout(us);
    }

    fn persist_label(&self, label: &VolumeLabel) {
        let bytes = label.encode();
        self.pool.write(0, bytes, 0).expect("label write failed");
        self.pool.flush_all().expect("label flush failed");
    }

    fn scan_options(&self) -> ScanOptions {
        let cfg = self.config.lock();
        ScanOptions {
            bulk: cfg.bulk_io,
            prefetch: cfg.prefetch,
        }
    }

    fn file_label(&self, file: FileId) -> Result<FileLabel, DpError> {
        self.state
            .lock()
            .label
            .files
            .get(&file)
            .cloned()
            .ok_or(DpError::BadFile(file))
    }

    fn descriptor(&self, label: &FileLabel) -> Result<RecordDescriptor, DpError> {
        match &label.kind {
            FileKind::KeySequenced(desc) => Ok(desc.clone()),
            FileKind::Relative { .. } | FileKind::EntrySequenced => Err(DpError::WrongFileKind),
        }
    }

    fn join_txn(&self, txn: TxnId) {
        self.txnmgr.join(txn, &self.name);
    }

    fn lock(
        &self,
        txn: TxnId,
        file: FileId,
        scope: LockScope,
        mode: LockMode,
    ) -> Result<(), DpError> {
        // Every branch below is mirrored by `crates/lint/src/lockmodel.rs`
        // (`nsql-lint check-locks`); a behavioral change here needs the
        // mirror updated in the same PR.
        //
        // A doomed transaction must not take new locks: fail fast so a
        // deadlock victim chosen while someone *else* was requesting learns
        // its fate on its very next request.
        if self.txnmgr.is_doomed(txn) {
            return Err(DpError::Deadlock { victim: txn });
        }
        match self.locks.acquire(txn, file, scope.clone(), mode) {
            Ok(()) => Ok(()),
            Err(LockError::Conflict { holder }) => {
                self.sim.metrics.lock_waits.inc();
                self.rec.bump(Ctr::LockWaits);
                // The blocked-then-bounced hop. Zero-cost by default, but
                // whatever it costs lands in the wait.lock category.
                self.sim
                    .clock
                    .advance_in(Wait::Lock, self.sim.cost.lock_wait_us);
                // Queue behind the holder; a closed waits-for cycle dooms
                // its youngest member, an exhausted budget dooms us.
                match self
                    .locks
                    .wait(txn, holder, file, scope, mode, self.sim.now())
                {
                    Err(LockError::Deadlock { victim }) => {
                        self.sim.metrics.deadlocks.inc();
                        self.rec.bump(Ctr::LockDeadlocks);
                        self.rec.bump(Ctr::DeadlockDetected);
                        self.rec.bump(Ctr::DeadlockVictims);
                        self.sim.trace_emit(|| TraceEventKind::LockWait {
                            txn: txn.0,
                            deadlock: true,
                        });
                        if victim == txn {
                            Err(DpError::Deadlock { victim })
                        } else {
                            // The victim is someone younger: doom it at the
                            // TMF so its client aborts and retries, and keep
                            // this (older) requester politely waiting.
                            self.txnmgr.doom(victim);
                            self.locks.stop_waiting(victim);
                            Err(DpError::Locked { holder })
                        }
                    }
                    Err(LockError::WaitTimeout { victim }) => {
                        self.rec.bump(Ctr::LockWaitTimeouts);
                        self.sim.trace_emit(|| TraceEventKind::LockWait {
                            txn: txn.0,
                            deadlock: false,
                        });
                        Err(DpError::LockTimeout { victim })
                    }
                    Ok(()) | Err(LockError::Conflict { .. }) => {
                        self.sim.trace_emit(|| TraceEventKind::LockWait {
                            txn: txn.0,
                            deadlock: false,
                        });
                        Err(DpError::Locked { holder })
                    }
                }
            }
            // acquire() only bounces with Conflict; these arms are
            // defensive completeness.
            Err(LockError::Deadlock { victim }) => {
                self.sim.metrics.deadlocks.inc();
                self.rec.bump(Ctr::LockDeadlocks);
                self.rec.bump(Ctr::DeadlockDetected);
                self.rec.bump(Ctr::DeadlockVictims);
                self.sim.trace_emit(|| TraceEventKind::LockWait {
                    txn: txn.0,
                    deadlock: true,
                });
                Err(DpError::Deadlock { victim })
            }
            Err(LockError::WaitTimeout { victim }) => {
                self.rec.bump(Ctr::LockWaitTimeouts);
                Err(DpError::LockTimeout { victim })
            }
        }
    }

    /// MEASURE record for one open file on this volume (`$VOL#Fn`).
    fn file_rec(&self, file: FileId) -> Arc<MeasureRecord> {
        let mut recs = self.file_recs.lock();
        Arc::clone(recs.entry(file).or_insert_with(|| {
            self.sim
                .measure
                .entity(EntityKind::File, &format!("{}#F{}", self.name, file))
        }))
    }

    fn push_undo(&self, txn: TxnId, op: UndoOp) {
        self.state.lock().undo.entry(txn).or_default().push(op);
    }

    /// Send a process-pair checkpoint to the backup, when enabled.
    fn checkpoint(&self, bytes: usize) {
        if !self.config.lock().checkpointing {
            return;
        }
        let backup = format!("{}-B", self.name);
        let _ = self
            .bus
            .request(self.cpu, &backup, MsgKind::Checkpoint, bytes, Box::new(()));
    }

    // ------------------------------------------------------------------
    // Request dispatch
    // ------------------------------------------------------------------

    fn handle_request(&self, req: DpRequest) -> DpReply {
        self.sim.cpu_work(CpuLayer::DiskProcess, 5);
        let result = match req {
            DpRequest::CreateFile { kind } => self.create_file(kind),
            DpRequest::FlushCache => {
                self.pool.flush_all().expect("flush failed");
                Ok(DpReply::Ok)
            }
            DpRequest::Read {
                txn,
                file,
                key,
                lock,
            } => self.read(txn, file, &key, lock),
            DpRequest::ReadNext {
                txn,
                file,
                after,
                lock,
            } => self.read_next(txn, file, after, lock),
            DpRequest::ReadSeqBlock { file, after, .. } => self.read_seq_block(file, after),
            DpRequest::Insert {
                txn,
                file,
                key,
                record,
            } => self.insert(txn, file, key, record),
            DpRequest::UpdateRecord {
                txn,
                file,
                key,
                record,
                audit,
            } => self.update_record(txn, file, key, record, audit),
            DpRequest::DeleteRecord { txn, file, key } => self.delete_record(txn, file, key),
            DpRequest::Lock {
                txn,
                file,
                key,
                mode,
            } => {
                self.join_txn(txn);
                let scope = match key {
                    Some(k) => LockScope::record(k),
                    None => LockScope::File,
                };
                self.lock(txn, file, scope, mode).map(|_| DpReply::Ok)
            }
            DpRequest::GetSubsetFirst {
                txn,
                file,
                range,
                predicate,
                projection,
                mode,
                lock,
            } => {
                let scb = Scb {
                    txn,
                    file,
                    end: range.end.clone(),
                    predicate,
                    op: ScbOp::Read {
                        mode,
                        projection,
                        lock,
                    },
                };
                self.run_subset(scb, range.begin, None)
            }
            DpRequest::GetSubsetNext { subset, after }
            | DpRequest::UpdateSubsetNext { subset, after }
            | DpRequest::DeleteSubsetNext { subset, after } => {
                let scb = {
                    let st = self.state.lock();
                    st.subsets
                        .get(&subset)
                        .cloned()
                        .ok_or(DpError::BadSubset(subset))
                };
                match scb {
                    Ok(scb) => {
                        let r = self.run_subset(scb, OwnedBound::Excluded(after), Some(subset));
                        if let Ok(DpReply::Subset { done: true, .. }) = &r {
                            self.state.lock().subsets.remove(&subset);
                        }
                        r
                    }
                    Err(e) => Err(e),
                }
            }
            DpRequest::UpdateSubsetFirst {
                txn,
                file,
                range,
                predicate,
                sets,
                constraint,
            } => {
                let scb = Scb {
                    txn: Some(txn),
                    file,
                    end: range.end.clone(),
                    predicate,
                    op: ScbOp::Update { sets, constraint },
                };
                self.run_subset(scb, range.begin, None)
            }
            DpRequest::DeleteSubsetFirst {
                txn,
                file,
                range,
                predicate,
            } => {
                let scb = Scb {
                    txn: Some(txn),
                    file,
                    end: range.end.clone(),
                    predicate,
                    op: ScbOp::Delete,
                };
                self.run_subset(scb, range.begin, None)
            }
            DpRequest::UpdatePoint {
                txn,
                file,
                key,
                sets,
                constraint,
            } => self.update_point(txn, file, key, sets, constraint),
            DpRequest::BlockedInsert { txn, file, records } => {
                self.blocked_insert(txn, file, records)
            }
            DpRequest::CloseSubset { subset } => {
                self.state.lock().subsets.remove(&subset);
                Ok(DpReply::Ok)
            }
            DpRequest::BlockedUpdate { txn, file, records } => {
                self.blocked_update(txn, file, records)
            }
            DpRequest::BlockedDelete { txn, file, keys } => self.blocked_delete(txn, file, keys),
            DpRequest::RelativeWrite {
                txn,
                file,
                recnum,
                record,
            } => self.relative_write(txn, file, recnum, record),
            DpRequest::RelativeRead { file, recnum } => self.relative_read(file, recnum),
            DpRequest::RelativeDelete { txn, file, recnum } => {
                self.relative_delete(txn, file, recnum)
            }
            DpRequest::EntryAppend { file, record } => self.entry_append(file, record),
            DpRequest::EntryRead { file, address } => self.entry_read(file, address),
        };
        match result {
            Ok(reply) => reply,
            Err(e) => DpReply::Error(e),
        }
    }

    fn create_file(&self, kind: FileKind) -> Result<DpReply, DpError> {
        let store = DpStore::new(&self.pool, &self.alloc);
        let anchor = match &kind {
            FileKind::KeySequenced(_) => BTreeFile::create(&store),
            FileKind::Relative { slot_size } => RelativeFile::create(&store, *slot_size as usize),
            FileKind::EntrySequenced => EntrySequencedFile::create(&store),
        };
        let label = {
            let mut st = self.state.lock();
            let id = st.label.next_file;
            st.label.next_file += 1;
            st.label.files.insert(id, FileLabel { id, kind, anchor });
            st.label.clone()
        };
        self.persist_label(&label);
        Ok(DpReply::FileCreated(label.next_file - 1))
    }

    fn read(
        &self,
        txn: Option<TxnId>,
        file: FileId,
        key: &[u8],
        lock: ReadLock,
    ) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        if let (Some(txn), ReadLock::Shared) = (txn, lock) {
            self.join_txn(txn);
            self.lock(txn, file, LockScope::record(key.to_vec()), LockMode::Shared)?;
        }
        let store = DpStore::new(&self.pool, &self.alloc);
        let tree = BTreeFile::open(&store, label.anchor);
        self.sim.cpu_work(CpuLayer::DiskProcess, 3);
        let found = tree.get(key);
        if found.is_some() {
            let frec = self.file_rec(file);
            frec.bump(Ctr::RecsExamined);
            frec.bump(Ctr::RecsSelected);
        }
        Ok(DpReply::Record(found))
    }

    /// ENSCRIBE record-at-a-time sequential read: one record per message.
    fn read_next(
        &self,
        txn: Option<TxnId>,
        file: FileId,
        after: Option<Vec<u8>>,
        lock: ReadLock,
    ) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        let store = DpStore::new(&self.pool, &self.alloc);
        let tree = BTreeFile::open(&store, label.anchor);
        let start = match &after {
            Some(k) => std::ops::Bound::Excluded(k.as_slice()),
            None => std::ops::Bound::Unbounded,
        };
        let mut found: Option<(Vec<u8>, Vec<u8>)> = None;
        tree.scan(start, |k, v| {
            found = Some((k.to_vec(), v.to_vec()));
            ScanControl::Stop
        });
        self.sim.cpu_work(CpuLayer::DiskProcess, 3);
        match found {
            None => Ok(DpReply::Record(None)),
            Some((k, v)) => {
                if let (Some(txn), ReadLock::Shared) = (txn, lock) {
                    self.join_txn(txn);
                    self.lock(txn, file, LockScope::record(k.clone()), LockMode::Shared)?;
                }
                let frec = self.file_rec(file);
                frec.bump(Ctr::RecsExamined);
                frec.bump(Ctr::RecsSelected);
                // The caller needs the key to continue; replies carry it in
                // a Subset-shaped message.
                Ok(DpReply::Subset {
                    rows: vec![v],
                    last_key: Some(k),
                    done: false,
                    subset: None,
                    examined: 1,
                    affected: 1,
                })
            }
        }
    }

    /// ENSCRIBE real sequential block buffering: return one physical
    /// block's worth of whole records. The File System holds the mandatory
    /// file lock.
    fn read_seq_block(&self, file: FileId, after: Option<Vec<u8>>) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        let store = DpStore::new(&self.pool, &self.alloc);
        store.scan.set(self.scan_options());
        let tree = BTreeFile::open(&store, label.anchor);
        let block_budget = self.pool.disk().block_size();
        let mut rows = Vec::new();
        let mut bytes = 0usize;
        let mut last_key: Option<Vec<u8>> = None;
        let mut full = false;
        let start = match &after {
            Some(k) => std::ops::Bound::Excluded(k.as_slice()),
            None => std::ops::Bound::Unbounded,
        };
        tree.scan(start, |k, v| {
            bytes += v.len();
            rows.push(v.to_vec());
            last_key = Some(k.to_vec());
            self.sim.cpu_work(CpuLayer::DiskProcess, 1);
            if bytes >= block_budget {
                full = true;
                ScanControl::Stop
            } else {
                ScanControl::Continue
            }
        });
        let frec = self.file_rec(file);
        frec.add(Ctr::RecsExamined, rows.len() as u64);
        frec.add(Ctr::RecsSelected, rows.len() as u64);
        Ok(DpReply::Subset {
            rows,
            last_key,
            done: !full,
            subset: None,
            examined: 0,
            affected: 0,
        })
    }

    fn insert(
        &self,
        txn: TxnId,
        file: FileId,
        key: Vec<u8>,
        record: Vec<u8>,
    ) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        self.join_txn(txn);
        self.lock(
            txn,
            file,
            LockScope::record(key.clone()),
            LockMode::Exclusive,
        )?;
        let lsn = self.auditor.log(
            txn,
            file,
            AuditBody::Insert {
                key: key.clone(),
                record: record.clone(),
            },
        );
        let store = DpStore::new(&self.pool, &self.alloc);
        store.lsn.set(lsn);
        let tree = BTreeFile::open(&store, label.anchor);
        tree.insert(&key, &record).map_err(|e| match e {
            TreeError::DuplicateKey => DpError::DuplicateKey,
            TreeError::NotFound => DpError::NotFound,
            TreeError::EntryTooLarge => DpError::BadRecord("record too large".into()),
        })?;
        self.sim.cpu_work(CpuLayer::DiskProcess, 4);
        self.push_undo(txn, UndoOp::Insert { file, key });
        self.checkpoint(64 + record.len());
        Ok(DpReply::Ok)
    }

    fn update_record(
        &self,
        txn: TxnId,
        file: FileId,
        key: Vec<u8>,
        record: Vec<u8>,
        audit: AuditMode,
    ) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        self.join_txn(txn);
        self.lock(
            txn,
            file,
            LockScope::record(key.clone()),
            LockMode::Exclusive,
        )?;
        let store = DpStore::new(&self.pool, &self.alloc);
        let tree = BTreeFile::open(&store, label.anchor);
        let before = tree.get(&key).ok_or(DpError::NotFound)?;
        let body = match audit {
            AuditMode::FullImage => AuditBody::UpdateFull {
                key: key.clone(),
                before: before.clone(),
                after: record.clone(),
            },
            AuditMode::FieldCompressed => {
                // Compute which fields changed by comparing images — this is
                // exactly the "costly" ENSCRIBE audit-compression option the
                // paper contrasts with SQL's free field knowledge.
                let desc = self.descriptor(&label)?;
                let (b, a) = diff_fields(&desc, &before, &record)
                    .map_err(|e| DpError::BadRecord(e.to_string()))?;
                self.sim
                    .cpu_work(CpuLayer::DiskProcess, desc.num_fields() as u64);
                AuditBody::UpdateFields {
                    key: key.clone(),
                    before: b,
                    after: a,
                }
            }
        };
        let lsn = self.auditor.log(txn, file, body);
        store.lsn.set(lsn);
        tree.update(&key, &record).map_err(|_| DpError::NotFound)?;
        self.sim.cpu_work(CpuLayer::DiskProcess, 4);
        self.push_undo(txn, UndoOp::UpdateFull { file, key, before });
        self.checkpoint(64 + record.len());
        Ok(DpReply::Ok)
    }

    fn delete_record(&self, txn: TxnId, file: FileId, key: Vec<u8>) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        self.join_txn(txn);
        self.lock(
            txn,
            file,
            LockScope::record(key.clone()),
            LockMode::Exclusive,
        )?;
        let store = DpStore::new(&self.pool, &self.alloc);
        let tree = BTreeFile::open(&store, label.anchor);
        let before = tree.get(&key).ok_or(DpError::NotFound)?;
        let lsn = self.auditor.log(
            txn,
            file,
            AuditBody::Delete {
                key: key.clone(),
                before: before.clone(),
            },
        );
        store.lsn.set(lsn);
        tree.delete(&key).map_err(|_| DpError::NotFound)?;
        self.sim.cpu_work(CpuLayer::DiskProcess, 4);
        self.push_undo(txn, UndoOp::Delete { file, key, before });
        self.checkpoint(96);
        Ok(DpReply::Ok)
    }

    fn update_point(
        &self,
        txn: TxnId,
        file: FileId,
        key: Vec<u8>,
        sets: SetList,
        constraint: Option<Expr>,
    ) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        let desc = self.descriptor(&label)?;
        check_no_key_updates(&desc, &sets)?;
        self.join_txn(txn);
        self.lock(
            txn,
            file,
            LockScope::record(key.clone()),
            LockMode::Exclusive,
        )?;
        let store = DpStore::new(&self.pool, &self.alloc);
        let tree = BTreeFile::open(&store, label.anchor);
        let before_bytes = tree.get(&key).ok_or(DpError::NotFound)?;
        let (new_bytes, before_img, after_img) =
            apply_sets(&self.sim, &desc, &before_bytes, &sets, constraint.as_ref())?;
        let lsn = self.auditor.log(
            txn,
            file,
            AuditBody::UpdateFields {
                key: key.clone(),
                before: before_img.clone(),
                after: after_img,
            },
        );
        store.lsn.set(lsn);
        tree.update(&key, &new_bytes)
            .map_err(|_| DpError::NotFound)?;
        self.push_undo(
            txn,
            UndoOp::UpdateFields {
                file,
                key,
                before: before_img,
            },
        );
        self.checkpoint(96);
        Ok(DpReply::Ok)
    }

    fn blocked_insert(
        &self,
        txn: TxnId,
        file: FileId,
        records: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<DpReply, DpError> {
        if records.is_empty() {
            return Ok(DpReply::Ok);
        }
        let label = self.file_label(file)?;
        self.join_txn(txn);
        // The whole target key range is locked as a group (by prior
        // agreement with the File System).
        let lo = records.first().expect("nonempty").0.clone();
        let hi = records.last().expect("nonempty").0.clone();
        self.lock(txn, file, LockScope::interval(lo, hi), LockMode::Exclusive)?;
        let store = DpStore::new(&self.pool, &self.alloc);
        let tree = BTreeFile::open(&store, label.anchor);
        let mut affected = 0u32;
        for (key, record) in records {
            let lsn = self.auditor.log(
                txn,
                file,
                AuditBody::Insert {
                    key: key.clone(),
                    record: record.clone(),
                },
            );
            store.lsn.set(lsn);
            tree.insert(&key, &record).map_err(|e| match e {
                TreeError::DuplicateKey => DpError::DuplicateKey,
                _ => DpError::BadRecord(e.to_string()),
            })?;
            self.sim.cpu_work(CpuLayer::DiskProcess, 3);
            self.push_undo(txn, UndoOp::Insert { file, key });
            affected += 1;
        }
        // Insert Control Block equivalent: let aged dirty strings go out.
        if self.config.lock().write_behind {
            self.pool.write_behind();
        }
        Ok(DpReply::Subset {
            rows: Vec::new(),
            last_key: None,
            done: true,
            subset: None,
            examined: affected,
            affected,
        })
    }

    // ------------------------------------------------------------------
    // Set-oriented execution under the re-drive protocol
    // ------------------------------------------------------------------

    /// Execute one request-message's worth of a subset operation starting
    /// at `begin`. `existing` is the SCB id on re-drives; on first
    /// executions a Subset Control Block is created when a re-drive will be
    /// needed.
    fn run_subset(
        &self,
        scb: Scb,
        begin: OwnedBound,
        existing: Option<SubsetId>,
    ) -> Result<DpReply, DpError> {
        let label = self.file_label(scb.file)?;
        let desc = self.descriptor(&label)?;
        let frec = self.file_rec(scb.file);
        if existing.is_some() {
            self.scb_rec.bump(Ctr::ScbRedrives);
        }
        if let ScbOp::Update { sets, .. } = &scb.op {
            check_no_key_updates(&desc, sets)?;
        }
        if let Some(txn) = scb.txn {
            self.join_txn(txn);
        }
        let cfg = self.config.lock().clone();
        // RSBB replies carry one physical block copy; VSBB virtual blocks
        // use the configured reply buffer.
        let reply_budget = match &scb.op {
            ScbOp::Read {
                mode: SubsetMode::Rsbb,
                ..
            } => self.pool.disk().block_size(),
            _ => cfg.reply_buffer,
        };
        let store = DpStore::new(&self.pool, &self.alloc);
        store.scan.set(self.scan_options());
        let tree = BTreeFile::open(&store, label.anchor);

        // Phase 1: scan, evaluating the single-variable query per record.
        let mut rows: Vec<Vec<u8>> = Vec::new();
        let mut matched: Vec<(Vec<u8>, Vec<u8>)> = Vec::new(); // update/delete candidates
        let mut first_selected: Option<Vec<u8>> = None;
        let mut reply_bytes = 0usize;
        let mut examined = 0u32;
        let mut last_key: Option<Vec<u8>> = None;
        let mut exhausted = true;
        let mut eval_error: Option<DpError> = None;
        let is_read = matches!(scb.op, ScbOp::Read { .. });
        let projection = match &scb.op {
            ScbOp::Read { projection, .. } => projection.clone(),
            _ => None,
        };

        tree.scan(begin.as_ref(), |k, v| {
            // Range end check.
            let in_range = match &scb.end {
                OwnedBound::Unbounded => true,
                OwnedBound::Included(e) => k <= e.as_slice(),
                OwnedBound::Excluded(e) => k < e.as_slice(),
            };
            if !in_range {
                return ScanControl::Stop;
            }
            examined += 1;
            self.sim.metrics.dp_records_examined.inc();
            frec.bump(Ctr::RecsExamined);
            let raw = RawRecord {
                desc: &desc,
                bytes: v,
            };
            let selected = match &scb.predicate {
                None => true,
                Some(p) => {
                    self.sim
                        .cpu_work(CpuLayer::DiskProcess, 1 + p.eval_cost() / 2);
                    match p.passes(&raw) {
                        Ok(sel) => sel,
                        Err(e) => {
                            eval_error = Some(DpError::EvalFailed(e.to_string()));
                            return ScanControl::Stop;
                        }
                    }
                }
            };
            last_key = Some(k.to_vec());
            if selected {
                self.sim.metrics.dp_records_selected.inc();
                frec.bump(Ctr::RecsSelected);
                if first_selected.is_none() {
                    first_selected = Some(k.to_vec());
                }
                if is_read {
                    let row = match &projection {
                        None => v.to_vec(),
                        Some(fields) => match project_record(&desc, v, fields) {
                            Ok(r) => r,
                            Err(e) => {
                                eval_error = Some(e);
                                return ScanControl::Stop;
                            }
                        },
                    };
                    reply_bytes += row.len() + 2;
                    rows.push(row);
                } else {
                    matched.push((k.to_vec(), v.to_vec()));
                }
            }
            self.sim.cpu_work(CpuLayer::DiskProcess, 1);
            if reply_bytes >= reply_budget {
                exhausted = false; // full (virtual) block: re-drive
                return ScanControl::Stop;
            }
            if examined >= cfg.max_records_per_request {
                exhausted = false; // time slice expired: re-drive
                return ScanControl::Stop;
            }
            ScanControl::Continue
        });
        if let Some(e) = eval_error {
            return Err(e);
        }

        // Locking: a read subset with locking group-locks the span of the
        // virtual block ("the records of the virtual block are locked as a
        // group").
        if let (
            ScbOp::Read {
                lock: ReadLock::Shared,
                ..
            },
            Some(txn),
            Some(lo),
            Some(hi),
        ) = (&scb.op, scb.txn, first_selected.clone(), last_key.clone())
        {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            self.lock(txn, scb.file, LockScope::interval(lo, hi), LockMode::Shared)?;
        }

        // Phase 2 (update/delete): apply to the matched records.
        let mut affected = rows.len() as u32;
        match &scb.op {
            ScbOp::Read { .. } => {}
            ScbOp::Update { sets, constraint } => {
                let txn = scb.txn.expect("update subset requires a transaction");
                affected = 0;
                for (key, before_bytes) in &matched {
                    self.lock(
                        txn,
                        scb.file,
                        LockScope::record(key.clone()),
                        LockMode::Exclusive,
                    )?;
                    let (new_bytes, before_img, after_img) =
                        apply_sets(&self.sim, &desc, before_bytes, sets, constraint.as_ref())?;
                    let lsn = self.auditor.log(
                        txn,
                        scb.file,
                        AuditBody::UpdateFields {
                            key: key.clone(),
                            before: before_img.clone(),
                            after: after_img,
                        },
                    );
                    store.lsn.set(lsn);
                    tree.update(key, &new_bytes)
                        .map_err(|_| DpError::NotFound)?;
                    self.push_undo(
                        txn,
                        UndoOp::UpdateFields {
                            file: scb.file,
                            key: key.clone(),
                            before: before_img,
                        },
                    );
                    self.sim.cpu_work(CpuLayer::DiskProcess, 3);
                    affected += 1;
                }
            }
            ScbOp::Delete => {
                let txn = scb.txn.expect("delete subset requires a transaction");
                affected = 0;
                for (key, before_bytes) in &matched {
                    self.lock(
                        txn,
                        scb.file,
                        LockScope::record(key.clone()),
                        LockMode::Exclusive,
                    )?;
                    let lsn = self.auditor.log(
                        txn,
                        scb.file,
                        AuditBody::Delete {
                            key: key.clone(),
                            before: before_bytes.clone(),
                        },
                    );
                    store.lsn.set(lsn);
                    tree.delete(key).map_err(|_| DpError::NotFound)?;
                    self.push_undo(
                        txn,
                        UndoOp::Delete {
                            file: scb.file,
                            key: key.clone(),
                            before: before_bytes.clone(),
                        },
                    );
                    self.sim.cpu_work(CpuLayer::DiskProcess, 3);
                    affected += 1;
                }
            }
        }

        // Idle-time write-behind after set-oriented work.
        if cfg.write_behind && !is_read {
            self.pool.write_behind();
        }

        // Subset Control Block management: created at FIRST time when a
        // re-drive will be needed; re-drives keep reporting the same id.
        let subset_id = if exhausted {
            None
        } else {
            match existing {
                Some(id) => Some(id),
                None => {
                    let mut st = self.state.lock();
                    let id = st.next_subset;
                    st.next_subset += 1;
                    st.subsets.insert(id, scb);
                    self.sim.metrics.subset_control_blocks.inc();
                    self.scb_rec.bump(Ctr::ScbCreated);
                    Some(id)
                }
            }
        };

        Ok(DpReply::Subset {
            rows,
            last_key,
            done: exhausted,
            subset: subset_id,
            examined,
            affected,
        })
    }

    // ------------------------------------------------------------------
    // Buffered WHERE CURRENT (future-work extension)
    // ------------------------------------------------------------------

    /// Apply a File-System buffer of cursor updates in one message:
    /// "substantial message traffic savings in the FS-DP interface".
    fn blocked_update(
        &self,
        txn: TxnId,
        file: FileId,
        records: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        self.join_txn(txn);
        let store = DpStore::new(&self.pool, &self.alloc);
        let tree = BTreeFile::open(&store, label.anchor);
        let mut affected = 0u32;
        for (key, record) in records {
            self.lock(
                txn,
                file,
                LockScope::record(key.clone()),
                LockMode::Exclusive,
            )?;
            let before = tree.get(&key).ok_or(DpError::NotFound)?;
            let lsn = self.auditor.log(
                txn,
                file,
                AuditBody::UpdateFull {
                    key: key.clone(),
                    before: before.clone(),
                    after: record.clone(),
                },
            );
            store.lsn.set(lsn);
            tree.update(&key, &record).map_err(|_| DpError::NotFound)?;
            self.push_undo(txn, UndoOp::UpdateFull { file, key, before });
            self.sim.cpu_work(CpuLayer::DiskProcess, 3);
            affected += 1;
        }
        if self.config.lock().write_behind {
            self.pool.write_behind();
        }
        Ok(DpReply::Subset {
            rows: Vec::new(),
            last_key: None,
            done: true,
            subset: None,
            examined: affected,
            affected,
        })
    }

    /// Apply a File-System buffer of cursor deletes in one message.
    fn blocked_delete(
        &self,
        txn: TxnId,
        file: FileId,
        keys: Vec<Vec<u8>>,
    ) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        self.join_txn(txn);
        let store = DpStore::new(&self.pool, &self.alloc);
        let tree = BTreeFile::open(&store, label.anchor);
        let mut affected = 0u32;
        for key in keys {
            self.lock(
                txn,
                file,
                LockScope::record(key.clone()),
                LockMode::Exclusive,
            )?;
            let before = tree.get(&key).ok_or(DpError::NotFound)?;
            let lsn = self.auditor.log(
                txn,
                file,
                AuditBody::Delete {
                    key: key.clone(),
                    before: before.clone(),
                },
            );
            store.lsn.set(lsn);
            tree.delete(&key).map_err(|_| DpError::NotFound)?;
            self.push_undo(txn, UndoOp::Delete { file, key, before });
            self.sim.cpu_work(CpuLayer::DiskProcess, 3);
            affected += 1;
        }
        if self.config.lock().write_behind {
            self.pool.write_behind();
        }
        Ok(DpReply::Subset {
            rows: Vec::new(),
            last_key: None,
            done: true,
            subset: None,
            examined: affected,
            affected,
        })
    }

    // ------------------------------------------------------------------
    // Relative and entry-sequenced access methods
    // ------------------------------------------------------------------

    fn relative_slot_size(&self, label: &FileLabel) -> Result<u32, DpError> {
        match &label.kind {
            FileKind::Relative { slot_size } => Ok(*slot_size),
            FileKind::KeySequenced(_) | FileKind::EntrySequenced => Err(DpError::WrongFileKind),
        }
    }

    fn relative_write(
        &self,
        txn: TxnId,
        file: FileId,
        recnum: u64,
        record: Vec<u8>,
    ) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        self.relative_slot_size(&label)?;
        self.join_txn(txn);
        let key = recnum.to_be_bytes().to_vec();
        self.lock(
            txn,
            file,
            LockScope::record(key.clone()),
            LockMode::Exclusive,
        )?;
        let store = DpStore::new(&self.pool, &self.alloc);
        let rel = RelativeFile::open(&store, label.anchor);
        let before = rel.read_record(recnum).ok();
        let body = match &before {
            Some(b) => AuditBody::UpdateFull {
                key: key.clone(),
                before: b.clone(),
                after: record.clone(),
            },
            None => AuditBody::Insert {
                key: key.clone(),
                record: record.clone(),
            },
        };
        let lsn = self.auditor.log(txn, file, body);
        store.lsn.set(lsn);
        rel.write_record(recnum, &record)
            .map_err(|e| DpError::BadRecord(e.to_string()))?;
        self.sim.cpu_work(CpuLayer::DiskProcess, 3);
        match before {
            Some(b) => self.push_undo(
                txn,
                UndoOp::UpdateFull {
                    file,
                    key,
                    before: b,
                },
            ),
            None => self.push_undo(txn, UndoOp::Insert { file, key }),
        }
        self.checkpoint(64 + record.len());
        Ok(DpReply::Ok)
    }

    fn relative_read(&self, file: FileId, recnum: u64) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        self.relative_slot_size(&label)?;
        let store = DpStore::new(&self.pool, &self.alloc);
        let rel = RelativeFile::open(&store, label.anchor);
        self.sim.cpu_work(CpuLayer::DiskProcess, 2);
        Ok(DpReply::Record(rel.read_record(recnum).ok()))
    }

    fn relative_delete(&self, txn: TxnId, file: FileId, recnum: u64) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        self.relative_slot_size(&label)?;
        self.join_txn(txn);
        let key = recnum.to_be_bytes().to_vec();
        self.lock(
            txn,
            file,
            LockScope::record(key.clone()),
            LockMode::Exclusive,
        )?;
        let store = DpStore::new(&self.pool, &self.alloc);
        let rel = RelativeFile::open(&store, label.anchor);
        let before = rel.read_record(recnum).map_err(|_| DpError::NotFound)?;
        let lsn = self.auditor.log(
            txn,
            file,
            AuditBody::Delete {
                key: key.clone(),
                before: before.clone(),
            },
        );
        store.lsn.set(lsn);
        rel.delete_record(recnum).map_err(|_| DpError::NotFound)?;
        self.sim.cpu_work(CpuLayer::DiskProcess, 3);
        self.push_undo(txn, UndoOp::Delete { file, key, before });
        Ok(DpReply::Ok)
    }

    /// Entry-sequenced appends are non-audited (ENSCRIBE supported
    /// non-audited files); the address is stable for the file's lifetime.
    fn entry_append(&self, file: FileId, record: Vec<u8>) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        if !matches!(label.kind, FileKind::EntrySequenced) {
            return Err(DpError::WrongFileKind);
        }
        let store = DpStore::new(&self.pool, &self.alloc);
        let es = EntrySequencedFile::open(&store, label.anchor);
        let addr = es
            .append(&record)
            .map_err(|e| DpError::BadRecord(e.to_string()))?;
        self.sim.cpu_work(CpuLayer::DiskProcess, 2);
        Ok(DpReply::Appended(addr))
    }

    fn entry_read(&self, file: FileId, address: u64) -> Result<DpReply, DpError> {
        let label = self.file_label(file)?;
        if !matches!(label.kind, FileKind::EntrySequenced) {
            return Err(DpError::WrongFileKind);
        }
        let store = DpStore::new(&self.pool, &self.alloc);
        let es = EntrySequencedFile::open(&store, label.anchor);
        self.sim.cpu_work(CpuLayer::DiskProcess, 2);
        Ok(DpReply::Record(es.read_at(address).ok()))
    }

    // ------------------------------------------------------------------
    // End-of-transaction protocol
    // ------------------------------------------------------------------

    fn handle_end_txn(&self, req: EndTxnRequest) -> EndTxnReply {
        match req {
            EndTxnRequest::Prepare { .. } => {
                // Flush this volume's audit to the trail so the commit
                // record cannot precede it.
                self.auditor.send();
                EndTxnReply::Ok
            }
            EndTxnRequest::Finish { txn, committed } => {
                let undo = self.state.lock().undo.remove(&txn);
                if !committed {
                    if let Some(ops) = undo {
                        for op in ops.into_iter().rev() {
                            self.apply_undo_op(op);
                        }
                    }
                }
                self.locks.release_all(txn);
                if self.config.lock().write_behind {
                    self.pool.write_behind();
                }
                EndTxnReply::Ok
            }
        }
    }

    fn apply_undo_op(&self, op: UndoOp) {
        match op {
            UndoOp::Insert { file, key } => {
                if let Ok(label) = self.file_label(file) {
                    self.kind_delete(&label, &key);
                }
            }
            UndoOp::Delete { file, key, before } | UndoOp::UpdateFull { file, key, before } => {
                if let Ok(label) = self.file_label(file) {
                    self.kind_put(&label, &key, &before);
                }
            }
            UndoOp::UpdateFields { file, key, before } => {
                if let Ok(label) = self.file_label(file) {
                    if let Ok(desc) = self.descriptor(&label) {
                        if let Some(cur) = self.kind_get(&label, &key) {
                            if let Ok(patched) = patch_record(&desc, &cur, &before) {
                                self.kind_put(&label, &key, &patched);
                            }
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Kind-dispatched logical apply (undo and recovery work on both
    // key-sequenced and relative files; entry-sequenced files are
    // non-audited)
    // ------------------------------------------------------------------

    fn kind_get(&self, label: &FileLabel, key: &[u8]) -> Option<Vec<u8>> {
        let store = DpStore::new(&self.pool, &self.alloc);
        match &label.kind {
            FileKind::KeySequenced(_) => BTreeFile::open(&store, label.anchor).get(key),
            FileKind::Relative { .. } => {
                let recnum = u64::from_be_bytes(key.try_into().ok()?);
                RelativeFile::open(&store, label.anchor)
                    .read_record(recnum)
                    .ok()
            }
            FileKind::EntrySequenced => None,
        }
    }

    /// Insert-or-replace, stamped with `lsn` when nonzero.
    fn kind_put_lsn(&self, label: &FileLabel, key: &[u8], bytes: &[u8], lsn: u64) {
        let store = DpStore::new(&self.pool, &self.alloc);
        store.lsn.set(lsn);
        match &label.kind {
            FileKind::KeySequenced(_) => {
                let _ = BTreeFile::open(&store, label.anchor).put(key, bytes);
            }
            FileKind::Relative { .. } => {
                if let Ok(k) = key.try_into() {
                    let recnum = u64::from_be_bytes(k);
                    let _ = RelativeFile::open(&store, label.anchor).write_record(recnum, bytes);
                }
            }
            FileKind::EntrySequenced => {}
        }
    }

    fn kind_put(&self, label: &FileLabel, key: &[u8], bytes: &[u8]) {
        self.kind_put_lsn(label, key, bytes, 0);
    }

    fn kind_delete_lsn(&self, label: &FileLabel, key: &[u8], lsn: u64) {
        let store = DpStore::new(&self.pool, &self.alloc);
        store.lsn.set(lsn);
        match &label.kind {
            FileKind::KeySequenced(_) => {
                let _ = BTreeFile::open(&store, label.anchor).delete(key);
            }
            FileKind::Relative { .. } => {
                if let Ok(k) = key.try_into() {
                    let recnum = u64::from_be_bytes(k);
                    let _ = RelativeFile::open(&store, label.anchor).delete_record(recnum);
                }
            }
            FileKind::EntrySequenced => {}
        }
    }

    fn kind_delete(&self, label: &FileLabel, key: &[u8]) {
        self.kind_delete_lsn(label, key, 0);
    }

    // ------------------------------------------------------------------
    // Crash simulation and recovery
    // ------------------------------------------------------------------

    /// Simulate a crash of this Disk Process: all in-memory state (cache,
    /// undo lists, subsets) vanishes. The disk keeps whatever was flushed.
    pub fn crash(&self) {
        self.pool.crash();
        self.auditor.crash();
        let doomed: Vec<TxnId> = {
            let mut st = self.state.lock();
            let doomed = st.undo.keys().copied().collect();
            st.subsets.clear();
            st.undo.clear();
            st.replies.clear();
            doomed
        };
        // Transactions whose uncommitted writes died with this process can
        // no longer commit (recovery will undo them); tell TMF.
        for txn in doomed {
            self.txnmgr.doom(txn);
        }
    }

    /// Recover the volume from the durable audit trail: redo winners' work,
    /// undo losers' work (see `nsql_tmf::recovery`). Leaves the volume
    /// consistent and flushed. Reloads the label from disk first.
    pub fn recover(&self) {
        {
            let bytes = self.pool.read(0).expect("volume label unreadable");
            self.state.lock().label = VolumeLabel::decode(&bytes);
        }
        let records = self.trail.durable_records(self.sim.now());
        self.replay(&records, true);
        self.pool.flush_all().expect("recovery flush failed");
    }

    /// Rebuild this volume after a **media failure** (dead unmirrored
    /// drive): the process survived, the platters did not. The drive is
    /// replaced (empty), every file structure is re-created empty with its
    /// id, kind and descriptor preserved from the in-memory label, and the
    /// winners' work is redone from the durable audit trail. Losers are
    /// *not* undone: their in-flight changes never reached a store rebuilt
    /// from scratch, so there is nothing to roll back.
    pub fn media_recover(&self) -> Result<(), nsql_disk::DiskError> {
        let old = self.state.lock().label.clone();
        self.pool.crash();
        self.pool.disk().clear();
        *self.alloc.lock() = Allocator::new();
        let label = {
            let store = DpStore::new(&self.pool, &self.alloc);
            let mut label = VolumeLabel {
                files: Default::default(),
                next_file: old.next_file,
            };
            for (id, f) in &old.files {
                let anchor = match &f.kind {
                    FileKind::KeySequenced(_) => BTreeFile::create(&store),
                    FileKind::Relative { slot_size } => {
                        RelativeFile::create(&store, *slot_size as usize)
                    }
                    FileKind::EntrySequenced => EntrySequencedFile::create(&store),
                };
                label.files.insert(
                    *id,
                    FileLabel {
                        id: *id,
                        kind: f.kind.clone(),
                        anchor,
                    },
                );
            }
            label
        };
        self.state.lock().label = label.clone();
        let bytes = label.encode();
        self.pool.write(0, bytes, 0)?;
        let records = self.trail.durable_records(self.sim.now());
        self.replay(&records, false);
        self.pool.flush_all()
    }

    /// Scan the durable trail and apply the REDO plan (and, when
    /// `with_undo`, the UNDO plan) for this volume. The scan is charged to
    /// [`Wait::Restart`] on the virtual clock; the replayed page I/O shows
    /// up under its own categories.
    fn replay(&self, records: &[nsql_tmf::AuditRecord], with_undo: bool) {
        self.sim.clock.advance_in(
            Wait::Restart,
            records.len() as u64 * self.sim.cost.cpu_work_unit_us,
        );
        self.rec.add(Ctr::RecoveryScanned, records.len() as u64);
        let plan = nsql_tmf::classify(records, &self.name);
        self.rec.add(Ctr::RecoveryRedo, plan.redo.len() as u64);
        for rec in &plan.redo {
            self.apply_logged(rec, true);
        }
        if with_undo {
            self.rec.add(Ctr::RecoveryUndo, plan.undo.len() as u64);
            for rec in &plan.undo {
                self.apply_logged(rec, false);
            }
        }
    }

    /// Apply one trail record in redo (`forward = true`) or undo direction.
    /// All applications are logical and idempotent, dispatched per file
    /// structure.
    fn apply_logged(&self, rec: &nsql_tmf::AuditRecord, forward: bool) {
        let Ok(label) = self.file_label(rec.file) else {
            return;
        };
        match (&rec.body, forward) {
            (AuditBody::Insert { key, record }, true) => {
                self.kind_put_lsn(&label, key, record, rec.lsn);
            }
            (AuditBody::Insert { key, .. }, false) => {
                self.kind_delete_lsn(&label, key, rec.lsn);
            }
            (AuditBody::Delete { key, .. }, true) => {
                self.kind_delete_lsn(&label, key, rec.lsn);
            }
            (AuditBody::Delete { key, before }, false) => {
                self.kind_put_lsn(&label, key, before, rec.lsn);
            }
            (AuditBody::UpdateFull { key, after, .. }, true) => {
                self.kind_put_lsn(&label, key, after, rec.lsn);
            }
            (AuditBody::UpdateFull { key, before, .. }, false) => {
                self.kind_put_lsn(&label, key, before, rec.lsn);
            }
            (AuditBody::UpdateFields { key, after, .. }, true) => {
                self.patch_logged(&label, key, after, rec.lsn);
            }
            (AuditBody::UpdateFields { key, before, .. }, false) => {
                self.patch_logged(&label, key, before, rec.lsn);
            }
            (AuditBody::Commit | AuditBody::Abort, _) => {}
        }
    }

    fn patch_logged(&self, label: &FileLabel, key: &[u8], img: &FieldImage, lsn: u64) {
        let Ok(desc) = self.descriptor(label) else {
            return;
        };
        if let Some(cur) = self.kind_get(label, key) {
            if let Ok(patched) = patch_record(&desc, &cur, img) {
                self.kind_put_lsn(label, key, &patched, lsn);
            }
        }
    }
}

impl DiskProcess {
    /// Handle a request carrying a sync ID: answer retransmissions from the
    /// per-opener reply cache ("duplicate suppression"), execute fresh
    /// requests and remember their reply.
    fn handle_sync(&self, sync: protocol::SyncId, req: DpRequest) -> DpReply {
        if let Some(cached) = self
            .state
            .lock()
            .replies
            .get(&sync.opener)
            .and_then(|q| q.iter().find(|(seq, _)| *seq == sync.seq))
            .map(|(_, reply)| reply.clone())
        {
            // The request already executed; only the reply was lost.
            self.sim.metrics.dp_dup_suppressed.inc();
            self.sim.cpu_work(CpuLayer::DiskProcess, 1);
            return cached;
        }
        let reply = self.handle_request(req);
        let mut st = self.state.lock();
        let q = st.replies.entry(sync.opener).or_default();
        if q.len() >= REPLY_CACHE_PER_OPENER {
            q.pop_front();
        }
        q.push_back((sync.seq, reply.clone()));
        reply
    }
}

impl Server for DiskProcess {
    fn handle(&self, request: Box<dyn Any + Send>) -> Response {
        // Three protocols arrive here: sync-ID-carrying FS-DP requests,
        // bare FS-DP requests, and TMF end-txn calls.
        let request = match request.downcast::<protocol::SyncRequest>() {
            Ok(sreq) => {
                let sreq = *sreq;
                // The DP-side handling span attaches to the identity carried
                // in the request header, so the statement's span tree
                // survives the wire hop (and a duplicate delivery shows up
                // as a second handling span under the same request span).
                let _span = self.sim.span_enter(sreq.span, sreq.req.name(), &self.name);
                let reply = self.handle_sync(sreq.sync, sreq.req);
                let size = reply.wire_size();
                return Response::new(reply, size);
            }
            Err(original) => original,
        };
        let request = match request.downcast::<DpRequest>() {
            Ok(req) => {
                let reply = self.handle_request(*req);
                let size = reply.wire_size();
                return Response::new(reply, size);
            }
            Err(original) => original,
        };
        match request.downcast::<EndTxnRequest>() {
            Ok(req) => {
                let reply = self.handle_end_txn(*req);
                Response::new(reply, 4)
            }
            Err(_) => panic!("Disk Process received an unknown message type"),
        }
    }
}

// ----------------------------------------------------------------------
// Field-level helpers
// ----------------------------------------------------------------------

/// Project `fields` out of an encoded record into a new encoded row.
fn project_record(
    desc: &RecordDescriptor,
    bytes: &[u8],
    fields: &[u16],
) -> Result<Vec<u8>, DpError> {
    let values: Result<Vec<Value>, _> = fields
        .iter()
        .map(|&f| extract_field(desc, bytes, f))
        .collect();
    let values = values.map_err(|e| DpError::BadRecord(e.to_string()))?;
    let pdesc = desc.project(fields);
    encode_row(&pdesc, &values).map_err(|e| DpError::BadRecord(e.to_string()))
}

/// Evaluate a SetList + constraint against a record: returns the new
/// encoded record plus field-compressed before/after images.
fn apply_sets(
    sim: &Sim,
    desc: &RecordDescriptor,
    before_bytes: &[u8],
    sets: &SetList,
    constraint: Option<&Expr>,
) -> Result<(Vec<u8>, FieldImage, FieldImage), DpError> {
    let row = decode_row(desc, before_bytes).map_err(|e| DpError::BadRecord(e.to_string()))?;
    sim.cpu_work(
        CpuLayer::DiskProcess,
        1 + sets.sets.iter().map(|(_, e)| e.eval_cost()).sum::<u64>() / 2,
    );
    let assignments = sets
        .apply(&row)
        .map_err(|e| DpError::EvalFailed(e.to_string()))?;
    let mut new_values = row.0.clone();
    let mut before_img = FieldImage::new();
    let mut after_img = FieldImage::new();
    for (f, v) in assignments {
        let ty = desc.fields[f as usize].ty;
        let coerced = ty
            .coerce(v)
            .ok_or_else(|| DpError::BadRecord(format!("value does not fit field {f}")))?;
        before_img.push((f, row.0[f as usize].clone()));
        after_img.push((f, coerced.clone()));
        new_values[f as usize] = coerced;
    }
    if let Some(c) = constraint {
        sim.cpu_work(CpuLayer::DiskProcess, 1 + c.eval_cost() / 2);
        let ok = c
            .passes(&nsql_records::SliceRow(&new_values))
            .map_err(|e| DpError::EvalFailed(e.to_string()))?;
        if !ok {
            return Err(DpError::ConstraintViolation);
        }
    }
    let new_bytes = encode_row(desc, &new_values).map_err(|e| DpError::BadRecord(e.to_string()))?;
    Ok((new_bytes, before_img, after_img))
}

/// Patch a field image onto an encoded record.
fn patch_record(
    desc: &RecordDescriptor,
    bytes: &[u8],
    img: &FieldImage,
) -> Result<Vec<u8>, DpError> {
    let mut row = decode_row(desc, bytes).map_err(|e| DpError::BadRecord(e.to_string()))?;
    for (f, v) in img {
        row.0[*f as usize] = v.clone();
    }
    encode_row(desc, &row.0).map_err(|e| DpError::BadRecord(e.to_string()))
}

/// ENSCRIBE audit-compression helper: diff two full images field by field.
fn diff_fields(
    desc: &RecordDescriptor,
    before: &[u8],
    after: &[u8],
) -> Result<(FieldImage, FieldImage), nsql_records::row::CodecError> {
    let b = decode_row(desc, before)?;
    let a = decode_row(desc, after)?;
    let mut bi = FieldImage::new();
    let mut ai = FieldImage::new();
    for (i, (vb, va)) in b.0.iter().zip(&a.0).enumerate() {
        if vb != va {
            bi.push((i as u16, vb.clone()));
            ai.push((i as u16, va.clone()));
        }
    }
    Ok((bi, ai))
}

/// Reject update expressions that assign to primary-key fields.
fn check_no_key_updates(desc: &RecordDescriptor, sets: &SetList) -> Result<(), DpError> {
    for (f, _) in &sets.sets {
        if desc.key_fields.contains(f) {
            return Err(DpError::KeyUpdateNotAllowed);
        }
    }
    Ok(())
}

/// A backup process of a process pair: absorbs checkpoint messages.
pub struct BackupSink;

impl Server for BackupSink {
    fn handle(&self, _request: Box<dyn Any + Send>) -> Response {
        Response::new((), 4)
    }
}

#[cfg(test)]
mod tests;
