//! Disk Process integration tests: the FS-DP interface exercised end to
//! end over a single volume, including the paper's worked examples.

use super::*;
use nsql_records::key::encode_record_key;
use nsql_records::{CmpOp, FieldDef, FieldType, KeyRange};
use nsql_tmf::{CommitTimer, LsnSource};

struct TestCluster {
    sim: Sim,
    bus: Arc<Bus>,
    trail: Arc<Trail>,
    txnmgr: Arc<TxnManager>,
    ctx: DpContext,
    dp: Arc<DiskProcess>,
    disk: Arc<Disk>,
    client: CpuId,
}

fn cluster() -> TestCluster {
    cluster_with(DpConfig::default())
}

fn cluster_with(config: DpConfig) -> TestCluster {
    let sim = Sim::new();
    let bus = Bus::new(sim.clone());
    let lsns = LsnSource::new();
    let trail = Trail::new(sim.clone(), Arc::clone(&lsns), CommitTimer::Fixed(1_000));
    bus.register(nsql_tmf::AUDIT_PROCESS, CpuId::new(0, 3), trail.clone());
    let txnmgr = TxnManager::new(sim.clone(), Arc::clone(&bus));
    let ctx = DpContext {
        sim: sim.clone(),
        bus: Arc::clone(&bus),
        trail: Arc::clone(&trail),
        txnmgr: Arc::clone(&txnmgr),
        lsns,
    };
    let disk = Disk::new(sim.clone(), "$DATA1", true);
    let dp = DiskProcess::format(&ctx, "$DATA1", CpuId::new(0, 1), Arc::clone(&disk), config);
    TestCluster {
        sim,
        bus,
        trail,
        txnmgr,
        ctx,
        dp,
        disk,
        client: CpuId::new(0, 0),
    }
}

/// EMP table from the paper's examples.
fn emp_desc() -> RecordDescriptor {
    RecordDescriptor::new(
        vec![
            FieldDef::new("EMPNO", FieldType::Int),
            FieldDef::new("NAME", FieldType::Char(12)),
            FieldDef::new("HIRE_DATE", FieldType::Int),
            FieldDef::new("SALARY", FieldType::Double),
        ],
        vec![0],
    )
}

fn emp_row(empno: i32, name: &str, hire: i32, salary: f64) -> Vec<Value> {
    vec![
        Value::Int(empno),
        Value::Str(name.into()),
        Value::Int(hire),
        Value::Double(salary),
    ]
}

impl TestCluster {
    fn send(&self, req: DpRequest) -> DpReply {
        let size = req.wire_size();
        let kind = if req.is_redrive() {
            MsgKind::Redrive
        } else {
            MsgKind::FsDp
        };
        self.bus
            .request(self.client, "$DATA1", kind, size, Box::new(req))
            .expect("dp unreachable")
            .downcast::<DpReply>()
            .expect("dp reply type")
    }

    fn create_emp(&self) -> FileId {
        match self.send(DpRequest::CreateFile {
            kind: FileKind::KeySequenced(emp_desc()),
        }) {
            DpReply::FileCreated(id) => id,
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Insert `n` employees inside one committed transaction.
    fn load_emps(&self, file: FileId, n: i32) {
        let desc = emp_desc();
        let txn = self.txnmgr.begin();
        for i in 0..n {
            let row = emp_row(
                i,
                &format!("EMP{i:05}"),
                1980 + (i % 9),
                (1000 + i * 10) as f64,
            );
            let key = encode_record_key(&desc, &row);
            let record = encode_row(&desc, &row).unwrap();
            match self.send(DpRequest::Insert {
                txn,
                file,
                key,
                record,
            }) {
                DpReply::Ok => {}
                other => panic!("insert failed: {other:?}"),
            }
        }
        self.txnmgr.commit(txn, self.client).unwrap();
    }
}

fn emp_key(empno: i32) -> Vec<u8> {
    let desc = emp_desc();
    encode_record_key(&desc, &emp_row(empno, "", 0, 0.0))
}

fn range_to(hi: i32) -> KeyRange {
    KeyRange {
        begin: OwnedBound::Unbounded,
        end: OwnedBound::Included(emp_key(hi)),
    }
}

#[test]
fn insert_read_roundtrip() {
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 10);
    let reply = c.send(DpRequest::Read {
        txn: None,
        file,
        key: emp_key(7),
        lock: ReadLock::None,
    });
    let DpReply::Record(Some(bytes)) = reply else {
        panic!("expected record");
    };
    let row = decode_row(&emp_desc(), &bytes).unwrap();
    assert_eq!(row.0[0], Value::Int(7));
    assert_eq!(row.0[1], Value::Str("EMP00007".into()));
    // Missing key.
    let reply = c.send(DpRequest::Read {
        txn: None,
        file,
        key: emp_key(99),
        lock: ReadLock::None,
    });
    assert!(matches!(reply, DpReply::Record(None)));
}

#[test]
fn paper_example_1_vsbb_selection_projection() {
    // SELECT NAME, HIRE_DATE FROM EMP WHERE EMPNO <= 1000 AND SALARY > 32000
    let c = cluster();
    let file = c.create_emp();
    let desc = emp_desc();
    let txn = c.txnmgr.begin();
    for i in 0..2000 {
        let salary = if i % 4 == 0 { 40_000.0 } else { 20_000.0 };
        let row = emp_row(i, &format!("E{i}"), 1980, salary);
        c.send(DpRequest::Insert {
            txn,
            file,
            key: encode_record_key(&desc, &row),
            record: encode_row(&desc, &row).unwrap(),
        });
    }
    c.txnmgr.commit(txn, c.client).unwrap();

    let before = c.sim.metrics.snapshot();
    let mut rows_total = 0usize;
    let mut reply = c.send(DpRequest::GetSubsetFirst {
        txn: None,
        file,
        range: range_to(1000),
        predicate: Some(Expr::field_cmp(3, CmpOp::Gt, Value::Double(32_000.0))),
        projection: Some(vec![1, 2]),
        mode: SubsetMode::Vsbb,
        lock: ReadLock::None,
    });
    loop {
        let DpReply::Subset {
            rows,
            last_key,
            done,
            subset,
            ..
        } = reply
        else {
            panic!("unexpected {reply:?}");
        };
        // Projected rows decode with the projected descriptor.
        let pdesc = desc.project(&[1, 2]);
        for r in &rows {
            let row = decode_row(&pdesc, r).unwrap();
            assert_eq!(row.0.len(), 2);
            assert!(matches!(row.0[0], Value::Str(_)));
        }
        rows_total += rows.len();
        if done {
            break;
        }
        reply = c.send(DpRequest::GetSubsetNext {
            subset: subset.expect("re-drive needs an SCB"),
            after: last_key.expect("re-drive needs a last key"),
        });
    }
    // EMPNO 0..=1000 with salary > 32000 (every 4th): 0,4,...,1000 = 251.
    assert_eq!(rows_total, 251);
    let d = c.sim.metrics.since(&before);
    assert!(d.msgs_redrive >= 1, "large subset must re-drive");
    assert!(d.subset_control_blocks >= 1);
    assert_eq!(d.dp_records_selected, 251);
    assert!(d.dp_records_examined >= 1001);
    // Filtering at the source: far fewer messages than selected rows.
    assert!(d.msgs_fs_dp as usize * 10 < 1001);
}

#[test]
fn paper_example_2_rsbb_full_scan() {
    // SELECT * FROM EMP;
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 500);
    let before = c.sim.metrics.snapshot();
    let mut got = 0usize;
    let mut reply = c.send(DpRequest::GetSubsetFirst {
        txn: None,
        file,
        range: KeyRange::all(),
        predicate: None,
        projection: None,
        mode: SubsetMode::Rsbb,
        lock: ReadLock::None,
    });
    loop {
        let DpReply::Subset {
            rows,
            last_key,
            done,
            subset,
            ..
        } = reply
        else {
            panic!("unexpected {reply:?}")
        };
        got += rows.len();
        if done {
            break;
        }
        reply = c.send(DpRequest::GetSubsetNext {
            subset: subset.unwrap(),
            after: last_key.unwrap(),
        });
    }
    assert_eq!(got, 500);
    let d = c.sim.metrics.since(&before);
    // Blocked transfer: many records per message.
    assert!(
        (d.msgs_fs_dp as usize) < 500 / 10,
        "RSBB must batch records ({} messages for 500 records)",
        d.msgs_fs_dp
    );
}

#[test]
fn paper_example_3_update_subset_with_expression() {
    // UPDATE ACCOUNT SET BALANCE = BALANCE * 1.07 WHERE BALANCE > 0
    let c = cluster();
    let file = c.create_emp();
    let desc = emp_desc();
    let txn = c.txnmgr.begin();
    for i in 0..300 {
        let bal = if i % 2 == 0 { 100.0 } else { -50.0 };
        let row = emp_row(i, "ACCT", 0, bal);
        c.send(DpRequest::Insert {
            txn,
            file,
            key: encode_record_key(&desc, &row),
            record: encode_row(&desc, &row).unwrap(),
        });
    }
    c.txnmgr.commit(txn, c.client).unwrap();

    let txn = c.txnmgr.begin();
    let sets = SetList {
        sets: vec![(
            3,
            Expr::Arith(
                Box::new(Expr::Field(3)),
                nsql_records::ArithOp::Mul,
                Box::new(Expr::lit(Value::Double(1.07))),
            ),
        )],
    };
    let mut affected_total = 0u32;
    let mut reply = c.send(DpRequest::UpdateSubsetFirst {
        txn,
        file,
        range: KeyRange::all(),
        predicate: Some(Expr::field_cmp(3, CmpOp::Gt, Value::Double(0.0))),
        sets,
        constraint: None,
    });
    loop {
        let DpReply::Subset {
            affected,
            last_key,
            done,
            subset,
            ..
        } = reply
        else {
            panic!("unexpected {reply:?}")
        };
        affected_total += affected;
        if done {
            break;
        }
        reply = c.send(DpRequest::UpdateSubsetNext {
            subset: subset.unwrap(),
            after: last_key.unwrap(),
        });
    }
    c.txnmgr.commit(txn, c.client).unwrap();
    assert_eq!(affected_total, 150);
    // Check an updated and an untouched record.
    let DpReply::Record(Some(bytes)) = c.send(DpRequest::Read {
        txn: None,
        file,
        key: emp_key(0),
        lock: ReadLock::None,
    }) else {
        panic!()
    };
    let row = decode_row(&desc, &bytes).unwrap();
    assert_eq!(row.0[3], Value::Double(107.0));
    let DpReply::Record(Some(bytes)) = c.send(DpRequest::Read {
        txn: None,
        file,
        key: emp_key(1),
        lock: ReadLock::None,
    }) else {
        panic!()
    };
    let row = decode_row(&desc, &bytes).unwrap();
    assert_eq!(row.0[3], Value::Double(-50.0));
}

#[test]
fn delete_subset_removes_matching() {
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 100);
    let txn = c.txnmgr.begin();
    let reply = c.send(DpRequest::DeleteSubsetFirst {
        txn,
        file,
        range: range_to(49),
        predicate: None,
    });
    let DpReply::Subset { affected, done, .. } = reply else {
        panic!()
    };
    assert!(done);
    assert_eq!(affected, 50);
    c.txnmgr.commit(txn, c.client).unwrap();
    assert!(matches!(
        c.send(DpRequest::Read {
            txn: None,
            file,
            key: emp_key(10),
            lock: ReadLock::None
        }),
        DpReply::Record(None)
    ));
    assert!(matches!(
        c.send(DpRequest::Read {
            txn: None,
            file,
            key: emp_key(60),
            lock: ReadLock::None
        }),
        DpReply::Record(Some(_))
    ));
}

#[test]
fn update_point_pushdown_is_one_message() {
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 10);
    let before = c.sim.metrics.snapshot();
    let txn = c.txnmgr.begin();
    let sets = SetList {
        sets: vec![(
            3,
            Expr::Arith(
                Box::new(Expr::Field(3)),
                nsql_records::ArithOp::Sub,
                Box::new(Expr::lit(Value::Double(25.0))),
            ),
        )],
    };
    let reply = c.send(DpRequest::UpdatePoint {
        txn,
        file,
        key: emp_key(3),
        sets,
        constraint: None,
    });
    assert!(matches!(reply, DpReply::Ok));
    let d = c.sim.metrics.since(&before);
    assert_eq!(d.msgs_fs_dp, 1, "no read-before-write message");
    c.txnmgr.commit(txn, c.client).unwrap();
    let DpReply::Record(Some(bytes)) = c.send(DpRequest::Read {
        txn: None,
        file,
        key: emp_key(3),
        lock: ReadLock::None,
    }) else {
        panic!()
    };
    let row = decode_row(&emp_desc(), &bytes).unwrap();
    assert_eq!(row.0[3], Value::Double(1030.0 - 25.0));
}

#[test]
fn constraint_enforced_at_dp() {
    // CHECK SALARY >= 0
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 5);
    let txn = c.txnmgr.begin();
    let sets = SetList {
        sets: vec![(
            3,
            Expr::Arith(
                Box::new(Expr::Field(3)),
                nsql_records::ArithOp::Sub,
                Box::new(Expr::lit(Value::Double(1_000_000.0))),
            ),
        )],
    };
    let reply = c.send(DpRequest::UpdatePoint {
        txn,
        file,
        key: emp_key(2),
        sets,
        constraint: Some(Expr::field_cmp(3, CmpOp::Ge, Value::Double(0.0))),
    });
    assert!(matches!(
        reply,
        DpReply::Error(DpError::ConstraintViolation)
    ));
    c.txnmgr.abort(txn, c.client).unwrap();
    // Record unchanged.
    let DpReply::Record(Some(bytes)) = c.send(DpRequest::Read {
        txn: None,
        file,
        key: emp_key(2),
        lock: ReadLock::None,
    }) else {
        panic!()
    };
    let row = decode_row(&emp_desc(), &bytes).unwrap();
    assert_eq!(row.0[3], Value::Double(1020.0));
}

#[test]
fn key_field_update_rejected() {
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 3);
    let txn = c.txnmgr.begin();
    let sets = SetList {
        sets: vec![(0, Expr::lit(Value::Int(99)))],
    };
    let reply = c.send(DpRequest::UpdatePoint {
        txn,
        file,
        key: emp_key(1),
        sets,
        constraint: None,
    });
    assert!(matches!(
        reply,
        DpReply::Error(DpError::KeyUpdateNotAllowed)
    ));
    c.txnmgr.abort(txn, c.client).unwrap();
}

#[test]
fn abort_undoes_everything() {
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 20);
    let desc = emp_desc();
    let txn = c.txnmgr.begin();
    // Insert a new record, update an existing one, delete another.
    let row = emp_row(100, "NEW", 1999, 5555.0);
    c.send(DpRequest::Insert {
        txn,
        file,
        key: encode_record_key(&desc, &row),
        record: encode_row(&desc, &row).unwrap(),
    });
    c.send(DpRequest::UpdatePoint {
        txn,
        file,
        key: emp_key(5),
        sets: SetList {
            sets: vec![(3, Expr::lit(Value::Double(0.0)))],
        },
        constraint: None,
    });
    c.send(DpRequest::DeleteRecord {
        txn,
        file,
        key: emp_key(6),
    });
    c.txnmgr.abort(txn, c.client).unwrap();

    assert!(matches!(
        c.send(DpRequest::Read {
            txn: None,
            file,
            key: emp_key(100),
            lock: ReadLock::None
        }),
        DpReply::Record(None)
    ));
    let DpReply::Record(Some(bytes)) = c.send(DpRequest::Read {
        txn: None,
        file,
        key: emp_key(5),
        lock: ReadLock::None,
    }) else {
        panic!()
    };
    assert_eq!(
        decode_row(&desc, &bytes).unwrap().0[3],
        Value::Double(1050.0),
        "update undone"
    );
    assert!(matches!(
        c.send(DpRequest::Read {
            txn: None,
            file,
            key: emp_key(6),
            lock: ReadLock::None
        }),
        DpReply::Record(Some(_))
    ));
}

#[test]
fn locks_conflict_and_release() {
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 10);
    let t1 = c.txnmgr.begin();
    let t2 = c.txnmgr.begin();
    // t1 exclusively updates record 3.
    c.send(DpRequest::UpdatePoint {
        txn: t1,
        file,
        key: emp_key(3),
        sets: SetList {
            sets: vec![(3, Expr::lit(Value::Double(1.0)))],
        },
        constraint: None,
    });
    // t2 cannot update or share-lock it.
    let reply = c.send(DpRequest::UpdatePoint {
        txn: t2,
        file,
        key: emp_key(3),
        sets: SetList {
            sets: vec![(3, Expr::lit(Value::Double(2.0)))],
        },
        constraint: None,
    });
    assert!(matches!(reply, DpReply::Error(DpError::Locked { holder }) if holder == t1));
    // After t1 commits, t2 proceeds.
    c.txnmgr.commit(t1, c.client).unwrap();
    let reply = c.send(DpRequest::UpdatePoint {
        txn: t2,
        file,
        key: emp_key(3),
        sets: SetList {
            sets: vec![(3, Expr::lit(Value::Double(2.0)))],
        },
        constraint: None,
    });
    assert!(matches!(reply, DpReply::Ok));
    c.txnmgr.commit(t2, c.client).unwrap();
    assert!(c.sim.metrics.lock_waits.get() >= 1);
}

#[test]
fn vsbb_group_lock_vs_enscribe_file_lock() {
    // E13's mechanism: an ENSCRIBE SBB reader must file-lock (blocking all
    // writers); a VSBB reader group-locks only the scanned span.
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 100);

    // VSBB read of EMPNO <= 20 with shared group locking.
    let reader = c.txnmgr.begin();
    let reply = c.send(DpRequest::GetSubsetFirst {
        txn: Some(reader),
        file,
        range: range_to(20),
        predicate: None,
        projection: Some(vec![0, 1]),
        mode: SubsetMode::Vsbb,
        lock: ReadLock::Shared,
    });
    assert!(matches!(reply, DpReply::Subset { .. }));

    // A writer outside the span proceeds...
    let writer = c.txnmgr.begin();
    let ok = c.send(DpRequest::UpdatePoint {
        txn: writer,
        file,
        key: emp_key(50),
        sets: SetList {
            sets: vec![(3, Expr::lit(Value::Double(9.0)))],
        },
        constraint: None,
    });
    assert!(
        matches!(ok, DpReply::Ok),
        "writer outside virtual block must proceed"
    );
    // ... a writer inside the span blocks.
    let blocked = c.send(DpRequest::UpdatePoint {
        txn: writer,
        file,
        key: emp_key(10),
        sets: SetList {
            sets: vec![(3, Expr::lit(Value::Double(9.0)))],
        },
        constraint: None,
    });
    assert!(matches!(blocked, DpReply::Error(DpError::Locked { .. })));

    // The writer saw an error on the blocked statement; roll it back.
    c.txnmgr.abort(writer, c.client).unwrap();
    c.txnmgr.commit(reader, c.client).unwrap();
}

#[test]
fn blocked_insert_is_one_message() {
    let c = cluster();
    let file = c.create_emp();
    let desc = emp_desc();
    let txn = c.txnmgr.begin();
    let records: Vec<(Vec<u8>, Vec<u8>)> = (0..100)
        .map(|i| {
            let row = emp_row(i, "BULK", 1990, 1.0);
            (
                encode_record_key(&desc, &row),
                encode_row(&desc, &row).unwrap(),
            )
        })
        .collect();
    let before = c.sim.metrics.snapshot();
    let reply = c.send(DpRequest::BlockedInsert { txn, file, records });
    let DpReply::Subset { affected, .. } = reply else {
        panic!()
    };
    assert_eq!(affected, 100);
    let d = c.sim.metrics.since(&before);
    assert_eq!(d.msgs_fs_dp, 1, "100 inserts in one message");
    c.txnmgr.commit(txn, c.client).unwrap();
    assert!(matches!(
        c.send(DpRequest::Read {
            txn: None,
            file,
            key: emp_key(99),
            lock: ReadLock::None
        }),
        DpReply::Record(Some(_))
    ));
}

#[test]
fn duplicate_insert_rejected() {
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 5);
    let desc = emp_desc();
    let txn = c.txnmgr.begin();
    let row = emp_row(3, "DUP", 0, 0.0);
    let reply = c.send(DpRequest::Insert {
        txn,
        file,
        key: encode_record_key(&desc, &row),
        record: encode_row(&desc, &row).unwrap(),
    });
    assert!(matches!(reply, DpReply::Error(DpError::DuplicateKey)));
    c.txnmgr.abort(txn, c.client).unwrap();
}

#[test]
fn time_slice_limits_monopolization() {
    let config = DpConfig {
        max_records_per_request: 50,
        ..DpConfig::default()
    };
    let c = cluster_with(config);
    let file = c.create_emp();
    c.load_emps(file, 200);
    // A very selective predicate returns nothing, but the DP still must
    // yield every 50 records examined.
    let before = c.sim.metrics.snapshot();
    let mut reply = c.send(DpRequest::GetSubsetFirst {
        txn: None,
        file,
        range: KeyRange::all(),
        predicate: Some(Expr::field_cmp(0, CmpOp::Eq, Value::Int(-1))),
        projection: Some(vec![0]),
        mode: SubsetMode::Vsbb,
        lock: ReadLock::None,
    });
    let mut redrives = 0;
    loop {
        let DpReply::Subset {
            done,
            last_key,
            subset,
            examined,
            ..
        } = reply
        else {
            panic!()
        };
        assert!(examined <= 50, "time slice exceeded: {examined}");
        if done {
            break;
        }
        redrives += 1;
        reply = c.send(DpRequest::GetSubsetNext {
            subset: subset.unwrap(),
            after: last_key.unwrap(),
        });
    }
    assert!(redrives >= 3);
    let d = c.sim.metrics.since(&before);
    assert_eq!(d.dp_records_selected, 0);
    assert_eq!(d.dp_records_examined, 200);
}

#[test]
fn crash_recovery_redo_and_undo() {
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 50); // committed: must survive

    // An uncommitted transaction mutates, then the DP crashes.
    let loser = c.txnmgr.begin();
    c.send(DpRequest::UpdatePoint {
        txn: loser,
        file,
        key: emp_key(7),
        sets: SetList {
            sets: vec![(3, Expr::lit(Value::Double(-777.0)))],
        },
        constraint: None,
    });
    let desc = emp_desc();
    let row = emp_row(200, "GHOST", 0, 0.0);
    c.send(DpRequest::Insert {
        txn: loser,
        file,
        key: encode_record_key(&desc, &row),
        record: encode_row(&desc, &row).unwrap(),
    });
    // Force the loser's audit to the trail (as a steal might) so recovery
    // sees it, then crash before commit.
    c.dp.auditor.send();
    c.trail.force_up_to(u64::MAX - 1, c.sim.now());
    c.dp.crash();

    // Reopen and recover.
    let dp2 = DiskProcess::open(
        &c.ctx,
        "$DATA1",
        CpuId::new(0, 2),
        Arc::clone(&c.disk),
        DpConfig::default(),
    );
    dp2.recover();

    // Committed data survived...
    let DpReply::Record(Some(bytes)) = c.send(DpRequest::Read {
        txn: None,
        file,
        key: emp_key(7),
        lock: ReadLock::None,
    }) else {
        panic!("committed record lost")
    };
    let row = decode_row(&desc, &bytes).unwrap();
    assert_eq!(row.0[3], Value::Double(1070.0), "loser update undone");
    // ... and the loser's insert is gone.
    assert!(matches!(
        c.send(DpRequest::Read {
            txn: None,
            file,
            key: emp_key(200),
            lock: ReadLock::None
        }),
        DpReply::Record(None)
    ));
}

#[test]
fn takeover_after_cpu_failure() {
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 30);
    // Flush committed work to the trail is already done by commit.
    // Fail the primary's CPU.
    let primary_cpu = c.dp.cpu();
    c.bus.fail_cpu(primary_cpu);
    assert!(c
        .bus
        .request(
            c.client,
            "$DATA1",
            MsgKind::FsDp,
            8,
            Box::new(DpRequest::FlushCache)
        )
        .is_err());
    // Backup takes over on another CPU: opens the same (mirrored) volume
    // and recovers from the trail.
    c.dp.crash();
    let backup = DiskProcess::open(
        &c.ctx,
        "$DATA1",
        CpuId::new(0, 2),
        Arc::clone(&c.disk),
        DpConfig::default(),
    );
    backup.recover();
    // Service resumes with committed data intact.
    let DpReply::Record(Some(_)) = c.send(DpRequest::Read {
        txn: None,
        file,
        key: emp_key(29),
        lock: ReadLock::None,
    }) else {
        panic!("data lost in takeover")
    };
}

#[test]
fn checkpointing_sends_messages() {
    let config = DpConfig {
        checkpointing: true,
        ..DpConfig::default()
    };
    let c = cluster_with(config);
    c.bus
        .register("$DATA1-B", CpuId::new(0, 2), Arc::new(BackupSink));
    let file = c.create_emp();
    c.load_emps(file, 10);
    assert!(c.sim.metrics.msgs_checkpoint.get() >= 10);
}

#[test]
fn audit_mode_full_vs_field_sizes() {
    // The same one-field update of a wide record audited both ways:
    // field-compressed audit must be much smaller (E6's mechanism).
    let wide_desc = || {
        RecordDescriptor::new(
            vec![
                FieldDef::new("ID", FieldType::Int),
                FieldDef::new("FILLER", FieldType::Char(180)),
                FieldDef::new("BALANCE", FieldType::Double),
            ],
            vec![0],
        )
    };
    let run = |audit: AuditMode| {
        let c = cluster();
        let desc = wide_desc();
        let DpReply::FileCreated(file) = c.send(DpRequest::CreateFile {
            kind: FileKind::KeySequenced(desc.clone()),
        }) else {
            panic!()
        };
        let old = vec![
            Value::Int(0),
            Value::Str("X".repeat(180)),
            Value::Double(100.0),
        ];
        let key = encode_record_key(&desc, &old);
        let txn = c.txnmgr.begin();
        c.send(DpRequest::Insert {
            txn,
            file,
            key: key.clone(),
            record: encode_row(&desc, &old).unwrap(),
        });
        c.txnmgr.commit(txn, c.client).unwrap();

        let before = c.sim.metrics.snapshot();
        let txn = c.txnmgr.begin();
        let mut new = old.clone();
        new[2] = Value::Double(107.0); // one 8-byte field of a ~190-byte record
        c.send(DpRequest::UpdateRecord {
            txn,
            file,
            key,
            record: encode_row(&desc, &new).unwrap(),
            audit,
        });
        c.txnmgr.commit(txn, c.client).unwrap();
        c.sim.metrics.since(&before).audit_bytes
    };
    let full = run(AuditMode::FullImage);
    let field = run(AuditMode::FieldCompressed);
    assert!(
        field * 3 < full,
        "field-compressed audit ({field}) must be much smaller than full image ({full})"
    );
}

#[test]
fn bulk_io_and_prefetch_on_sequential_scan() {
    let cfg = DpConfig {
        cache_frames: 64,
        ..DpConfig::default()
    };
    let c = cluster_with(cfg);
    let file = c.create_emp();
    c.load_emps(file, 2000);
    // Flush and drop the cache so the scan reads from disk.
    c.send(DpRequest::FlushCache);
    c.dp.pool().crash();
    let before = c.sim.metrics.snapshot();
    let mut reply = c.send(DpRequest::GetSubsetFirst {
        txn: None,
        file,
        range: KeyRange::all(),
        predicate: None,
        projection: Some(vec![0]),
        mode: SubsetMode::Vsbb,
        lock: ReadLock::None,
    });
    loop {
        let DpReply::Subset {
            done,
            last_key,
            subset,
            ..
        } = reply
        else {
            panic!()
        };
        if done {
            break;
        }
        reply = c.send(DpRequest::GetSubsetNext {
            subset: subset.unwrap(),
            after: last_key.unwrap(),
        });
    }
    let d = c.sim.metrics.since(&before);
    assert!(d.disk_bulk_ios > 0, "sequential scan should use bulk I/O");
    assert!(
        d.disk_blocks_read > d.disk_reads,
        "multi-block strings expected"
    );
}

#[test]
fn subset_after_close_is_rejected() {
    let config = DpConfig {
        max_records_per_request: 10,
        ..DpConfig::default()
    };
    let c = cluster_with(config);
    let file = c.create_emp();
    c.load_emps(file, 50);
    let DpReply::Subset {
        subset: Some(id),
        last_key: Some(k),
        ..
    } = c.send(DpRequest::GetSubsetFirst {
        txn: None,
        file,
        range: KeyRange::all(),
        predicate: None,
        projection: Some(vec![0]),
        mode: SubsetMode::Vsbb,
        lock: ReadLock::None,
    })
    else {
        panic!("expected a re-drivable subset")
    };
    c.send(DpRequest::CloseSubset { subset: id });
    let reply = c.send(DpRequest::GetSubsetNext {
        subset: id,
        after: k,
    });
    assert!(matches!(reply, DpReply::Error(DpError::BadSubset(_))));
}

#[test]
fn wrong_file_kind_rejected() {
    let c = cluster();
    let DpReply::FileCreated(rel) = c.send(DpRequest::CreateFile {
        kind: FileKind::Relative { slot_size: 64 },
    }) else {
        panic!()
    };
    let reply = c.send(DpRequest::GetSubsetFirst {
        txn: None,
        file: rel,
        range: KeyRange::all(),
        predicate: None,
        projection: None,
        mode: SubsetMode::Rsbb,
        lock: ReadLock::None,
    });
    assert!(matches!(reply, DpReply::Error(DpError::WrongFileKind)));
    let reply = c.send(DpRequest::Read {
        txn: None,
        file: 99,
        key: vec![],
        lock: ReadLock::None,
    });
    assert!(matches!(reply, DpReply::Error(DpError::BadFile(99))));
}

#[test]
fn dirty_steal_under_memory_pressure_forces_audit() {
    // A tiny cache plus many uncommitted updates: evicting dirty pages
    // must first ship the volume's audit and force the trail (write-ahead
    // log), never write an unlogged page.
    let config = DpConfig {
        cache_frames: 8,
        write_behind: false,
        ..DpConfig::default()
    };
    let c = cluster_with(config);
    let file = c.create_emp();
    c.load_emps(file, 5000); // ~50 blocks, far beyond the 8-frame cache

    let before = c.sim.metrics.snapshot();
    let txn = c.txnmgr.begin();
    // Touch records spread over many blocks so dirty pages get stolen
    // while the transaction is still open.
    for i in (0..5000).step_by(100) {
        let reply = c.send(DpRequest::UpdatePoint {
            txn,
            file,
            key: emp_key(i),
            sets: SetList {
                sets: vec![(3, Expr::lit(Value::Double(i as f64)))],
            },
            constraint: None,
        });
        assert!(matches!(reply, DpReply::Ok), "{reply:?}");
    }
    let d = c.sim.metrics.since(&before);
    assert!(d.cache_steals > 0, "the 8-frame cache must steal");
    assert!(
        d.audit_flushes > 0,
        "stealing dirty pages must force the audit trail first"
    );
    // The uncommitted data never becomes visible after an abort, even
    // though some of it reached disk via steals.
    c.txnmgr.abort(txn, c.client).unwrap();
    let DpReply::Record(Some(bytes)) = c.send(DpRequest::Read {
        txn: None,
        file,
        key: emp_key(10),
        lock: ReadLock::None,
    }) else {
        panic!()
    };
    let row = decode_row(&emp_desc(), &bytes).unwrap();
    assert_eq!(row.0[3], Value::Double(1100.0), "undo restored the balance");
}

#[test]
fn measure_records_track_files_scbs_and_lock_waits() {
    let c = cluster();
    let file = c.create_emp();
    c.load_emps(file, 1200);

    // A filtered VSBB scan big enough to re-drive at least once.
    let mut reply = c.send(DpRequest::GetSubsetFirst {
        txn: None,
        file,
        range: KeyRange::all(),
        predicate: Some(Expr::field_cmp(0, CmpOp::Lt, Value::Int(400))),
        projection: None,
        mode: SubsetMode::Vsbb,
        lock: ReadLock::None,
    });
    loop {
        let DpReply::Subset {
            last_key,
            done,
            subset,
            ..
        } = reply
        else {
            panic!("unexpected {reply:?}")
        };
        if done {
            break;
        }
        reply = c.send(DpRequest::GetSubsetNext {
            subset: subset.expect("re-drive needs an SCB"),
            after: last_key.expect("re-drive needs a last key"),
        });
    }

    // A lock conflict: txn B waits behind txn A's exclusive record lock.
    let ta = c.txnmgr.begin();
    let tb = c.txnmgr.begin();
    assert!(matches!(
        c.send(DpRequest::Lock {
            txn: ta,
            file,
            key: Some(emp_key(5)),
            mode: LockMode::Exclusive,
        }),
        DpReply::Ok
    ));
    assert!(matches!(
        c.send(DpRequest::Lock {
            txn: tb,
            file,
            key: Some(emp_key(5)),
            mode: LockMode::Exclusive,
        }),
        DpReply::Error(DpError::Locked { .. })
    ));
    c.txnmgr.abort(ta, c.client).unwrap();
    c.txnmgr.abort(tb, c.client).unwrap();

    let snap = c.sim.measure_snapshot();
    let fname = format!("$DATA1#F{file}");
    assert_eq!(
        snap.get(EntityKind::File, &fname, Ctr::RecsExamined),
        1200,
        "every row of the file is examined once"
    );
    assert_eq!(snap.get(EntityKind::File, &fname, Ctr::RecsSelected), 400);
    assert!(snap.get(EntityKind::Scb, "$DATA1", Ctr::ScbCreated) >= 1);
    assert!(snap.get(EntityKind::Scb, "$DATA1", Ctr::ScbRedrives) >= 1);
    assert_eq!(snap.get(EntityKind::Process, "$DATA1", Ctr::LockWaits), 1);
    assert_eq!(
        snap.get(EntityKind::Process, "$DATA1", Ctr::LockDeadlocks),
        0
    );
}
