#![warn(missing_docs)]
//! The lock management component of the Disk Process.
//!
//! The paper describes concurrency control "via locking at the file, record,
//! or *generic* (key prefix) level", with SQL's VSBB extending record
//! locking to "a form of virtual block locking in which the records of the
//! virtual block are locked as a group". All four granularities reduce to
//! two shapes:
//!
//! * a **file lock**, covering every record of a file, and
//! * a **key-range lock**, covering an interval of encoded keys — a point
//!   for a record lock, a prefix range for a generic lock, and the span of
//!   a virtual block for a VSBB group lock.
//!
//! The manager is *non-blocking*: a conflicting request returns the holder
//! so the Disk Process can decide to queue, abort, or bounce the request.
//! A waits-for graph detects deadlocks when callers declare waits.
//!
//! Locking is strict two-phase: transactions release everything at
//! commit/abort via [`LockManager::release_all`].

use nsql_sim::sync::Mutex;
use std::collections::HashMap;
use std::fmt;

/// Transaction identifier (assigned by TMF; opaque here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// File identifier within one volume.
pub type FileId = u32;

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read).
    Shared,
    /// Exclusive (write).
    Exclusive,
}

impl LockMode {
    /// Classic S/X compatibility.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// What a lock covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockScope {
    /// The whole file.
    File,
    /// An inclusive interval of encoded keys. Record locks are degenerate
    /// intervals (`lo == hi`); generic (key-prefix) locks and virtual-block
    /// group locks are wider.
    KeyInterval {
        /// Low end (inclusive).
        lo: Vec<u8>,
        /// High end (inclusive).
        hi: Vec<u8>,
    },
}

impl LockScope {
    /// A record (point) lock.
    pub fn record(key: Vec<u8>) -> Self {
        LockScope::KeyInterval {
            lo: key.clone(),
            hi: key,
        }
    }

    /// A lock over `[lo, hi]` — used for virtual-block group locks.
    pub fn interval(lo: Vec<u8>, hi: Vec<u8>) -> Self {
        assert!(lo <= hi);
        LockScope::KeyInterval { lo, hi }
    }

    /// Do two scopes cover any key in common? File scope overlaps
    /// everything in the same file.
    pub fn overlaps(&self, other: &LockScope) -> bool {
        match (self, other) {
            (LockScope::File, _) | (_, LockScope::File) => true,
            (
                LockScope::KeyInterval { lo: a_lo, hi: a_hi },
                LockScope::KeyInterval { lo: b_lo, hi: b_hi },
            ) => a_lo <= b_hi && b_lo <= a_hi,
        }
    }
}

/// A held lock (internal record; exposed for tests and introspection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldLock {
    /// Owner.
    pub txn: TxnId,
    /// File the lock is on.
    pub file: FileId,
    /// Coverage.
    pub scope: LockScope,
    /// Mode.
    pub mode: LockMode,
}

/// Why a lock could not be granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Conflicts with a lock held by `holder`.
    Conflict {
        /// The transaction holding the conflicting lock.
        holder: TxnId,
    },
    /// Granting the wait would close a waits-for cycle; the requester
    /// should abort.
    Deadlock {
        /// The victim (the requester itself).
        victim: TxnId,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Conflict { holder } => write!(f, "lock conflict with {holder}"),
            LockError::Deadlock { victim } => write!(f, "deadlock; victim {victim}"),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Default)]
struct State {
    held: Vec<HeldLock>,
    /// waiter -> holder edges, declared by callers that decide to block.
    waits_for: HashMap<TxnId, TxnId>,
}

/// The per-volume lock manager.
#[derive(Default)]
pub struct LockManager {
    state: Mutex<State>,
}

impl LockManager {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to acquire a lock. On success the lock is recorded (re-acquiring
    /// a covered lock in the same or weaker mode is a no-op; a stronger mode
    /// upgrades when no other holder conflicts).
    pub fn acquire(
        &self,
        txn: TxnId,
        file: FileId,
        scope: LockScope,
        mode: LockMode,
    ) -> Result<(), LockError> {
        let mut st = self.state.lock();
        // Conflict scan: any overlapping lock by another txn in an
        // incompatible mode blocks us.
        for h in &st.held {
            if h.txn != txn
                && h.file == file
                && h.scope.overlaps(&scope)
                && !h.mode.compatible(mode)
            {
                return Err(LockError::Conflict { holder: h.txn });
            }
        }
        // Already covered by one of our own locks at sufficient strength?
        let covered = st.held.iter().any(|h| {
            h.txn == txn
                && h.file == file
                && covers(&h.scope, &scope)
                && (h.mode == LockMode::Exclusive || mode == LockMode::Shared)
        });
        if !covered {
            st.held.push(HeldLock {
                txn,
                file,
                scope,
                mode,
            });
        }
        Ok(())
    }

    /// Declare that `waiter` intends to wait for `holder`. Returns
    /// `Deadlock` if the new edge closes a cycle (the waiter is the victim),
    /// otherwise records the edge.
    pub fn wait_for(&self, waiter: TxnId, holder: TxnId) -> Result<(), LockError> {
        let mut st = self.state.lock();
        if holder == waiter {
            return Err(LockError::Deadlock { victim: waiter });
        }
        // Walk holder's wait chain; if it reaches `waiter` we have a cycle.
        let mut cur = holder;
        let mut hops = 0;
        while let Some(&next) = st.waits_for.get(&cur) {
            if next == waiter {
                return Err(LockError::Deadlock { victim: waiter });
            }
            cur = next;
            hops += 1;
            if hops > st.waits_for.len() {
                break; // defensive: malformed graph
            }
        }
        st.waits_for.insert(waiter, holder);
        Ok(())
    }

    /// Remove the waits-for edge of `waiter` (it got the lock or gave up).
    pub fn stop_waiting(&self, waiter: TxnId) {
        self.state.lock().waits_for.remove(&waiter);
    }

    /// Release every lock held by `txn` (commit/abort; strict two-phase).
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        st.held.retain(|h| h.txn != txn);
        st.waits_for.remove(&txn);
        st.waits_for.retain(|_, holder| *holder != txn);
    }

    /// Locks currently held by `txn` (for tests/inspection).
    pub fn held_by(&self, txn: TxnId) -> Vec<HeldLock> {
        self.state
            .lock()
            .held
            .iter()
            .filter(|h| h.txn == txn)
            .cloned()
            .collect()
    }

    /// Total number of held locks.
    pub fn lock_count(&self) -> usize {
        self.state.lock().held.len()
    }

    /// Would `txn` be able to acquire the lock right now? (No side effects.)
    pub fn can_acquire(&self, txn: TxnId, file: FileId, scope: &LockScope, mode: LockMode) -> bool {
        let st = self.state.lock();
        st.held.iter().all(|h| {
            h.txn == txn || h.file != file || !h.scope.overlaps(scope) || h.mode.compatible(mode)
        })
    }
}

/// Does scope `outer` cover every key `inner` covers?
fn covers(outer: &LockScope, inner: &LockScope) -> bool {
    match (outer, inner) {
        (LockScope::File, _) => true,
        (LockScope::KeyInterval { .. }, LockScope::File) => false,
        (
            LockScope::KeyInterval { lo: o_lo, hi: o_hi },
            LockScope::KeyInterval { lo: i_lo, hi: i_hi },
        ) => o_lo <= i_lo && i_hi <= o_hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(b: u8) -> Vec<u8> {
        vec![b]
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(5)), LockMode::Shared)
            .unwrap();
        lm.acquire(TxnId(2), 0, LockScope::record(k(5)), LockMode::Shared)
            .unwrap();
        assert_eq!(lm.lock_count(), 2);
    }

    #[test]
    fn exclusive_conflicts_with_any() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        assert_eq!(
            lm.acquire(TxnId(2), 0, LockScope::record(k(5)), LockMode::Shared),
            Err(LockError::Conflict { holder: TxnId(1) })
        );
        assert_eq!(
            lm.acquire(TxnId(2), 0, LockScope::record(k(5)), LockMode::Exclusive),
            Err(LockError::Conflict { holder: TxnId(1) })
        );
    }

    #[test]
    fn different_keys_dont_conflict() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        lm.acquire(TxnId(2), 0, LockScope::record(k(6)), LockMode::Exclusive)
            .unwrap();
    }

    #[test]
    fn different_files_dont_conflict() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::File, LockMode::Exclusive)
            .unwrap();
        lm.acquire(TxnId(2), 1, LockScope::File, LockMode::Exclusive)
            .unwrap();
    }

    #[test]
    fn file_lock_blocks_record_locks() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::File, LockMode::Exclusive)
            .unwrap();
        assert!(lm
            .acquire(TxnId(2), 0, LockScope::record(k(1)), LockMode::Shared)
            .is_err());
        // Shared file lock permits shared record locks but not exclusive.
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::File, LockMode::Shared)
            .unwrap();
        assert!(lm
            .acquire(TxnId(2), 0, LockScope::record(k(1)), LockMode::Shared)
            .is_ok());
        assert!(lm
            .acquire(TxnId(3), 0, LockScope::record(k(2)), LockMode::Exclusive)
            .is_err());
    }

    #[test]
    fn generic_prefix_lock_blocks_interval() {
        // A virtual-block group lock over [10, 20] conflicts with a write
        // to key 15 but not to key 25 — this is experiment E13's mechanism.
        let lm = LockManager::new();
        lm.acquire(
            TxnId(1),
            0,
            LockScope::interval(k(10), k(20)),
            LockMode::Shared,
        )
        .unwrap();
        assert!(lm
            .acquire(TxnId(2), 0, LockScope::record(k(15)), LockMode::Exclusive)
            .is_err());
        assert!(lm
            .acquire(TxnId(2), 0, LockScope::record(k(25)), LockMode::Exclusive)
            .is_ok());
    }

    #[test]
    fn reacquire_is_idempotent_and_upgrade_works() {
        let lm = LockManager::new();
        let t = TxnId(1);
        lm.acquire(t, 0, LockScope::record(k(5)), LockMode::Shared)
            .unwrap();
        lm.acquire(t, 0, LockScope::record(k(5)), LockMode::Shared)
            .unwrap();
        assert_eq!(lm.lock_count(), 1, "covered re-acquire adds nothing");
        // Upgrade to exclusive with no other holder.
        lm.acquire(t, 0, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        assert!(!lm.can_acquire(TxnId(2), 0, &LockScope::record(k(5)), LockMode::Shared));
        // Upgrade blocked by another shared holder.
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(7)), LockMode::Shared)
            .unwrap();
        lm.acquire(TxnId(2), 0, LockScope::record(k(7)), LockMode::Shared)
            .unwrap();
        assert!(lm
            .acquire(TxnId(1), 0, LockScope::record(k(7)), LockMode::Exclusive)
            .is_err());
    }

    #[test]
    fn release_all_frees_everything() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(1)), LockMode::Exclusive)
            .unwrap();
        lm.acquire(TxnId(1), 1, LockScope::File, LockMode::Shared)
            .unwrap();
        lm.release_all(TxnId(1));
        assert_eq!(lm.lock_count(), 0);
        assert!(lm
            .acquire(TxnId(2), 0, LockScope::record(k(1)), LockMode::Exclusive)
            .is_ok());
    }

    #[test]
    fn deadlock_detected_on_cycle() {
        let lm = LockManager::new();
        // T1 waits for T2, T2 waits for T3: fine.
        lm.wait_for(TxnId(1), TxnId(2)).unwrap();
        lm.wait_for(TxnId(2), TxnId(3)).unwrap();
        // T3 waiting for T1 closes the cycle.
        assert_eq!(
            lm.wait_for(TxnId(3), TxnId(1)),
            Err(LockError::Deadlock { victim: TxnId(3) })
        );
        // After T1 stops waiting, the edge is gone and T3 may wait.
        lm.stop_waiting(TxnId(1));
        lm.wait_for(TxnId(3), TxnId(1)).unwrap();
    }

    #[test]
    fn self_wait_is_deadlock() {
        let lm = LockManager::new();
        assert!(lm.wait_for(TxnId(1), TxnId(1)).is_err());
    }

    #[test]
    fn release_clears_wait_edges() {
        let lm = LockManager::new();
        lm.wait_for(TxnId(1), TxnId(2)).unwrap();
        lm.release_all(TxnId(2));
        // T2 gone: T2->? edges and ?->T2 edges cleared, so no cycle now.
        lm.wait_for(TxnId(2), TxnId(1)).unwrap();
    }

    #[test]
    fn held_by_reports_scopes() {
        let lm = LockManager::new();
        lm.acquire(TxnId(9), 3, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        let held = lm.held_by(TxnId(9));
        assert_eq!(held.len(), 1);
        assert_eq!(held[0].file, 3);
        assert_eq!(held[0].mode, LockMode::Exclusive);
    }

    #[test]
    fn scope_overlap_relations() {
        let a = LockScope::interval(k(1), k(5));
        let b = LockScope::interval(k(5), k(9));
        let c = LockScope::interval(k(6), k(9));
        assert!(a.overlaps(&b), "shared endpoint overlaps");
        assert!(!a.overlaps(&c));
        assert!(LockScope::File.overlaps(&a));
    }
}
