#![warn(missing_docs)]
//! The lock management component of the Disk Process.
//!
//! The paper describes concurrency control "via locking at the file, record,
//! or *generic* (key prefix) level", with SQL's VSBB extending record
//! locking to "a form of virtual block locking in which the records of the
//! virtual block are locked as a group". All four granularities reduce to
//! two shapes:
//!
//! * a **file lock**, covering every record of a file, and
//! * a **key-range lock**, covering an interval of encoded keys — a point
//!   for a record lock, a prefix range for a generic lock, and the span of
//!   a virtual block for a VSBB group lock.
//!
//! The manager is *non-blocking*: a conflicting request returns the holder
//! so the Disk Process can decide to queue, abort, or bounce the request.
//! A waits-for graph detects deadlocks when callers declare waits.
//!
//! Contention survivability (multi-terminal workloads) adds three rules:
//!
//! * **FIFO grant order** — a declared waiter joins a queue; a later
//!   incompatible request is bounced off the queued waiter (not just off
//!   the holder), so convoys drain in arrival order instead of racing on
//!   each release. A transaction that already holds an overlapping lock
//!   (re-acquire, upgrade) bypasses the queue — queue-jumping upgrades
//!   avoid a guaranteed upgrade deadlock.
//! * **Youngest victim** — when a declared wait closes a waits-for cycle,
//!   the *youngest* member of the cycle (highest [`TxnId`]: transaction
//!   ids are assigned in begin order) is chosen as the victim, has its
//!   wait state cleared, and is reported in [`LockError::Deadlock`]; the
//!   caller dooms it so its client aborts, rolls back through the audit
//!   trail, and retries. Aborting the youngest wastes the least work.
//! * **Wait timeout** — with [`LockManager::set_wait_timeout`] armed, a
//!   waiter whose (virtual-time) wait exceeds the budget is bounced with
//!   [`LockError::WaitTimeout`]: convoy stragglers are doomed instead of
//!   waiting forever behind a pathological queue.
//!
//! Locking is strict two-phase: transactions release everything at
//! commit/abort via [`LockManager::release_all`].
//!
//! **Model-checked mirror:** `crates/lint/src/lockmodel.rs` re-implements
//! the acquire / FIFO-fairness / upgrade / `close_cycle` / timeout
//! branches of this file and exhausts every interleaving of them
//! (`nsql-lint check-locks`). When changing a branch here, change the
//! mirror in the same PR — its pinned mutation counterexamples are the
//! proof that each branch is load-bearing.

use nsql_sim::sync::Mutex;
use std::collections::HashMap;
use std::fmt;

/// Transaction identifier (assigned by TMF; opaque here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// File identifier within one volume.
pub type FileId = u32;

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read).
    Shared,
    /// Exclusive (write).
    Exclusive,
}

impl LockMode {
    /// Classic S/X compatibility.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// What a lock covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockScope {
    /// The whole file.
    File,
    /// An inclusive interval of encoded keys. Record locks are degenerate
    /// intervals (`lo == hi`); generic (key-prefix) locks and virtual-block
    /// group locks are wider.
    KeyInterval {
        /// Low end (inclusive).
        lo: Vec<u8>,
        /// High end (inclusive).
        hi: Vec<u8>,
    },
}

impl LockScope {
    /// A record (point) lock.
    pub fn record(key: Vec<u8>) -> Self {
        LockScope::KeyInterval {
            lo: key.clone(),
            hi: key,
        }
    }

    /// A lock over `[lo, hi]` — used for virtual-block group locks.
    pub fn interval(lo: Vec<u8>, hi: Vec<u8>) -> Self {
        assert!(lo <= hi);
        LockScope::KeyInterval { lo, hi }
    }

    /// Do two scopes cover any key in common? File scope overlaps
    /// everything in the same file.
    pub fn overlaps(&self, other: &LockScope) -> bool {
        match (self, other) {
            (LockScope::File, _) | (_, LockScope::File) => true,
            (
                LockScope::KeyInterval { lo: a_lo, hi: a_hi },
                LockScope::KeyInterval { lo: b_lo, hi: b_hi },
            ) => a_lo <= b_hi && b_lo <= a_hi,
        }
    }
}

/// A held lock (internal record; exposed for tests and introspection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldLock {
    /// Owner.
    pub txn: TxnId,
    /// File the lock is on.
    pub file: FileId,
    /// Coverage.
    pub scope: LockScope,
    /// Mode.
    pub mode: LockMode,
}

/// Why a lock could not be granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Conflicts with a lock held (or a grant queued ahead) by `holder`.
    Conflict {
        /// The transaction holding (or queued for) the conflicting lock.
        holder: TxnId,
    },
    /// The wait would close a waits-for cycle. `victim` is the youngest
    /// member of the cycle (highest [`TxnId`]) — possibly, but not
    /// necessarily, the requester — and its wait state has been cleared;
    /// the caller must doom it so the cycle actually dissolves.
    Deadlock {
        /// The youngest transaction in the cycle.
        victim: TxnId,
    },
    /// The waiter exceeded the lock-wait timeout budget and has been
    /// dequeued; the caller should doom it.
    WaitTimeout {
        /// The timed-out waiter itself.
        victim: TxnId,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Conflict { holder } => write!(f, "lock conflict with {holder}"),
            LockError::Deadlock { victim } => write!(f, "deadlock; victim {victim}"),
            LockError::WaitTimeout { victim } => write!(f, "lock wait timeout; victim {victim}"),
        }
    }
}

impl std::error::Error for LockError {}

/// A queued lock request (FIFO by arrival; `since` is virtual time).
struct Waiter {
    txn: TxnId,
    file: FileId,
    scope: LockScope,
    mode: LockMode,
    since: u64,
}

/// A queued lock request as reported to introspection readers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitingLock {
    /// The blocked requester.
    pub txn: TxnId,
    /// File the request is on.
    pub file: FileId,
    /// Requested coverage.
    pub scope: LockScope,
    /// Requested mode.
    pub mode: LockMode,
    /// Virtual time the request joined the queue.
    pub since: u64,
}

#[derive(Default)]
struct State {
    held: Vec<HeldLock>,
    /// FIFO queue of declared waiters; arrival order is grant order.
    waiters: Vec<Waiter>,
    /// waiter -> holder edges, declared by callers that decide to block.
    waits_for: HashMap<TxnId, TxnId>,
    /// Lock-wait timeout budget in virtual microseconds (0 = disabled).
    timeout_us: u64,
}

/// The per-volume lock manager.
#[derive(Default)]
pub struct LockManager {
    state: Mutex<State>,
}

impl LockManager {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or, with `0`, disarm) the lock-wait timeout: a waiter whose
    /// virtual-time wait reaches `us` microseconds is bounced from the
    /// queue with [`LockError::WaitTimeout`] on its next [`Self::wait`].
    pub fn set_wait_timeout(&self, us: u64) {
        self.state.lock().timeout_us = us;
    }

    /// Try to acquire a lock. On success the lock is recorded and any wait
    /// state of `txn` is cleared (re-acquiring a covered lock in the same
    /// or weaker mode is a no-op; a stronger mode upgrades when no other
    /// holder conflicts). Grants are FIFO-fair: a request that would jump
    /// an earlier incompatible queued waiter is bounced off that waiter,
    /// unless the requester already holds an overlapping lock on the file
    /// (upgrades jump the queue — parking an upgrade behind a queued
    /// request for the same key is a guaranteed deadlock).
    pub fn acquire(
        &self,
        txn: TxnId,
        file: FileId,
        scope: LockScope,
        mode: LockMode,
    ) -> Result<(), LockError> {
        let mut st = self.state.lock();
        // Already covered by one of our own locks at sufficient strength?
        let covered = st.held.iter().any(|h| {
            h.txn == txn
                && h.file == file
                && covers(&h.scope, &scope)
                && (h.mode == LockMode::Exclusive || mode == LockMode::Shared)
        });
        if covered {
            st.waiters.retain(|w| w.txn != txn);
            st.waits_for.remove(&txn);
            return Ok(());
        }
        // Conflict scan: any overlapping lock by another txn in an
        // incompatible mode blocks us.
        for h in &st.held {
            if h.txn != txn
                && h.file == file
                && h.scope.overlaps(&scope)
                && !h.mode.compatible(mode)
            {
                return Err(LockError::Conflict { holder: h.txn });
            }
        }
        // FIFO fairness scan: an incompatible waiter queued before us (or
        // before our own queue position) gets the grant first.
        let upgrading = st
            .held
            .iter()
            .any(|h| h.txn == txn && h.file == file && h.scope.overlaps(&scope));
        if !upgrading {
            for w in &st.waiters {
                if w.txn == txn {
                    break; // only arrivals ahead of our own position count
                }
                if w.file == file && w.scope.overlaps(&scope) && !w.mode.compatible(mode) {
                    return Err(LockError::Conflict { holder: w.txn });
                }
            }
        }
        st.held.push(HeldLock {
            txn,
            file,
            scope,
            mode,
        });
        st.waiters.retain(|w| w.txn != txn);
        st.waits_for.remove(&txn);
        Ok(())
    }

    /// Declare that `waiter` is queued behind `holder` for the given lock,
    /// at virtual time `now_us`. The waiter keeps its FIFO position across
    /// repeated polls of the *same* request (a changed request forfeits the
    /// old position). Errors:
    ///
    /// * [`LockError::WaitTimeout`] once the armed timeout budget elapses —
    ///   the waiter is dequeued; the caller should doom it.
    /// * [`LockError::Deadlock`] when the edge closes a waits-for cycle —
    ///   the *youngest* cycle member is the victim and its wait state is
    ///   cleared; when the victim is someone else, the waiter's edge is
    ///   still recorded and it keeps waiting.
    pub fn wait(
        &self,
        waiter: TxnId,
        holder: TxnId,
        file: FileId,
        scope: LockScope,
        mode: LockMode,
        now_us: u64,
    ) -> Result<(), LockError> {
        let mut st = self.state.lock();
        if holder == waiter {
            return Err(LockError::Deadlock { victim: waiter });
        }
        // Find or create the FIFO queue entry.
        let since = match st.waiters.iter_mut().find(|w| w.txn == waiter) {
            Some(w) => {
                if w.file != file || w.scope != scope || w.mode != mode {
                    // A different request forfeits the old queue position.
                    w.file = file;
                    w.scope = scope;
                    w.mode = mode;
                    w.since = now_us;
                }
                w.since
            }
            None => {
                st.waiters.push(Waiter {
                    txn: waiter,
                    file,
                    scope,
                    mode,
                    since: now_us,
                });
                now_us
            }
        };
        let timeout = st.timeout_us;
        if timeout > 0 && now_us.saturating_sub(since) >= timeout {
            st.waiters.retain(|w| w.txn != waiter);
            st.waits_for.remove(&waiter);
            return Err(LockError::WaitTimeout { victim: waiter });
        }
        close_cycle(&mut st, waiter, holder)
    }

    /// Declare that `waiter` intends to wait for `holder` (legacy edge-only
    /// API: no queue entry, no timeout). Returns `Deadlock` with the
    /// youngest cycle member as victim if the new edge closes a cycle,
    /// otherwise records the edge.
    pub fn wait_for(&self, waiter: TxnId, holder: TxnId) -> Result<(), LockError> {
        let mut st = self.state.lock();
        if holder == waiter {
            return Err(LockError::Deadlock { victim: waiter });
        }
        close_cycle(&mut st, waiter, holder)
    }

    /// Remove the wait state of `waiter` (it got the lock or gave up).
    pub fn stop_waiting(&self, waiter: TxnId) {
        let mut st = self.state.lock();
        st.waits_for.remove(&waiter);
        st.waiters.retain(|w| w.txn != waiter);
    }

    /// Release every lock held by `txn` (commit/abort; strict two-phase).
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        st.held.retain(|h| h.txn != txn);
        st.waiters.retain(|w| w.txn != txn);
        st.waits_for.remove(&txn);
        st.waits_for.retain(|_, holder| *holder != txn);
    }

    /// Locks currently held by `txn` (for tests/inspection).
    pub fn held_by(&self, txn: TxnId) -> Vec<HeldLock> {
        self.state
            .lock()
            .held
            .iter()
            .filter(|h| h.txn == txn)
            .cloned()
            .collect()
    }

    /// Total number of held locks.
    pub fn lock_count(&self) -> usize {
        self.state.lock().held.len()
    }

    /// Number of queued waiters (leak detector for property tests: must be
    /// zero once every transaction has committed, aborted, or timed out).
    pub fn waiting_count(&self) -> usize {
        self.state.lock().waiters.len()
    }

    /// Number of waits-for edges (leak detector, like
    /// [`Self::waiting_count`]).
    pub fn wait_edge_count(&self) -> usize {
        self.state.lock().waits_for.len()
    }

    /// Snapshot of every held lock, in grant order. A pure read for
    /// introspection (`sys.locks`): no clock, counter, or queue effects.
    pub fn held(&self) -> Vec<HeldLock> {
        self.state.lock().held.clone()
    }

    /// Snapshot of the waiter queue in FIFO (arrival = grant) order. Pure
    /// read for introspection (`sys.lock_waiters`), like [`Self::held`].
    pub fn waiters(&self) -> Vec<WaitingLock> {
        self.state
            .lock()
            .waiters
            .iter()
            .map(|w| WaitingLock {
                txn: w.txn,
                file: w.file,
                scope: w.scope.clone(),
                mode: w.mode,
                since: w.since,
            })
            .collect()
    }

    /// Snapshot of the declared `waiter -> holder` edges, sorted by waiter
    /// for deterministic rendering.
    pub fn wait_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges: Vec<(TxnId, TxnId)> = self
            .state
            .lock()
            .waits_for
            .iter()
            .map(|(w, h)| (*w, *h))
            .collect();
        edges.sort_unstable();
        edges
    }

    /// Would `txn` be able to acquire the lock right now? (No side effects.)
    pub fn can_acquire(&self, txn: TxnId, file: FileId, scope: &LockScope, mode: LockMode) -> bool {
        let st = self.state.lock();
        st.held.iter().all(|h| {
            h.txn == txn || h.file != file || !h.scope.overlaps(scope) || h.mode.compatible(mode)
        })
    }
}

/// Record the `waiter -> holder` edge unless it closes a waits-for cycle;
/// on a cycle, pick the youngest member as victim, clear the victim's wait
/// state (which breaks the cycle), and report `Deadlock`. When the victim
/// is not the waiter, the waiter's edge is still recorded — the cycle is
/// already broken, so the edge is safe and the waiter keeps its place.
fn close_cycle(st: &mut State, waiter: TxnId, holder: TxnId) -> Result<(), LockError> {
    // Walk holder's wait chain; if it reaches `waiter` we have a cycle and
    // `members` holds every transaction on it.
    let mut members = vec![waiter, holder];
    let mut cur = holder;
    let mut hops = 0;
    while let Some(&next) = st.waits_for.get(&cur) {
        if next == waiter {
            let victim = members.iter().copied().fold(waiter, TxnId::max);
            st.waits_for.remove(&victim);
            st.waiters.retain(|w| w.txn != victim);
            if victim != waiter {
                st.waits_for.insert(waiter, holder);
            }
            return Err(LockError::Deadlock { victim });
        }
        members.push(next);
        cur = next;
        hops += 1;
        if hops > st.waits_for.len() {
            break; // defensive: malformed graph
        }
    }
    st.waits_for.insert(waiter, holder);
    Ok(())
}

/// Does scope `outer` cover every key `inner` covers?
fn covers(outer: &LockScope, inner: &LockScope) -> bool {
    match (outer, inner) {
        (LockScope::File, _) => true,
        (LockScope::KeyInterval { .. }, LockScope::File) => false,
        (
            LockScope::KeyInterval { lo: o_lo, hi: o_hi },
            LockScope::KeyInterval { lo: i_lo, hi: i_hi },
        ) => o_lo <= i_lo && i_hi <= o_hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(b: u8) -> Vec<u8> {
        vec![b]
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(5)), LockMode::Shared)
            .unwrap();
        lm.acquire(TxnId(2), 0, LockScope::record(k(5)), LockMode::Shared)
            .unwrap();
        assert_eq!(lm.lock_count(), 2);
    }

    #[test]
    fn exclusive_conflicts_with_any() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        assert_eq!(
            lm.acquire(TxnId(2), 0, LockScope::record(k(5)), LockMode::Shared),
            Err(LockError::Conflict { holder: TxnId(1) })
        );
        assert_eq!(
            lm.acquire(TxnId(2), 0, LockScope::record(k(5)), LockMode::Exclusive),
            Err(LockError::Conflict { holder: TxnId(1) })
        );
    }

    #[test]
    fn different_keys_dont_conflict() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        lm.acquire(TxnId(2), 0, LockScope::record(k(6)), LockMode::Exclusive)
            .unwrap();
    }

    #[test]
    fn different_files_dont_conflict() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::File, LockMode::Exclusive)
            .unwrap();
        lm.acquire(TxnId(2), 1, LockScope::File, LockMode::Exclusive)
            .unwrap();
    }

    #[test]
    fn file_lock_blocks_record_locks() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::File, LockMode::Exclusive)
            .unwrap();
        assert!(lm
            .acquire(TxnId(2), 0, LockScope::record(k(1)), LockMode::Shared)
            .is_err());
        // Shared file lock permits shared record locks but not exclusive.
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::File, LockMode::Shared)
            .unwrap();
        assert!(lm
            .acquire(TxnId(2), 0, LockScope::record(k(1)), LockMode::Shared)
            .is_ok());
        assert!(lm
            .acquire(TxnId(3), 0, LockScope::record(k(2)), LockMode::Exclusive)
            .is_err());
    }

    #[test]
    fn generic_prefix_lock_blocks_interval() {
        // A virtual-block group lock over [10, 20] conflicts with a write
        // to key 15 but not to key 25 — this is experiment E13's mechanism.
        let lm = LockManager::new();
        lm.acquire(
            TxnId(1),
            0,
            LockScope::interval(k(10), k(20)),
            LockMode::Shared,
        )
        .unwrap();
        assert!(lm
            .acquire(TxnId(2), 0, LockScope::record(k(15)), LockMode::Exclusive)
            .is_err());
        assert!(lm
            .acquire(TxnId(2), 0, LockScope::record(k(25)), LockMode::Exclusive)
            .is_ok());
    }

    #[test]
    fn reacquire_is_idempotent_and_upgrade_works() {
        let lm = LockManager::new();
        let t = TxnId(1);
        lm.acquire(t, 0, LockScope::record(k(5)), LockMode::Shared)
            .unwrap();
        lm.acquire(t, 0, LockScope::record(k(5)), LockMode::Shared)
            .unwrap();
        assert_eq!(lm.lock_count(), 1, "covered re-acquire adds nothing");
        // Upgrade to exclusive with no other holder.
        lm.acquire(t, 0, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        assert!(!lm.can_acquire(TxnId(2), 0, &LockScope::record(k(5)), LockMode::Shared));
        // Upgrade blocked by another shared holder.
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(7)), LockMode::Shared)
            .unwrap();
        lm.acquire(TxnId(2), 0, LockScope::record(k(7)), LockMode::Shared)
            .unwrap();
        assert!(lm
            .acquire(TxnId(1), 0, LockScope::record(k(7)), LockMode::Exclusive)
            .is_err());
    }

    #[test]
    fn release_all_frees_everything() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(1)), LockMode::Exclusive)
            .unwrap();
        lm.acquire(TxnId(1), 1, LockScope::File, LockMode::Shared)
            .unwrap();
        lm.release_all(TxnId(1));
        assert_eq!(lm.lock_count(), 0);
        assert!(lm
            .acquire(TxnId(2), 0, LockScope::record(k(1)), LockMode::Exclusive)
            .is_ok());
    }

    #[test]
    fn deadlock_detected_on_cycle() {
        let lm = LockManager::new();
        // T1 waits for T2, T2 waits for T3: fine.
        lm.wait_for(TxnId(1), TxnId(2)).unwrap();
        lm.wait_for(TxnId(2), TxnId(3)).unwrap();
        // T3 waiting for T1 closes the cycle.
        assert_eq!(
            lm.wait_for(TxnId(3), TxnId(1)),
            Err(LockError::Deadlock { victim: TxnId(3) })
        );
        // After T1 stops waiting, the edge is gone and T3 may wait.
        lm.stop_waiting(TxnId(1));
        lm.wait_for(TxnId(3), TxnId(1)).unwrap();
    }

    #[test]
    fn self_wait_is_deadlock() {
        let lm = LockManager::new();
        assert!(lm.wait_for(TxnId(1), TxnId(1)).is_err());
    }

    #[test]
    fn release_clears_wait_edges() {
        let lm = LockManager::new();
        lm.wait_for(TxnId(1), TxnId(2)).unwrap();
        lm.release_all(TxnId(2));
        // T2 gone: T2->? edges and ?->T2 edges cleared, so no cycle now.
        lm.wait_for(TxnId(2), TxnId(1)).unwrap();
    }

    #[test]
    fn held_by_reports_scopes() {
        let lm = LockManager::new();
        lm.acquire(TxnId(9), 3, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        let held = lm.held_by(TxnId(9));
        assert_eq!(held.len(), 1);
        assert_eq!(held[0].file, 3);
        assert_eq!(held[0].mode, LockMode::Exclusive);
    }

    #[test]
    fn fifo_queue_bounces_later_arrivals_until_the_head_is_served() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        // T2 then T3 queue behind T1, in that order.
        lm.wait(
            TxnId(2),
            TxnId(1),
            0,
            LockScope::record(k(5)),
            LockMode::Exclusive,
            10,
        )
        .unwrap();
        lm.wait(
            TxnId(3),
            TxnId(1),
            0,
            LockScope::record(k(5)),
            LockMode::Exclusive,
            20,
        )
        .unwrap();
        assert_eq!(lm.waiting_count(), 2);
        lm.release_all(TxnId(1));
        // T3 must not overtake T2: it bounces off the queued waiter.
        assert_eq!(
            lm.acquire(TxnId(3), 0, LockScope::record(k(5)), LockMode::Exclusive),
            Err(LockError::Conflict { holder: TxnId(2) })
        );
        lm.acquire(TxnId(2), 0, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        // Granting purged T2's wait state.
        assert_eq!(lm.waiting_count(), 1);
        lm.release_all(TxnId(2));
        lm.acquire(TxnId(3), 0, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        assert_eq!(lm.waiting_count(), 0);
        assert_eq!(lm.wait_edge_count(), 0);
    }

    #[test]
    fn upgrade_jumps_the_wait_queue() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, LockScope::record(k(5)), LockMode::Shared)
            .unwrap();
        // T2 queues for an exclusive on the same key.
        lm.wait(
            TxnId(2),
            TxnId(1),
            0,
            LockScope::record(k(5)),
            LockMode::Exclusive,
            0,
        )
        .unwrap();
        // T1's upgrade must not park behind T2 — that would deadlock.
        lm.acquire(TxnId(1), 0, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
    }

    #[test]
    fn youngest_cycle_member_is_the_victim() {
        let lm = LockManager::new();
        // T3 waits for T1; then T1 closing the cycle picks T3 (younger).
        lm.wait_for(TxnId(3), TxnId(1)).unwrap();
        assert_eq!(
            lm.wait_for(TxnId(1), TxnId(3)),
            Err(LockError::Deadlock { victim: TxnId(3) })
        );
        // T3's edge was cleared (cycle broken) and T1's edge recorded, so
        // T1 is genuinely waiting on the doomed T3.
        assert_eq!(lm.wait_edge_count(), 1);
        lm.stop_waiting(TxnId(1));
        assert_eq!(lm.wait_edge_count(), 0);
    }

    #[test]
    fn wait_timeout_bounces_stragglers_and_clears_state() {
        let lm = LockManager::new();
        lm.set_wait_timeout(1000);
        lm.acquire(TxnId(1), 0, LockScope::record(k(5)), LockMode::Exclusive)
            .unwrap();
        let w = |now| {
            lm.wait(
                TxnId(2),
                TxnId(1),
                0,
                LockScope::record(k(5)),
                LockMode::Exclusive,
                now,
            )
        };
        w(100).unwrap();
        w(1000).unwrap(); // 900 elapsed: still under budget
        assert_eq!(w(1100), Err(LockError::WaitTimeout { victim: TxnId(2) }));
        assert_eq!(lm.waiting_count(), 0);
        assert_eq!(lm.wait_edge_count(), 0);
        // A changed request resets the clock (old position forfeited).
        w(2000).unwrap();
        assert!(lm
            .wait(
                TxnId(2),
                TxnId(1),
                0,
                LockScope::record(k(6)),
                LockMode::Exclusive,
                2900,
            )
            .is_ok());
        assert!(lm
            .wait(
                TxnId(2),
                TxnId(1),
                0,
                LockScope::record(k(6)),
                LockMode::Exclusive,
                4000,
            )
            .is_err());
    }

    #[test]
    fn scope_overlap_relations() {
        let a = LockScope::interval(k(1), k(5));
        let b = LockScope::interval(k(5), k(9));
        let c = LockScope::interval(k(6), k(9));
        assert!(a.overlaps(&b), "shared endpoint overlaps");
        assert!(!a.overlaps(&c));
        assert!(LockScope::File.overlaps(&a));
    }
}
