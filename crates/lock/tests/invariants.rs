//! Randomised invariants of the lock manager, driven by a seeded RNG so
//! every run explores the same operation sequences.

use nsql_lock::{LockManager, LockMode, LockScope, TxnId};
use nsql_sim::SimRng;

#[derive(Debug, Clone)]
enum Op {
    Acquire {
        txn: u8,
        file: u8,
        lo: u8,
        len: u8,
        exclusive: bool,
    },
    AcquireFile {
        txn: u8,
        file: u8,
        exclusive: bool,
    },
    Release(u8),
}

fn draw_op(rng: &mut SimRng) -> Op {
    match rng.below(3) {
        0 => Op::Acquire {
            txn: rng.below(6) as u8,
            file: rng.below(3) as u8,
            lo: rng.below(256) as u8,
            len: rng.below(16) as u8,
            exclusive: rng.chance(0.5),
        },
        1 => Op::AcquireFile {
            txn: rng.below(6) as u8,
            file: rng.below(3) as u8,
            exclusive: rng.chance(0.5),
        },
        _ => Op::Release(rng.below(6) as u8),
    }
}

fn scope_of(lo: u8, len: u8) -> LockScope {
    let hi = lo.saturating_add(len);
    LockScope::interval(vec![lo], vec![hi])
}

/// After any sequence of acquires and releases, the set of held locks is
/// conflict-free: no two different transactions hold overlapping locks in
/// incompatible modes.
#[test]
fn held_locks_never_conflict() {
    for case in 0..128u64 {
        let mut rng = SimRng::seed_from(0xA0 + case);
        let nops = 1 + rng.below(200) as usize;
        let lm = LockManager::new();
        for _ in 0..nops {
            match draw_op(&mut rng) {
                Op::Acquire {
                    txn,
                    file,
                    lo,
                    len,
                    exclusive,
                } => {
                    let mode = if exclusive {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    let _ = lm.acquire(TxnId(txn as u64), file as u32, scope_of(lo, len), mode);
                }
                Op::AcquireFile {
                    txn,
                    file,
                    exclusive,
                } => {
                    let mode = if exclusive {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    let _ = lm.acquire(TxnId(txn as u64), file as u32, LockScope::File, mode);
                }
                Op::Release(txn) => lm.release_all(TxnId(txn as u64)),
            }
            // Invariant: every pair of held locks from different txns on
            // the same file is either non-overlapping or compatible.
            let mut all = Vec::new();
            for t in 0..6u64 {
                all.extend(lm.held_by(TxnId(t)));
            }
            for a in &all {
                for b in &all {
                    if a.txn != b.txn && a.file == b.file && a.scope.overlaps(&b.scope) {
                        assert!(
                            a.mode.compatible(b.mode),
                            "conflicting locks held: {a:?} vs {b:?}"
                        );
                    }
                }
            }
        }
    }
}

/// Granted requests are exactly those `can_acquire` predicted.
#[test]
fn can_acquire_is_consistent() {
    for case in 0..128u64 {
        let mut rng = SimRng::seed_from(0xB0 + case);
        let nops = 1 + rng.below(100) as usize;
        let lm = LockManager::new();
        for _ in 0..nops {
            if let Op::Acquire {
                txn,
                file,
                lo,
                len,
                exclusive,
            } = draw_op(&mut rng)
            {
                let mode = if exclusive {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                let scope = scope_of(lo, len);
                let predicted = lm.can_acquire(TxnId(txn as u64), file as u32, &scope, mode);
                let granted = lm
                    .acquire(TxnId(txn as u64), file as u32, scope, mode)
                    .is_ok();
                assert_eq!(predicted, granted);
            }
        }
    }
}

/// Release makes everything re-acquirable by anyone.
#[test]
fn release_unblocks() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from(0xC0 + case);
        let (lo, len) = (rng.below(256) as u8, rng.below(16) as u8);
        let mode = if rng.chance(0.5) {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, scope_of(lo, len), mode).unwrap();
        lm.release_all(TxnId(1));
        lm.acquire(TxnId(2), 0, scope_of(lo, len), LockMode::Exclusive)
            .unwrap();
    }
}
