//! Property-based invariants of the lock manager.

use nsql_lock::{LockManager, LockMode, LockScope, TxnId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Acquire {
        txn: u8,
        file: u8,
        lo: u8,
        len: u8,
        exclusive: bool,
    },
    AcquireFile {
        txn: u8,
        file: u8,
        exclusive: bool,
    },
    Release(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..3, any::<u8>(), 0u8..16, any::<bool>()).prop_map(
            |(txn, file, lo, len, exclusive)| Op::Acquire {
                txn,
                file,
                lo,
                len,
                exclusive,
            }
        ),
        (0u8..6, 0u8..3, any::<bool>()).prop_map(|(txn, file, exclusive)| Op::AcquireFile {
            txn,
            file,
            exclusive
        }),
        (0u8..6).prop_map(Op::Release),
    ]
}

fn scope_of(lo: u8, len: u8) -> LockScope {
    let hi = lo.saturating_add(len);
    LockScope::interval(vec![lo], vec![hi])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any sequence of acquires and releases, the set of held locks
    /// is conflict-free: no two different transactions hold overlapping
    /// locks in incompatible modes.
    #[test]
    fn held_locks_never_conflict(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let lm = LockManager::new();
        for op in ops {
            match op {
                Op::Acquire { txn, file, lo, len, exclusive } => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let _ = lm.acquire(TxnId(txn as u64), file as u32, scope_of(lo, len), mode);
                }
                Op::AcquireFile { txn, file, exclusive } => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let _ = lm.acquire(TxnId(txn as u64), file as u32, LockScope::File, mode);
                }
                Op::Release(txn) => lm.release_all(TxnId(txn as u64)),
            }
            // Invariant: every pair of held locks from different txns on
            // the same file is either non-overlapping or compatible.
            let mut all = Vec::new();
            for t in 0..6u64 {
                all.extend(lm.held_by(TxnId(t)));
            }
            for a in &all {
                for b in &all {
                    if a.txn != b.txn && a.file == b.file && a.scope.overlaps(&b.scope) {
                        prop_assert!(
                            a.mode.compatible(b.mode),
                            "conflicting locks held: {a:?} vs {b:?}"
                        );
                    }
                }
            }
        }
    }

    /// Granted requests are exactly those `can_acquire` predicted.
    #[test]
    fn can_acquire_is_consistent(ops in proptest::collection::vec(arb_op(), 1..100)) {
        let lm = LockManager::new();
        for op in ops {
            if let Op::Acquire { txn, file, lo, len, exclusive } = op {
                let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                let scope = scope_of(lo, len);
                let predicted = lm.can_acquire(TxnId(txn as u64), file as u32, &scope, mode);
                let granted = lm
                    .acquire(TxnId(txn as u64), file as u32, scope, mode)
                    .is_ok();
                prop_assert_eq!(predicted, granted);
            }
        }
    }

    /// Release makes everything re-acquirable by anyone.
    #[test]
    fn release_unblocks(lo in any::<u8>(), len in 0u8..16, exclusive in any::<bool>()) {
        let lm = LockManager::new();
        let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
        lm.acquire(TxnId(1), 0, scope_of(lo, len), mode).unwrap();
        lm.release_all(TxnId(1));
        lm.acquire(TxnId(2), 0, scope_of(lo, len), LockMode::Exclusive).unwrap();
    }
}
