//! Abstract syntax for the SQL dialect.
//!
//! Name-based expressions ([`AstExpr`]) are bound to record-descriptor
//! field numbers ([`nsql_records::Expr`]) by the planner; the bound form is
//! what travels to the Disk Process.

use nsql_records::{ArithOp, CmpOp, FieldType, Value};

/// A column reference: optional qualifier + column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table name or alias (None = unqualified).
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

/// Unbound (name-based) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Literal.
    Lit(Value),
    /// Column reference.
    Column(ColumnRef),
    /// Arithmetic.
    Arith(Box<AstExpr>, ArithOp, Box<AstExpr>),
    /// Comparison.
    Cmp(Box<AstExpr>, CmpOp, Box<AstExpr>),
    /// AND.
    And(Box<AstExpr>, Box<AstExpr>),
    /// OR.
    Or(Box<AstExpr>, Box<AstExpr>),
    /// NOT.
    Not(Box<AstExpr>),
    /// `IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<AstExpr>,
        /// IS NOT NULL?
        negated: bool,
    },
    /// BETWEEN.
    Between {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Low bound.
        lo: Box<AstExpr>,
        /// High bound.
        hi: Box<AstExpr>,
    },
    /// IN (list).
    InList(Box<AstExpr>, Vec<AstExpr>),
    /// LIKE pattern.
    Like(Box<AstExpr>, String),
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT(*) / COUNT(expr).
    Count,
    /// SUM(expr).
    Sum,
    /// AVG(expr).
    Avg,
    /// MIN(expr).
    Min,
    /// MAX(expr).
    Max,
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// Plain expression with optional alias.
    Expr {
        /// The expression.
        expr: AstExpr,
        /// AS alias.
        alias: Option<String>,
    },
    /// Aggregate call with optional alias. `expr` is `None` for `COUNT(*)`.
    Aggregate {
        /// Function.
        func: AggFunc,
        /// Argument (None = `*`).
        expr: Option<AstExpr>,
        /// AS alias.
        alias: Option<String>,
    },
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression (a column in this dialect).
    pub expr: AstExpr,
    /// Descending?
    pub desc: bool,
}

/// SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM tables (joined by nested loops in order).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<AstExpr>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// Read records through ENSCRIBE-style record-at-a-time access
    /// (`BROWSE RECORD ACCESS` — extension used by experiments to compare
    /// interfaces).
    pub for_browse: bool,
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Data type.
    pub ty: FieldType,
    /// NOT NULL?
    pub not_null: bool,
}

/// CREATE TABLE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Columns.
    pub columns: Vec<ColumnDef>,
    /// Primary key column names.
    pub primary_key: Vec<String>,
    /// CHECK constraints.
    pub checks: Vec<AstExpr>,
    /// Range partitioning: `(split values, volumes)`. `volumes.len() ==
    /// splits.len() + 1`; empty = single partition on the default volume.
    pub partition: Option<PartitionClause>,
}

/// `PARTITION BY VALUES (v1, v2, ...) ON ('$V1', '$V2', ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionClause {
    /// Split points on the first primary-key column.
    pub splits: Vec<Value>,
    /// Volume (Disk Process) names, one more than splits.
    pub volumes: Vec<String>,
}

/// CREATE INDEX statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// Index name.
    pub name: String,
    /// Base table.
    pub table: String,
    /// Indexed column names.
    pub columns: Vec<String>,
    /// UNIQUE?
    pub unique: bool,
    /// Volume to place the index on (None = same as first partition).
    pub volume: Option<String>,
}

/// INSERT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Explicit column list (empty = declaration order).
    pub columns: Vec<String>,
    /// Row literals.
    pub rows: Vec<Vec<AstExpr>>,
}

/// UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// SET assignments.
    pub sets: Vec<(String, AstExpr)>,
    /// WHERE predicate.
    pub where_clause: Option<AstExpr>,
}

/// DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// WHERE predicate.
    pub where_clause: Option<AstExpr>,
}

/// Any statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT.
    Select(Select),
    /// INSERT.
    Insert(Insert),
    /// UPDATE.
    Update(Update),
    /// DELETE.
    Delete(Delete),
    /// CREATE TABLE.
    CreateTable(CreateTable),
    /// CREATE INDEX.
    CreateIndex(CreateIndex),
    /// DROP TABLE.
    DropTable(String),
    /// EXPLAIN: describe the plan of the wrapped statement.
    Explain(Box<Statement>),
    /// EXPLAIN ANALYZE: execute the wrapped statement and describe the plan
    /// annotated with per-operator runtime statistics.
    ExplainAnalyze(Box<Statement>),
    /// BEGIN WORK.
    Begin,
    /// COMMIT WORK.
    Commit,
    /// ROLLBACK WORK.
    Rollback,
}
