//! Name resolution: AST expressions → bound expressions over field numbers.
//!
//! A [`Scope`] is an ordered list of visible tables; the bound field number
//! of a column is its table's offset plus its position in the table's
//! descriptor. For single-table statements the offset is zero, so bound
//! field numbers coincide with record-descriptor field numbers — exactly
//! the form the Disk Process evaluates.

use crate::ast::{AstExpr, ColumnRef};
use nsql_records::{Expr, RecordDescriptor};

/// Binding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// Column not found in any visible table.
    UnknownColumn(String),
    /// Column name matches more than one table.
    Ambiguous(String),
    /// Qualifier does not name a visible table.
    UnknownTable(String),
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            BindError::Ambiguous(c) => write!(f, "ambiguous column {c}"),
            BindError::UnknownTable(t) => write!(f, "unknown table or alias {t}"),
        }
    }
}

impl std::error::Error for BindError {}

/// One visible table in a scope.
pub struct ScopeTable<'a> {
    /// Name and optional alias it answers to.
    pub names: Vec<String>,
    /// Its record layout.
    pub desc: &'a RecordDescriptor,
    /// Field-number offset of its first column in the combined row.
    pub offset: u16,
}

/// An ordered name scope.
pub struct Scope<'a> {
    /// Visible tables.
    pub tables: Vec<ScopeTable<'a>>,
}

impl<'a> Scope<'a> {
    /// Scope over a single table at offset 0.
    pub fn single(name: &str, desc: &'a RecordDescriptor) -> Scope<'a> {
        Scope {
            tables: vec![ScopeTable {
                names: vec![name.to_ascii_uppercase()],
                desc,
                offset: 0,
            }],
        }
    }

    /// Build a multi-table scope; offsets accumulate in order.
    pub fn over(tables: Vec<(Vec<String>, &'a RecordDescriptor)>) -> Scope<'a> {
        let mut out = Vec::new();
        let mut offset = 0u16;
        for (names, desc) in tables {
            out.push(ScopeTable {
                names: names.iter().map(|n| n.to_ascii_uppercase()).collect(),
                desc,
                offset,
            });
            offset += desc.num_fields() as u16;
        }
        Scope { tables: out }
    }

    /// Total width of the combined row.
    pub fn width(&self) -> u16 {
        self.tables.iter().map(|t| t.desc.num_fields() as u16).sum()
    }

    /// Resolve a column reference to a combined-row field number.
    pub fn resolve(&self, col: &ColumnRef) -> Result<u16, BindError> {
        let cname = col.column.to_ascii_uppercase();
        match &col.qualifier {
            Some(q) => {
                let q = q.to_ascii_uppercase();
                let t = self
                    .tables
                    .iter()
                    .find(|t| t.names.contains(&q))
                    .ok_or(BindError::UnknownTable(q))?;
                let f = t.desc.field_named(&cname).ok_or_else(|| {
                    BindError::UnknownColumn(format!(
                        "{}.{cname}",
                        col.qualifier.as_deref().unwrap_or("")
                    ))
                })?;
                Ok(t.offset + f)
            }
            None => {
                let mut found = None;
                for t in &self.tables {
                    if let Some(f) = t.desc.field_named(&cname) {
                        if found.is_some() {
                            return Err(BindError::Ambiguous(cname));
                        }
                        found = Some(t.offset + f);
                    }
                }
                found.ok_or(BindError::UnknownColumn(cname))
            }
        }
    }

    /// Which table (index into `tables`) owns combined field `f`?
    pub fn table_of_field(&self, f: u16) -> usize {
        for (i, t) in self.tables.iter().enumerate().rev() {
            if f >= t.offset {
                return i;
            }
        }
        0
    }
}

/// Bind a name-based expression into field-number form.
pub fn bind_expr(ast: &AstExpr, scope: &Scope) -> Result<Expr, BindError> {
    Ok(match ast {
        AstExpr::Lit(v) => Expr::Lit(v.clone()),
        AstExpr::Column(c) => Expr::Field(scope.resolve(c)?),
        AstExpr::Arith(a, op, b) => Expr::Arith(
            Box::new(bind_expr(a, scope)?),
            *op,
            Box::new(bind_expr(b, scope)?),
        ),
        AstExpr::Cmp(a, op, b) => Expr::Cmp(
            Box::new(bind_expr(a, scope)?),
            *op,
            Box::new(bind_expr(b, scope)?),
        ),
        AstExpr::And(a, b) => Expr::and(bind_expr(a, scope)?, bind_expr(b, scope)?),
        AstExpr::Or(a, b) => Expr::or(bind_expr(a, scope)?, bind_expr(b, scope)?),
        AstExpr::Not(a) => Expr::Not(Box::new(bind_expr(a, scope)?)),
        AstExpr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(bind_expr(expr, scope)?),
            negated: *negated,
        },
        AstExpr::Between { expr, lo, hi } => Expr::Between {
            expr: Box::new(bind_expr(expr, scope)?),
            lo: Box::new(bind_expr(lo, scope)?),
            hi: Box::new(bind_expr(hi, scope)?),
        },
        AstExpr::InList(e, list) => Expr::InList(
            Box::new(bind_expr(e, scope)?),
            list.iter()
                .map(|i| bind_expr(i, scope))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        AstExpr::Like(e, p) => Expr::Like(Box::new(bind_expr(e, scope)?), p.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;
    use nsql_records::{FieldDef, FieldType};

    fn emp() -> RecordDescriptor {
        RecordDescriptor::new(
            vec![
                FieldDef::new("EMPNO", FieldType::Int),
                FieldDef::new("NAME", FieldType::Char(8)),
                FieldDef::new("DEPTNO", FieldType::Int),
            ],
            vec![0],
        )
    }

    fn dept() -> RecordDescriptor {
        RecordDescriptor::new(
            vec![
                FieldDef::new("DEPTNO", FieldType::Int),
                FieldDef::new("DNAME", FieldType::Char(8)),
            ],
            vec![0],
        )
    }

    fn where_of(sql: &str) -> AstExpr {
        let Statement::Select(s) = parse(sql).unwrap() else {
            panic!()
        };
        s.where_clause.unwrap()
    }

    #[test]
    fn single_table_binding() {
        let d = emp();
        let scope = Scope::single("EMP", &d);
        let e = bind_expr(
            &where_of("SELECT * FROM EMP WHERE EMPNO <= 1000 AND NAME = 'X'"),
            &scope,
        )
        .unwrap();
        let mut fields = Vec::new();
        e.collect_fields(&mut fields);
        assert_eq!(fields, vec![0, 1]);
    }

    #[test]
    fn qualified_and_offset_binding() {
        let (e_desc, d_desc) = (emp(), dept());
        let scope = Scope::over(vec![
            (vec!["EMP".into(), "E".into()], &e_desc),
            (vec!["DEPT".into(), "D".into()], &d_desc),
        ]);
        let e = bind_expr(
            &where_of("SELECT * FROM EMP E, DEPT D WHERE E.DEPTNO = D.DEPTNO"),
            &scope,
        )
        .unwrap();
        let mut fields = Vec::new();
        e.collect_fields(&mut fields);
        assert_eq!(fields, vec![2, 3], "DEPT columns offset past EMP's");
        assert_eq!(scope.table_of_field(2), 0);
        assert_eq!(scope.table_of_field(3), 1);
        assert_eq!(scope.width(), 5);
    }

    #[test]
    fn ambiguity_detected() {
        let (e_desc, d_desc) = (emp(), dept());
        let scope = Scope::over(vec![
            (vec!["EMP".into()], &e_desc),
            (vec!["DEPT".into()], &d_desc),
        ]);
        let err = bind_expr(
            &where_of("SELECT * FROM EMP, DEPT WHERE DEPTNO = 1"),
            &scope,
        )
        .unwrap_err();
        assert_eq!(err, BindError::Ambiguous("DEPTNO".into()));
        // Unqualified but unique columns bind fine.
        bind_expr(
            &where_of("SELECT * FROM EMP, DEPT WHERE DNAME = 'X'"),
            &scope,
        )
        .unwrap();
    }

    #[test]
    fn unknown_names_rejected() {
        let d = emp();
        let scope = Scope::single("EMP", &d);
        assert!(matches!(
            bind_expr(&where_of("SELECT * FROM EMP WHERE NOPE = 1"), &scope),
            Err(BindError::UnknownColumn(_))
        ));
        assert!(matches!(
            bind_expr(&where_of("SELECT * FROM EMP WHERE X.EMPNO = 1"), &scope),
            Err(BindError::UnknownTable(_))
        ));
    }
}
