//! Recursive-descent parser for the SQL dialect.

use crate::ast::*;
use crate::lexer::{lex, LexError, Token};
use nsql_records::{ArithOp, CmpOp, FieldType, Value};

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse one statement (a trailing semicolon is allowed).
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&Token::Semi);
    if p.pos != p.tokens.len() {
        return Err(p.err(format!("trailing input at token {}", p.peek_desc())));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: String) -> ParseError {
        ParseError { message }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        self.peek().map_or("<end>".into(), |t| t.to_string())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat_if(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek_desc())))
        }
    }

    /// Consume a specific keyword.
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(format!(
                "expected {kw}, found {}",
                other.map_or("<end>".into(), |t| t.to_string())
            ))),
        }
    }

    /// Consume the keyword if present.
    fn kw_if(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!(
                "expected identifier, found {}",
                other.map_or("<end>".into(), |t| t.to_string())
            ))),
        }
    }

    /// A table name in FROM/INTO position: a bare identifier, or a dotted
    /// `schema.table` pair (used by the `sys.*` introspection schema).
    fn table_name(&mut self) -> Result<String, ParseError> {
        let first = self.ident()?;
        if self.eat_if(&Token::Dot) {
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            Some(Token::Ident(kw)) => match kw.as_str() {
                "EXPLAIN" => {
                    self.keyword("EXPLAIN")?;
                    if self.kw_if("ANALYZE") {
                        Ok(Statement::ExplainAnalyze(Box::new(self.statement()?)))
                    } else {
                        Ok(Statement::Explain(Box::new(self.statement()?)))
                    }
                }
                "SELECT" => self.select().map(Statement::Select),
                "INSERT" => self.insert().map(Statement::Insert),
                "UPDATE" => self.update().map(Statement::Update),
                "DELETE" => self.delete().map(Statement::Delete),
                "CREATE" => self.create(),
                "DROP" => {
                    self.keyword("DROP")?;
                    self.keyword("TABLE")?;
                    Ok(Statement::DropTable(self.ident()?))
                }
                "BEGIN" => {
                    self.keyword("BEGIN")?;
                    self.kw_if("WORK");
                    Ok(Statement::Begin)
                }
                "COMMIT" => {
                    self.keyword("COMMIT")?;
                    self.kw_if("WORK");
                    Ok(Statement::Commit)
                }
                "ROLLBACK" => {
                    self.keyword("ROLLBACK")?;
                    self.kw_if("WORK");
                    Ok(Statement::Rollback)
                }
                other => Err(self.err(format!("unknown statement {other}"))),
            },
            _ => Err(self.err("empty statement".into())),
        }
    }

    // ---------------- SELECT ----------------

    fn select(&mut self) -> Result<Select, ParseError> {
        self.keyword("SELECT")?;
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.table_name()?;
            let alias = match self.peek() {
                Some(Token::Ident(s)) if !is_clause_keyword(s) => Some(self.ident()?),
                _ => None,
            };
            from.push(TableRef { table, alias });
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.kw_if("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.kw_if("GROUP") {
            self.keyword("BY")?;
            loop {
                group_by.push(self.column_ref()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.kw_if("ORDER") {
            self.keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.kw_if("DESC") {
                    true
                } else {
                    self.kw_if("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        // Extension: `FOR BROWSE RECORD ACCESS` forces the old record-at-a-
        // time interface (experiment support).
        let mut for_browse = false;
        if self.kw_if("FOR") {
            self.keyword("BROWSE")?;
            self.kw_if("RECORD");
            self.kw_if("ACCESS");
            for_browse = true;
        }
        Ok(Select {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            for_browse,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_if(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate?
        if let Some(Token::Ident(name)) = self.peek() {
            let func = match name.as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "AVG" => Some(AggFunc::Avg),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = func {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2; // name (
                    let expr = if self.eat_if(&Token::Star) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(&Token::RParen)?;
                    let alias = self.alias_opt()?;
                    return Ok(SelectItem::Aggregate { func, expr, alias });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.alias_opt()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn alias_opt(&mut self) -> Result<Option<String>, ParseError> {
        if self.kw_if("AS") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.ident()?;
        if self.eat_if(&Token::Dot) {
            Ok(ColumnRef {
                qualifier: Some(first),
                column: self.ident()?,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                column: first,
            })
        }
    }

    // ---------------- expressions ----------------

    /// expr := or_term (OR or_term)*
    fn expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.and_term()?;
        while self.kw_if("OR") {
            let rhs = self.and_term()?;
            lhs = AstExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_term(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.not_term()?;
        while self.kw_if("AND") {
            let rhs = self.not_term()?;
            lhs = AstExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_term(&mut self) -> Result<AstExpr, ParseError> {
        if self.kw_if("NOT") {
            Ok(AstExpr::Not(Box::new(self.not_term()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<AstExpr, ParseError> {
        let lhs = self.additive()?;
        // IS [NOT] NULL
        if self.kw_if("IS") {
            let negated = self.kw_if("NOT");
            self.keyword("NULL")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] BETWEEN / IN / LIKE
        let negated = self.kw_if("NOT");
        if self.kw_if("BETWEEN") {
            let lo = self.additive()?;
            self.keyword("AND")?;
            let hi = self.additive()?;
            let b = AstExpr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
            };
            return Ok(if negated {
                AstExpr::Not(Box::new(b))
            } else {
                b
            });
        }
        if self.kw_if("IN") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.additive()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            let e = AstExpr::InList(Box::new(lhs), list);
            return Ok(if negated {
                AstExpr::Not(Box::new(e))
            } else {
                e
            });
        }
        if self.kw_if("LIKE") {
            let pat = match self.next() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(self.err(format!(
                        "LIKE requires a string literal, found {}",
                        other.map_or("<end>".into(), |t| t.to_string())
                    )))
                }
            };
            let e = AstExpr::Like(Box::new(lhs), pat);
            return Ok(if negated {
                AstExpr::Not(Box::new(e))
            } else {
                e
            });
        }
        if negated {
            return Err(self.err("NOT must be followed by BETWEEN, IN or LIKE".into()));
        }
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.additive()?;
        Ok(AstExpr::Cmp(Box::new(lhs), op, Box::new(rhs)))
    }

    fn additive(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = AstExpr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = AstExpr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<AstExpr, ParseError> {
        if self.eat_if(&Token::Minus) {
            // Constant-fold negative literals; general negation otherwise.
            let inner = self.unary()?;
            return Ok(match inner {
                AstExpr::Lit(Value::Int(n)) => AstExpr::Lit(Value::Int(-n)),
                AstExpr::Lit(Value::LargeInt(n)) => AstExpr::Lit(Value::LargeInt(-n)),
                AstExpr::Lit(Value::Double(x)) => AstExpr::Lit(Value::Double(-x)),
                other => AstExpr::Arith(
                    Box::new(AstExpr::Lit(Value::Int(0))),
                    ArithOp::Sub,
                    Box::new(other),
                ),
            });
        }
        if self.eat_if(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr, ParseError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(AstExpr::Lit(if n.abs() <= i32::MAX as i64 {
                Value::Int(n as i32)
            } else {
                Value::LargeInt(n)
            })),
            Some(Token::Float(x)) => Ok(AstExpr::Lit(Value::Double(x))),
            Some(Token::Str(s)) => Ok(AstExpr::Lit(Value::Str(s))),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if name == "NULL" {
                    return Ok(AstExpr::Lit(Value::Null));
                }
                if self.eat_if(&Token::Dot) {
                    let column = self.ident()?;
                    Ok(AstExpr::Column(ColumnRef {
                        qualifier: Some(name),
                        column,
                    }))
                } else {
                    Ok(AstExpr::Column(ColumnRef {
                        qualifier: None,
                        column: name,
                    }))
                }
            }
            other => Err(self.err(format!(
                "expected expression, found {}",
                other.map_or("<end>".into(), |t| t.to_string())
            ))),
        }
    }

    // ---------------- INSERT / UPDATE / DELETE ----------------

    fn insert(&mut self) -> Result<Insert, ParseError> {
        self.keyword("INSERT")?;
        self.keyword("INTO")?;
        let table = self.table_name()?;
        let mut columns = Vec::new();
        if self.eat_if(&Token::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Update, ParseError> {
        self.keyword("UPDATE")?;
        let table = self.table_name()?;
        self.keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let value = self.expr()?;
            sets.push((col, value));
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.kw_if("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Delete, ParseError> {
        self.keyword("DELETE")?;
        self.keyword("FROM")?;
        let table = self.table_name()?;
        let where_clause = if self.kw_if("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Delete {
            table,
            where_clause,
        })
    }

    // ---------------- DDL ----------------

    fn create(&mut self) -> Result<Statement, ParseError> {
        self.keyword("CREATE")?;
        if self.kw_if("TABLE") {
            return self.create_table().map(Statement::CreateTable);
        }
        let unique = self.kw_if("UNIQUE");
        self.keyword("INDEX")?;
        let name = self.ident()?;
        self.keyword("ON")?;
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        let volume = if self.kw_if("ON") {
            match self.next() {
                Some(Token::Str(v)) => Some(v),
                other => {
                    return Err(self.err(format!(
                        "expected volume name string, found {}",
                        other.map_or("<end>".into(), |t| t.to_string())
                    )))
                }
            }
        } else {
            None
        };
        Ok(Statement::CreateIndex(CreateIndex {
            name,
            table,
            columns,
            unique,
            volume,
        }))
    }

    fn create_table(&mut self) -> Result<CreateTable, ParseError> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        let mut checks = Vec::new();
        loop {
            if self.kw_if("PRIMARY") {
                self.keyword("KEY")?;
                self.expect(&Token::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else if self.kw_if("CHECK") {
                self.expect(&Token::LParen)?;
                checks.push(self.expr()?);
                self.expect(&Token::RParen)?;
            } else {
                let col_name = self.ident()?;
                let ty = self.data_type()?;
                let mut not_null = false;
                if self.kw_if("NOT") {
                    self.keyword("NULL")?;
                    not_null = true;
                }
                columns.push(ColumnDef {
                    name: col_name,
                    ty,
                    not_null,
                });
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        let partition = if self.kw_if("PARTITION") {
            self.keyword("BY")?;
            self.keyword("VALUES")?;
            self.expect(&Token::LParen)?;
            let mut splits = Vec::new();
            loop {
                match self.next() {
                    Some(Token::Int(n)) => splits.push(Value::Int(n as i32)),
                    Some(Token::Float(x)) => splits.push(Value::Double(x)),
                    Some(Token::Str(s)) => splits.push(Value::Str(s)),
                    other => {
                        return Err(self.err(format!(
                            "expected split literal, found {}",
                            other.map_or("<end>".into(), |t| t.to_string())
                        )))
                    }
                }
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            self.keyword("ON")?;
            self.expect(&Token::LParen)?;
            let mut volumes = Vec::new();
            loop {
                match self.next() {
                    Some(Token::Str(v)) => volumes.push(v),
                    other => {
                        return Err(self.err(format!(
                            "expected volume name string, found {}",
                            other.map_or("<end>".into(), |t| t.to_string())
                        )))
                    }
                }
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            if volumes.len() != splits.len() + 1 {
                return Err(self.err(format!(
                    "partitioning needs {} volumes for {} splits",
                    splits.len() + 1,
                    splits.len()
                )));
            }
            Some(PartitionClause { splits, volumes })
        } else if self.kw_if("ON") {
            match self.next() {
                Some(Token::Str(v)) => Some(PartitionClause {
                    splits: Vec::new(),
                    volumes: vec![v],
                }),
                other => {
                    return Err(self.err(format!(
                        "expected volume name string, found {}",
                        other.map_or("<end>".into(), |t| t.to_string())
                    )))
                }
            }
        } else {
            None
        };
        if primary_key.is_empty() {
            return Err(self.err(format!("table {name} needs a PRIMARY KEY")));
        }
        Ok(CreateTable {
            name,
            columns,
            primary_key,
            checks,
            partition,
        })
    }

    fn data_type(&mut self) -> Result<FieldType, ParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "SMALLINT" => Ok(FieldType::SmallInt),
            "INT" | "INTEGER" => Ok(FieldType::Int),
            "LARGEINT" | "BIGINT" => Ok(FieldType::LargeInt),
            "DOUBLE" => {
                self.kw_if("PRECISION");
                Ok(FieldType::Double)
            }
            "FLOAT" | "REAL" => Ok(FieldType::Double),
            "CHAR" | "CHARACTER" => {
                self.expect(&Token::LParen)?;
                let n = self.int_literal()?;
                self.expect(&Token::RParen)?;
                Ok(FieldType::Char(n as u16))
            }
            "VARCHAR" => {
                self.expect(&Token::LParen)?;
                let n = self.int_literal()?;
                self.expect(&Token::RParen)?;
                Ok(FieldType::Varchar(n as u16))
            }
            "NUMERIC" | "DECIMAL" => {
                // NUMERIC(p[,0]) maps onto LARGEINT in this reproduction.
                if self.eat_if(&Token::LParen) {
                    self.int_literal()?;
                    if self.eat_if(&Token::Comma) {
                        self.int_literal()?;
                    }
                    self.expect(&Token::RParen)?;
                }
                Ok(FieldType::LargeInt)
            }
            other => Err(self.err(format!("unknown data type {other}"))),
        }
    }

    fn int_literal(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(n),
            other => Err(self.err(format!(
                "expected integer, found {}",
                other.map_or("<end>".into(), |t| t.to_string())
            ))),
        }
    }
}

fn is_clause_keyword(s: &str) -> bool {
    matches!(
        s,
        "WHERE" | "GROUP" | "ORDER" | "FOR" | "AND" | "OR" | "ON" | "SET" | "FROM"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1_parses() {
        let stmt = parse("SELECT NAME, HIRE_DATE FROM EMP WHERE EMPNO <= 1000 AND SALARY > 32000;")
            .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn paper_example_3_parses() {
        let stmt = parse("UPDATE ACCOUNT SET BALANCE = BALANCE * 1.07 WHERE BALANCE > 0").unwrap();
        let Statement::Update(u) = stmt else { panic!() };
        assert_eq!(u.sets.len(), 1);
        assert_eq!(u.sets[0].0, "BALANCE");
        assert!(matches!(u.sets[0].1, AstExpr::Arith(..)));
    }

    #[test]
    fn create_table_with_partitioning() {
        let stmt = parse(
            "CREATE TABLE ACCOUNT (ACCTNO INT NOT NULL, BALANCE DOUBLE, \
             PRIMARY KEY (ACCTNO), CHECK (BALANCE >= 0)) \
             PARTITION BY VALUES (1000, 2000) ON ('$DATA1', '$DATA2', '$DATA3')",
        )
        .unwrap();
        let Statement::CreateTable(t) = stmt else {
            panic!()
        };
        assert_eq!(t.columns.len(), 2);
        assert!(t.columns[0].not_null);
        assert_eq!(t.primary_key, vec!["ACCTNO"]);
        assert_eq!(t.checks.len(), 1);
        let p = t.partition.unwrap();
        assert_eq!(p.splits.len(), 2);
        assert_eq!(p.volumes.len(), 3);
    }

    #[test]
    fn create_table_on_single_volume() {
        let stmt = parse("CREATE TABLE T (A INT NOT NULL, PRIMARY KEY (A)) ON '$DATA2'").unwrap();
        let Statement::CreateTable(t) = stmt else {
            panic!()
        };
        let p = t.partition.unwrap();
        assert!(p.splits.is_empty());
        assert_eq!(p.volumes, vec!["$DATA2"]);
    }

    #[test]
    fn create_index_variants() {
        let stmt = parse("CREATE UNIQUE INDEX I1 ON EMP (NAME) ON '$IDX'").unwrap();
        let Statement::CreateIndex(i) = stmt else {
            panic!()
        };
        assert!(i.unique);
        assert_eq!(i.volume.as_deref(), Some("$IDX"));
        let stmt = parse("CREATE INDEX I2 ON EMP (DEPT, SALARY)").unwrap();
        let Statement::CreateIndex(i) = stmt else {
            panic!()
        };
        assert!(!i.unique);
        assert_eq!(i.columns, vec!["DEPT", "SALARY"]);
    }

    #[test]
    fn insert_multi_row() {
        let stmt = parse("INSERT INTO T (A, B) VALUES (1, 'x'), (2, 'y''z'), (3, NULL)").unwrap();
        let Statement::Insert(i) = stmt else { panic!() };
        assert_eq!(i.columns, vec!["A", "B"]);
        assert_eq!(i.rows.len(), 3);
        assert_eq!(i.rows[1][1], AstExpr::Lit(Value::Str("y'z".into())));
        assert_eq!(i.rows[2][1], AstExpr::Lit(Value::Null));
    }

    #[test]
    fn operator_precedence() {
        // a + b * 2 > 10 AND c = 1 OR d = 2
        let stmt = parse("SELECT * FROM T WHERE A + B * 2 > 10 AND C = 1 OR D = 2").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let AstExpr::Or(lhs, _) = s.where_clause.unwrap() else {
            panic!("OR must be outermost");
        };
        let AstExpr::And(cmp, _) = *lhs else {
            panic!("AND binds tighter than OR");
        };
        let AstExpr::Cmp(add, CmpOp::Gt, _) = *cmp else {
            panic!("comparison below AND");
        };
        let AstExpr::Arith(_, ArithOp::Add, mul) = *add else {
            panic!("addition below comparison");
        };
        assert!(matches!(*mul, AstExpr::Arith(_, ArithOp::Mul, _)));
    }

    #[test]
    fn between_in_like_not() {
        let stmt = parse(
            "SELECT * FROM T WHERE A BETWEEN 1 AND 5 AND B IN (1,2,3) \
             AND NAME LIKE 'AL%' AND C NOT IN (9) AND D IS NOT NULL",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let mut found_between = false;
        let mut found_like = false;
        fn walk(e: &AstExpr, fb: &mut bool, fl: &mut bool) {
            match e {
                AstExpr::Between { .. } => *fb = true,
                AstExpr::Like(..) => *fl = true,
                AstExpr::And(a, b) | AstExpr::Or(a, b) => {
                    walk(a, fb, fl);
                    walk(b, fb, fl);
                }
                AstExpr::Not(a) => walk(a, fb, fl),
                _ => {}
            }
        }
        walk(
            &s.where_clause.unwrap(),
            &mut found_between,
            &mut found_like,
        );
        assert!(found_between && found_like);
    }

    #[test]
    fn aggregates_and_group_by() {
        let stmt = parse(
            "SELECT DEPT, COUNT(*), AVG(SALARY) AS AVGSAL FROM EMP GROUP BY DEPT ORDER BY DEPT DESC",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.items.len(), 3);
        assert!(matches!(
            s.items[1],
            SelectItem::Aggregate {
                func: AggFunc::Count,
                expr: None,
                ..
            }
        ));
        assert_eq!(s.group_by.len(), 1);
        assert!(s.order_by[0].desc);
    }

    #[test]
    fn join_with_aliases_and_qualified_columns() {
        let stmt =
            parse("SELECT E.NAME, D.DNAME FROM EMP E, DEPT D WHERE E.DEPTNO = D.DEPTNO").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].alias.as_deref(), Some("E"));
    }

    #[test]
    fn txn_control() {
        assert_eq!(parse("BEGIN WORK").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT WORK;").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn negative_literals() {
        let stmt = parse("SELECT * FROM T WHERE A > -5 AND B = -1.5").unwrap();
        let Statement::Select(_) = stmt else { panic!() };
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELEC * FROM T").is_err());
        assert!(parse("SELECT * FROM T WHERE").is_err());
        assert!(
            parse("CREATE TABLE T (A INT)").is_err(),
            "missing primary key"
        );
        assert!(parse("SELECT * FROM T extra garbage ,").is_err());
    }

    #[test]
    fn for_browse_extension() {
        let stmt = parse("SELECT * FROM EMP FOR BROWSE RECORD ACCESS").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(s.for_browse);
    }
}
