//! The SQL catalog: tables, partitions, indices, constraints, statistics.
//!
//! DDL executes against the Disk Processes (a `CreateFile` per partition /
//! index), and the catalog keeps the [`OpenFile`] metadata the File System
//! routes with. Catalog contents live in memory, shared by all sessions of
//! a cluster; the on-volume file labels are the durable complement a real
//! system would reload from.

use crate::ast::{CreateIndex, CreateTable};
use crate::bind::{bind_expr, BindError, Scope};
use nsql_dp::{DpReply, DpRequest, FileKind};
use nsql_fs::{FileSystem, FsError, IndexInfo, OpenFile, Partition};
use nsql_lock::TxnId;
use nsql_records::key::encode_key_value;
use nsql_records::{Expr, FieldDef, KeyRange, OwnedBound, RecordDescriptor};
use nsql_sim::sync::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Catalog errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// Duplicate table/index name.
    AlreadyExists(String),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// Underlying File System / Disk Process failure.
    Fs(String),
    /// Bad constraint or partition clause.
    Invalid(String),
}

impl From<FsError> for CatalogError {
    fn from(e: FsError) -> Self {
        CatalogError::Fs(e.to_string())
    }
}

impl From<BindError> for CatalogError {
    fn from(e: BindError) -> Self {
        CatalogError::Invalid(e.to_string())
    }
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::AlreadyExists(n) => write!(f, "{n} already exists"),
            CatalogError::NoSuchTable(n) => write!(f, "no such table {n}"),
            CatalogError::NoSuchColumn(n) => write!(f, "no such column {n}"),
            CatalogError::Fs(e) => write!(f, "{e}"),
            CatalogError::Invalid(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// Everything known about one table.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Table name.
    pub name: String,
    /// File System view (descriptor, partitions, indices).
    pub open: OpenFile,
    /// Bound CHECK constraints (field numbers over the table row).
    pub checks: Vec<Expr>,
    /// Approximate row count (maintained by DML, used by the planner).
    pub row_count: u64,
}

/// The shared catalog of one cluster.
pub struct Catalog {
    tables: RwLock<HashMap<String, TableInfo>>,
    /// Volume used when DDL names none.
    pub default_volume: String,
}

impl Catalog {
    /// An empty catalog defaulting to `default_volume`.
    pub fn new(default_volume: impl Into<String>) -> Arc<Catalog> {
        Arc::new(Catalog {
            tables: RwLock::new(HashMap::new()),
            default_volume: default_volume.into(),
        })
    }

    /// Look up a table (cloned snapshot).
    pub fn table(&self, name: &str) -> Result<TableInfo, CatalogError> {
        self.tables
            .read()
            .get(&name.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| CatalogError::NoSuchTable(name.to_string()))
    }

    /// All table names (diagnostics).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Adjust the row-count statistic after DML.
    pub fn bump_rows(&self, name: &str, delta: i64) {
        if let Some(t) = self.tables.write().get_mut(&name.to_ascii_uppercase()) {
            t.row_count = t.row_count.saturating_add_signed(delta);
        }
    }

    /// Execute CREATE TABLE: builds the descriptor, creates one
    /// key-sequenced file per partition, binds CHECK constraints.
    pub fn create_table(&self, fs: &FileSystem, stmt: &CreateTable) -> Result<(), CatalogError> {
        let name = stmt.name.to_ascii_uppercase();
        if self.tables.read().contains_key(&name) {
            return Err(CatalogError::AlreadyExists(name));
        }
        // Descriptor: primary-key columns become NOT NULL implicitly.
        let mut fields = Vec::new();
        for c in &stmt.columns {
            let key_col = stmt
                .primary_key
                .iter()
                .any(|k| k.eq_ignore_ascii_case(&c.name));
            fields.push(FieldDef {
                name: c.name.to_ascii_uppercase(),
                ty: c.ty,
                nullable: !(c.not_null || key_col),
            });
        }
        let mut key_fields = Vec::new();
        for k in &stmt.primary_key {
            let i = fields
                .iter()
                .position(|f| f.name.eq_ignore_ascii_case(k))
                .ok_or_else(|| CatalogError::NoSuchColumn(k.clone()))?;
            key_fields.push(i as u16);
        }
        let desc = RecordDescriptor::new(fields, key_fields);

        // Partition layout.
        let (splits, volumes) = match &stmt.partition {
            None => (Vec::new(), vec![self.default_volume.clone()]),
            Some(p) => (p.splits.clone(), p.volumes.clone()),
        };
        let first_key_ty = desc.fields[desc.key_fields[0] as usize].ty;
        let mut split_keys = Vec::new();
        for s in &splits {
            let v = first_key_ty
                .coerce(s.clone())
                .ok_or_else(|| CatalogError::Invalid("split value type mismatch".into()))?;
            let mut k = Vec::new();
            encode_key_value(first_key_ty, &v, &mut k);
            split_keys.push(k);
        }
        let mut partitions = Vec::new();
        for (i, vol) in volumes.iter().enumerate() {
            let begin = if i == 0 {
                OwnedBound::Unbounded
            } else {
                OwnedBound::Included(split_keys[i - 1].clone())
            };
            let end = if i == volumes.len() - 1 {
                OwnedBound::Unbounded
            } else {
                OwnedBound::Excluded(split_keys[i].clone())
            };
            let file = create_file(fs, vol, FileKind::KeySequenced(desc.clone()))?;
            partitions.push(Partition {
                process: vol.clone(),
                file,
                range: KeyRange { begin, end },
            });
        }

        // Bind CHECK constraints against the table's own scope.
        let scope = Scope::single(&name, &desc);
        let checks = stmt
            .checks
            .iter()
            .map(|c| bind_expr(c, &scope))
            .collect::<Result<Vec<_>, _>>()?;

        let open = OpenFile {
            name: name.clone(),
            desc,
            partitions,
            indexes: Vec::new(),
        };
        self.tables.write().insert(
            name.clone(),
            TableInfo {
                name,
                open,
                checks,
                row_count: 0,
            },
        );
        Ok(())
    }

    /// Execute CREATE INDEX: creates the index file and back-fills it from
    /// the base table inside the caller's transaction.
    pub fn create_index(
        &self,
        fs: &FileSystem,
        txn: TxnId,
        stmt: &CreateIndex,
    ) -> Result<(), CatalogError> {
        let tname = stmt.table.to_ascii_uppercase();
        let info = self.table(&tname)?;
        if info
            .open
            .indexes
            .iter()
            .any(|i| i.name.eq_ignore_ascii_case(&stmt.name))
        {
            return Err(CatalogError::AlreadyExists(stmt.name.clone()));
        }
        let mut base_fields = Vec::new();
        for c in &stmt.columns {
            let i = info
                .open
                .desc
                .field_named(c)
                .ok_or_else(|| CatalogError::NoSuchColumn(c.clone()))?;
            base_fields.push(i);
        }
        let volume = stmt
            .volume
            .clone()
            .unwrap_or_else(|| info.open.partitions[0].process.clone());
        let idx = IndexInfo::build(
            stmt.name.to_ascii_uppercase(),
            volume.clone(),
            0,
            &info.open.desc,
            base_fields,
            stmt.unique,
        );
        let file = create_file(fs, &volume, FileKind::KeySequenced(idx.desc.clone()))?;
        let idx = IndexInfo { file, ..idx };

        // Back-fill from existing rows using the blocked-insert interface.
        let existing = fs.scan(
            Some(txn),
            &info.open,
            &KeyRange::all(),
            None,
            None,
            nsql_dp::SubsetMode::Vsbb,
            nsql_dp::ReadLock::Shared,
        )?;
        if !existing.rows.is_empty() {
            let index_only = OpenFile::single(
                format!("{}-fill", idx.name),
                idx.desc.clone(),
                idx.process.clone(),
                idx.file,
            );
            let mut filler = nsql_fs::BlockedInserter::new(fs, &index_only, txn);
            for row in &existing.rows {
                let irow = idx.index_row(&info.open.desc, &row.0);
                filler.push(&irow).map_err(|e| {
                    if matches!(e, FsError::Dp(nsql_dp::DpError::DuplicateKey)) {
                        CatalogError::Invalid(format!(
                            "cannot create unique index {}: duplicate values exist",
                            idx.name
                        ))
                    } else {
                        e.into()
                    }
                })?;
            }
            filler.flush().map_err(|e| {
                if matches!(e, FsError::Dp(nsql_dp::DpError::DuplicateKey)) {
                    CatalogError::Invalid(format!(
                        "cannot create unique index {}: duplicate values exist",
                        idx.name
                    ))
                } else {
                    e.into()
                }
            })?;
        }

        self.tables
            .write()
            .get_mut(&tname)
            .expect("checked above")
            .open
            .indexes
            .push(idx);
        Ok(())
    }

    /// Drop a table from the catalog. (The on-volume files are abandoned —
    /// space reclamation is out of scope for this reproduction.)
    pub fn drop_table(&self, name: &str) -> Result<(), CatalogError> {
        self.tables
            .write()
            .remove(&name.to_ascii_uppercase())
            .map(|_| ())
            .ok_or_else(|| CatalogError::NoSuchTable(name.to_string()))
    }
}

fn create_file(fs: &FileSystem, volume: &str, kind: FileKind) -> Result<u32, CatalogError> {
    match fs.send(volume, DpRequest::CreateFile { kind }) {
        Ok(DpReply::FileCreated(id)) => Ok(id),
        Ok(other) => Err(CatalogError::Fs(format!("unexpected reply {other:?}"))),
        Err(e) => Err(e.into()),
    }
}
