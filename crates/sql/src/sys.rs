//! The read-only `sys.*` introspection schema.
//!
//! Tandem argued the paper's numbers from MEASURE; a production SQL system
//! turns that telemetry back on itself and serves it *through SQL*. This
//! module defines the virtual tables — their names, descriptors, and the
//! [`SysSnapshot`] row container the cluster materialises once per
//! statement — while `nsql-core` (which can see the simulator, lock
//! managers, and transaction manager) fills the rows in.
//!
//! Coherence contract: the snapshot is captured after planning and before
//! execution, from mutex/atomic reads only. Capturing advances no clock and
//! bumps no counter, so two back-to-back `SELECT * FROM sys.counters`
//! statements differ exactly by the first statement's own cost.

use crate::catalog::TableInfo;
use nsql_fs::OpenFile;
use nsql_records::{FieldDef, FieldType, RecordDescriptor, Row};

/// The virtual tables of the `sys` schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysTable {
    /// `sys.counters`: every non-zero MEASURE counter of every entity.
    Counters,
    /// `sys.waits`: the attributed-clock wait ledger, one row per category.
    Waits,
    /// `sys.locks`: held locks across all volumes, in grant order.
    Locks,
    /// `sys.lock_waiters`: FIFO lock queues across all volumes.
    LockWaiters,
    /// `sys.histograms`: log2 buckets plus interpolated percentile summary
    /// rows for every always-on histogram.
    Histograms,
    /// `sys.trace`: ring contents (with span ids) behind a companion row
    /// carrying the ring capacity and drop count.
    Trace,
    /// `sys.sessions`: every session the cluster has opened.
    Sessions,
    /// `sys.txns`: every transaction the manager still remembers.
    Txns,
}

impl SysTable {
    /// Every virtual table, in rendering order.
    pub const ALL: [SysTable; 8] = [
        SysTable::Counters,
        SysTable::Waits,
        SysTable::Locks,
        SysTable::LockWaiters,
        SysTable::Histograms,
        SysTable::Trace,
        SysTable::Sessions,
        SysTable::Txns,
    ];

    /// Canonical (upper-cased, dotted) table name.
    pub fn name(self) -> &'static str {
        match self {
            SysTable::Counters => "SYS.COUNTERS",
            SysTable::Waits => "SYS.WAITS",
            SysTable::Locks => "SYS.LOCKS",
            SysTable::LockWaiters => "SYS.LOCK_WAITERS",
            SysTable::Histograms => "SYS.HISTOGRAMS",
            SysTable::Trace => "SYS.TRACE",
            SysTable::Sessions => "SYS.SESSIONS",
            SysTable::Txns => "SYS.TXNS",
        }
    }

    /// Resolve a (case-insensitive) dotted name.
    pub fn from_name(name: &str) -> Option<SysTable> {
        let upper = name.to_ascii_uppercase();
        SysTable::ALL.iter().copied().find(|t| t.name() == upper)
    }

    /// Record layout of the virtual table.
    pub fn descriptor(self) -> RecordDescriptor {
        let s = |name: &str, n: u16| FieldDef::new(name, FieldType::Varchar(n));
        let i = |name: &str| FieldDef::new(name, FieldType::LargeInt);
        let ni = |name: &str| FieldDef::nullable(name, FieldType::LargeInt);
        let fields = match self {
            SysTable::Counters => vec![
                s("ENTITY_KIND", 16),
                s("ENTITY", 64),
                s("COUNTER", 32),
                i("VALUE"),
            ],
            SysTable::Waits => vec![s("CATEGORY", 32), i("US")],
            SysTable::Locks => vec![
                s("VOLUME", 32),
                i("TXN"),
                i("FILE"),
                s("MODE", 16),
                s("SCOPE", 64),
            ],
            SysTable::LockWaiters => vec![
                s("VOLUME", 32),
                i("POS"),
                i("TXN"),
                i("FILE"),
                s("MODE", 16),
                s("SCOPE", 64),
                i("SINCE_US"),
            ],
            SysTable::Histograms => vec![
                s("HIST", 32),
                s("KIND", 16),
                i("LO"),
                i("HI"),
                i("COUNT"),
                ni("P50"),
                ni("P95"),
                ni("P99"),
                ni("P999"),
            ],
            SysTable::Trace => vec![i("SEQ"), i("AT_US"), s("KIND", 32), s("DETAIL", 128)],
            SysTable::Sessions => vec![
                i("SESSION"),
                s("CPU", 16),
                i("STATEMENTS"),
                ni("TXN"),
                i("OPEN"),
            ],
            SysTable::Txns => vec![
                i("TXN"),
                s("STATE", 16),
                i("DOOMED"),
                s("PARTICIPANTS", 128),
            ],
        };
        RecordDescriptor::new(fields, vec![0])
    }
}

/// Is `name` (any case) inside the reserved `sys` schema? True for unknown
/// `sys.` names too, so they fail with a clear error instead of falling
/// through to the catalog.
pub fn is_sys_name(name: &str) -> bool {
    let upper = name.to_ascii_uppercase();
    upper.starts_with("SYS.")
}

/// Synthesise the catalog entry for a `sys.*` name (`None` when the name is
/// outside the schema or not a known virtual table).
pub fn table_info(name: &str) -> Option<TableInfo> {
    let t = SysTable::from_name(name)?;
    Some(TableInfo {
        name: t.name().to_string(),
        // Virtual: the partition routes nowhere (the executor serves rows
        // from the statement's snapshot), but the planner's scope/projection
        // machinery still wants an OpenFile-shaped descriptor.
        open: OpenFile::single(t.name(), t.descriptor(), "$SYS", 0),
        checks: Vec::new(),
        row_count: 0,
    })
}

/// One statement's coherent view of the cluster's telemetry: full rows per
/// virtual table, captured between planning and execution.
#[derive(Debug, Clone, Default)]
pub struct SysSnapshot {
    /// Rows of `sys.counters`.
    pub counters: Vec<Row>,
    /// Rows of `sys.waits`.
    pub waits: Vec<Row>,
    /// Rows of `sys.locks`.
    pub locks: Vec<Row>,
    /// Rows of `sys.lock_waiters`.
    pub lock_waiters: Vec<Row>,
    /// Rows of `sys.histograms`.
    pub histograms: Vec<Row>,
    /// Rows of `sys.trace`.
    pub trace: Vec<Row>,
    /// Rows of `sys.sessions`.
    pub sessions: Vec<Row>,
    /// Rows of `sys.txns`.
    pub txns: Vec<Row>,
}

impl SysSnapshot {
    /// The captured full rows of one virtual table.
    pub fn rows(&self, t: SysTable) -> &[Row] {
        match t {
            SysTable::Counters => &self.counters,
            SysTable::Waits => &self.waits,
            SysTable::Locks => &self.locks,
            SysTable::LockWaiters => &self.lock_waiters,
            SysTable::Histograms => &self.histograms,
            SysTable::Trace => &self.trace,
            SysTable::Sessions => &self.sessions,
            SysTable::Txns => &self.txns,
        }
    }
}
