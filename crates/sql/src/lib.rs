#![warn(missing_docs)]
//! NonStop SQL's front end: parser, catalog, compiler (planner), Executor.
//!
//! The division of labour reproduces the paper's: this crate produces
//! *plans of single-variable queries* and executes them through the File
//! System (`nsql-fs`), which decomposes them into messages to the Disk
//! Processes (`nsql-dp`) — where selection, projection, update expressions
//! and integrity constraints are evaluated, at the data source.

pub mod ast;
pub mod bind;
pub mod catalog;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod sort;
pub mod sys;

pub use catalog::{Catalog, CatalogError, TableInfo};
pub use exec::{ExecError, Executor, OpStats, QueryResult};
pub use parser::{parse, ParseError};
pub use plan::{plan, Plan, PlanError, SelectPlan};
pub use sys::{SysSnapshot, SysTable};

#[cfg(test)]
mod tests;
