//! The SQL Executor.
//!
//! "The application program's SQL statements invoke the SQL Executor, a set
//! of library routines which run in the application's process environment.
//! The Executor invokes the File System on behalf of the application. Its
//! field-oriented and possibly set-oriented File System calls implement the
//! execution plan of the pre-compiled query."
//!
//! Reads choose the transfer interface per the paper's examples: a scan
//! with selection or projection uses **VSBB**; a bare `SELECT *` scan uses
//! **RSBB**; `FOR BROWSE RECORD ACCESS` (an experiment extension) forces
//! the old record-at-a-time interface.

use crate::ast::AggFunc;
use crate::catalog::Catalog;
use crate::plan::{
    describe_access, AccessPath, AggOutput, AggPlan, DeletePlan, InsertPlan, SelectPlan,
    TableAccess, UpdatePlan,
};
use crate::sort::{fastsort, sort_cmp};
use crate::sys::{SysSnapshot, SysTable};
use nsql_dp::{ReadLock, SubsetMode};
use nsql_fs::{FileSystem, FsError};
use nsql_lock::TxnId;
use nsql_records::{EvalError, Expr, KeyRange, Row, RowAccessor, Value};
use nsql_sim::{CpuLayer, Ctr, EntityKind, MetricsSnapshot, Micros};
use std::collections::HashMap;

/// Measured cost of one plan operator (the EXPLAIN ANALYZE row).
///
/// Operators are timed with contiguous metric snapshots: each operator's
/// delta starts where the previous one ended, so the per-operator FS-DP
/// message counts sum exactly to the statement's global delta.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Operator description (same text as the EXPLAIN line).
    pub label: String,
    /// Rows the operator produced.
    pub rows: u64,
    /// FS-DP messages (including continuation re-drives) sent while the
    /// operator ran.
    pub msgs_fs_dp: u64,
    /// Disk read operations issued while the operator ran.
    pub disk_reads: u64,
    /// Disk write operations issued while the operator ran.
    pub disk_writes: u64,
    /// Virtual time the operator took.
    pub elapsed_us: Micros,
}

/// Snapshot marker opening one operator's measurement window.
struct OpMark {
    before: MetricsSnapshot,
    t0: Micros,
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// File System / Disk Process failure.
    Fs(FsError),
    /// Expression evaluation failure.
    Eval(String),
    /// CHECK constraint rejected a row.
    ConstraintViolation,
    /// The statement's transaction was doomed mid-flight (deadlock victim
    /// or lock-wait timeout). Retryable: the client aborts the transaction
    /// and may transparently run it again.
    Doomed(String),
}

impl From<FsError> for ExecError {
    fn from(e: FsError) -> Self {
        match e {
            FsError::Dp(nsql_dp::DpError::ConstraintViolation) => ExecError::ConstraintViolation,
            FsError::Doomed { reason } => ExecError::Doomed(reason),
            other => ExecError::Fs(other),
        }
    }
}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> Self {
        ExecError::Eval(e.to_string())
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Fs(e) => write!(f, "{e}"),
            ExecError::Eval(e) => write!(f, "evaluation failed: {e}"),
            ExecError::ConstraintViolation => write!(f, "integrity constraint violated"),
            ExecError::Doomed(reason) => write!(f, "transaction doomed: {reason}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A query result set.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Render as an ASCII table (examples and the REPL-style demos).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.0.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// The executor: runs plans through a File System instance.
pub struct Executor<'a> {
    /// The requester's File System.
    pub fs: &'a FileSystem,
    /// The shared catalog (row-count statistics updates).
    pub catalog: &'a Catalog,
    /// FastSort parallelism for ORDER BY (the paper's "user option which
    /// directs the SQL compiler to cause the invocation ... of the parallel
    /// sorter"). 1 = serial.
    pub sort_parallelism: u32,
    /// The statement's introspection snapshot, present when the plan reads
    /// `sys.*` virtual tables (captured by the session at statement start).
    pub sys: Option<&'a SysSnapshot>,
}

impl Executor<'_> {
    fn sim(&self) -> &nsql_sim::Sim {
        self.fs.sim()
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn mark(&self) -> OpMark {
        OpMark {
            before: self.sim().metrics.snapshot(),
            t0: self.sim().clock.now(),
        }
    }

    fn close_op(&self, label: String, rows: u64, mark: OpMark, stats: &mut Vec<OpStats>) {
        let d = self.sim().metrics.snapshot() - mark.before;
        stats.push(OpStats {
            label,
            rows,
            msgs_fs_dp: d.msgs_fs_dp,
            disk_reads: d.disk_reads,
            disk_writes: d.disk_writes,
            elapsed_us: self.sim().clock.now().saturating_sub(mark.t0),
        });
    }

    /// Execute a SELECT plan.
    pub fn select(&self, plan: &SelectPlan, txn: Option<TxnId>) -> Result<QueryResult, ExecError> {
        self.select_impl(plan, txn, None)
    }

    /// Execute a SELECT plan, measuring each operator (EXPLAIN ANALYZE).
    pub fn select_analyzed(
        &self,
        plan: &SelectPlan,
        txn: Option<TxnId>,
    ) -> Result<(QueryResult, Vec<OpStats>), ExecError> {
        let mut stats = Vec::new();
        let result = self.select_impl(plan, txn, Some(&mut stats))?;
        Ok((result, stats))
    }

    fn select_impl(
        &self,
        plan: &SelectPlan,
        txn: Option<TxnId>,
        mut stats: Option<&mut Vec<OpStats>>,
    ) -> Result<QueryResult, ExecError> {
        // Fetch each table's contribution.
        let mut per_table: Vec<Vec<Row>> = Vec::with_capacity(plan.tables.len());
        for (i, t) in plan.tables.iter().enumerate() {
            let mark = stats.is_some().then(|| self.mark());
            let rows = self.fetch_table(t, txn)?;
            if let Some(s) = stats.as_deref_mut() {
                let prefix = if i == 0 { "" } else { "NESTED-LOOP JOIN with " };
                let label = format!("{prefix}{}", describe_access(t));
                self.close_op(label, rows.len() as u64, mark.unwrap(), s);
            }
            per_table.push(rows);
        }
        let mark = stats.is_some().then(|| self.mark());

        // Nested-loop join (cross product progressively filtered).
        let mut joined: Vec<Row> = per_table.first().cloned().unwrap_or_default();
        for batch in per_table.iter().skip(1) {
            let mut next = Vec::new();
            for outer in &joined {
                for inner in batch {
                    self.sim().cpu_work(CpuLayer::Executor, 1);
                    let mut row = outer.0.clone();
                    row.extend_from_slice(&inner.0);
                    next.push(Row(row));
                }
            }
            joined = next;
        }
        if let Some(f) = &plan.join_filter {
            let mut kept = Vec::with_capacity(joined.len());
            for row in joined {
                self.sim()
                    .cpu_work(CpuLayer::Executor, 1 + f.eval_cost() / 2);
                if f.passes(&row)? {
                    kept.push(row);
                }
            }
            joined = kept;
        }
        let mark = if plan.tables.len() > 1 || plan.join_filter.is_some() {
            if let Some(s) = stats.as_deref_mut() {
                self.close_op("JOIN".into(), joined.len() as u64, mark.unwrap(), s);
                Some(self.mark())
            } else {
                None
            }
        } else {
            mark
        };

        // Aggregate or plain projection.
        let mut result = if let Some(agg) = &plan.aggregate {
            self.aggregate(agg, &joined, &plan.column_names)?
        } else {
            let sorted = fastsort(self.sim(), joined, &plan.order_by, self.sort_parallelism)?;
            let mut rows = Vec::with_capacity(sorted.len());
            for row in &sorted {
                self.sim().cpu_work(CpuLayer::Executor, 1);
                let mut out = Vec::with_capacity(plan.output.len());
                for (_, e) in &plan.output {
                    out.push(e.eval(row)?);
                }
                rows.push(Row(out));
            }
            QueryResult {
                columns: plan.column_names.clone(),
                rows,
            }
        };

        // ORDER BY over aggregate output.
        if !plan.order_on_output.is_empty() {
            let keys: Vec<(Expr, bool)> = plan
                .order_on_output
                .iter()
                .map(|&(pos, desc)| (Expr::Field(pos as u16), desc))
                .collect();
            result.rows = fastsort(self.sim(), result.rows, &keys, self.sort_parallelism)?;
        }

        if let Some(s) = stats {
            let sorted = !plan.order_by.is_empty() || !plan.order_on_output.is_empty();
            let label = match (&plan.aggregate, sorted) {
                (Some(_), true) => "AGGREGATE + SORT + PROJECT",
                (Some(_), false) => "AGGREGATE + PROJECT",
                (None, true) => "SORT + PROJECT",
                (None, false) => "PROJECT",
            };
            self.close_op(label.into(), result.rows.len() as u64, mark.unwrap(), s);
        }

        self.sim()
            .metrics
            .rows_returned
            .add(result.rows.len() as u64);
        Ok(result)
    }

    /// Fetch one table's rows per its access path, projected to
    /// `fetch_fields` and filtered by the residual.
    fn fetch_table(&self, t: &TableAccess, txn: Option<TxnId>) -> Result<Vec<Row>, ExecError> {
        let of = &t.info.open;
        let all_fields = t.fetch_fields.len() == of.desc.num_fields();
        let rows = match &t.access {
            AccessPath::TableScan {
                range,
                pushdown,
                browse: false,
            } => {
                // SELECT * with no predicate travels via RSBB (paper
                // example 2); anything with selection or projection uses
                // VSBB (example 1).
                let (mode, projection) = if pushdown.is_none() && all_fields {
                    (SubsetMode::Rsbb, None)
                } else {
                    (SubsetMode::Vsbb, Some(t.fetch_fields.as_slice()))
                };
                let scan = self.fs.scan(
                    txn,
                    of,
                    range,
                    pushdown.as_ref(),
                    projection,
                    mode,
                    if txn.is_some() {
                        ReadLock::Shared
                    } else {
                        ReadLock::None
                    },
                )?;
                if projection.is_none() && !all_fields {
                    unreachable!("RSBB only chosen when all fields are fetched");
                }
                scan.rows
            }
            AccessPath::TableScan { browse: true, .. } => {
                // Record-at-a-time: read whole records, project + filter
                // locally.
                let mut cur = self.fs.ens_open(of, txn);
                let mut rows = Vec::new();
                while let Some(full) = self.fs.ens_read_next(&mut cur)? {
                    self.sim().cpu_work(CpuLayer::Executor, 1);
                    let projected = Row(t
                        .fetch_fields
                        .iter()
                        .map(|&f| full.0[f as usize].clone())
                        .collect());
                    rows.push(projected);
                }
                rows
            }
            AccessPath::IndexScan {
                index,
                range,
                index_pushdown,
                index_only,
            } => {
                let idx = &of.indexes[*index];
                let entries = self.fs.scan_index(
                    txn,
                    idx,
                    range,
                    index_pushdown.as_ref(),
                    if txn.is_some() {
                        ReadLock::Shared
                    } else {
                        ReadLock::None
                    },
                )?;
                if *index_only {
                    // Project directly out of index rows.
                    let field_in_index = |base: u16| -> usize {
                        idx.base_fields
                            .iter()
                            .position(|&b| b == base)
                            .or_else(|| {
                                of.desc
                                    .key_fields
                                    .iter()
                                    .position(|&k| k == base)
                                    .map(|p| idx.base_fields.len() + p)
                            })
                            .expect("index-only plan covers all fetched fields")
                    };
                    entries
                        .into_iter()
                        .map(|irow| {
                            Row(t
                                .fetch_fields
                                .iter()
                                .map(|&f| irow.0[field_in_index(f)].clone())
                                .collect())
                        })
                        .collect()
                } else {
                    // Figure 2: fetch each base record by primary key.
                    let mut rows = Vec::new();
                    for irow in &entries {
                        let base_key = idx.base_key_from_index_row(&of.desc, &irow.0);
                        if let Some(full) = self.fs.read_by_key(
                            txn,
                            of,
                            &base_key,
                            if txn.is_some() {
                                ReadLock::Shared
                            } else {
                                ReadLock::None
                            },
                        )? {
                            rows.push(Row(t
                                .fetch_fields
                                .iter()
                                .map(|&f| full.0[f as usize].clone())
                                .collect()));
                        }
                    }
                    rows
                }
            }
            AccessPath::SysScan { pushdown } => {
                let Some(snap) = self.sys else {
                    return Err(ExecError::Eval(format!(
                        "no introspection snapshot for {}",
                        of.name
                    )));
                };
                let table = SysTable::from_name(&of.name)
                    .ok_or_else(|| ExecError::Eval(format!("unknown sys table {}", of.name)))?;
                let mut rows = Vec::new();
                for full in snap.rows(table) {
                    self.sim().cpu_work(CpuLayer::Executor, 1);
                    if let Some(p) = pushdown {
                        if !p.passes(full)? {
                            continue;
                        }
                    }
                    rows.push(Row(t
                        .fetch_fields
                        .iter()
                        .map(|&f| full.0[f as usize].clone())
                        .collect()));
                }
                // Charged after the snapshot was captured, so the bump is
                // part of this statement's own cost (visible to the *next*
                // snapshot), keeping self-observation idempotent.
                self.sim()
                    .measure
                    .entity(EntityKind::Process, "$SYS")
                    .bump(Ctr::SysScans);
                rows
            }
        };
        // Residual filter (browse / base-fetch index paths).
        if let Some(r) = &t.residual {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                self.sim()
                    .cpu_work(CpuLayer::Executor, 1 + r.eval_cost() / 2);
                if r.passes(&row)? {
                    kept.push(row);
                }
            }
            return Ok(kept);
        }
        Ok(rows)
    }

    fn aggregate(
        &self,
        agg: &AggPlan,
        rows: &[Row],
        names: &[String],
    ) -> Result<QueryResult, ExecError> {
        #[derive(Clone)]
        struct AccState {
            count: u64,
            sum_i: i64,
            sum_f: f64,
            any_float: bool,
            min: Option<Value>,
            max: Option<Value>,
        }
        impl Default for AccState {
            fn default() -> Self {
                AccState {
                    count: 0,
                    sum_i: 0,
                    sum_f: 0.0,
                    any_float: false,
                    min: None,
                    max: None,
                }
            }
        }

        let mut groups: HashMap<Vec<u8>, (Vec<Value>, Vec<AccState>)> = HashMap::new();
        let mut order: Vec<Vec<u8>> = Vec::new();
        for row in rows {
            self.sim()
                .cpu_work(CpuLayer::Executor, 1 + agg.aggs.len() as u64);
            let group_vals: Vec<Value> = agg.group_by.iter().map(|&g| row.field(g)).collect();
            let gk = group_key(&group_vals);
            let entry = groups.entry(gk.clone()).or_insert_with(|| {
                order.push(gk);
                (group_vals, vec![AccState::default(); agg.aggs.len()])
            });
            for (i, (func, arg)) in agg.aggs.iter().enumerate() {
                let v = match arg {
                    None => Value::Int(1), // COUNT(*)
                    Some(e) => e.eval(row)?,
                };
                if v.is_null() {
                    continue; // NULLs are ignored by aggregates
                }
                let st = &mut entry.1[i];
                st.count += 1;
                match func {
                    AggFunc::Count => {}
                    AggFunc::Sum | AggFunc::Avg => {
                        if let Some(i64v) = v.as_i64() {
                            st.sum_i += i64v;
                            st.sum_f += i64v as f64;
                        } else if let Some(f) = v.as_f64() {
                            st.any_float = true;
                            st.sum_f += f;
                        } else {
                            return Err(ExecError::Eval(
                                "SUM/AVG requires numeric argument".into(),
                            ));
                        }
                    }
                    AggFunc::Min => {
                        if st.min.as_ref().is_none_or(|m| sort_cmp(&v, m).is_lt()) {
                            st.min = Some(v.clone());
                        }
                    }
                    AggFunc::Max => {
                        if st.max.as_ref().is_none_or(|m| sort_cmp(&v, m).is_gt()) {
                            st.max = Some(v.clone());
                        }
                    }
                }
            }
        }
        // A global aggregate over zero rows still yields one row.
        if groups.is_empty() && agg.group_by.is_empty() {
            let gk = group_key(&[]);
            order.push(gk.clone());
            groups.insert(gk, (Vec::new(), vec![AccState::default(); agg.aggs.len()]));
        }

        let mut out_rows = Vec::with_capacity(order.len());
        for gk in order {
            let (gvals, states) = &groups[&gk];
            let mut out = Vec::with_capacity(agg.output.len());
            for o in &agg.output {
                out.push(match *o {
                    AggOutput::GroupCol(i) => gvals[i].clone(),
                    AggOutput::Agg(i) => {
                        let st = &states[i];
                        match agg.aggs[i].0 {
                            AggFunc::Count => Value::LargeInt(st.count as i64),
                            AggFunc::Sum => {
                                if st.count == 0 {
                                    Value::Null
                                } else if st.any_float {
                                    Value::Double(st.sum_f)
                                } else {
                                    Value::LargeInt(st.sum_i)
                                }
                            }
                            AggFunc::Avg => {
                                if st.count == 0 {
                                    Value::Null
                                } else {
                                    Value::Double(st.sum_f / st.count as f64)
                                }
                            }
                            AggFunc::Min => st.min.clone().unwrap_or(Value::Null),
                            AggFunc::Max => st.max.clone().unwrap_or(Value::Null),
                        }
                    }
                });
            }
            out_rows.push(Row(out));
        }
        Ok(QueryResult {
            columns: names.to_vec(),
            rows: out_rows,
        })
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Execute an INSERT plan; returns the number of rows inserted.
    pub fn insert(&self, plan: &InsertPlan, txn: TxnId) -> Result<u64, ExecError> {
        for row in &plan.rows {
            // CHECK constraints verified before shipping the row.
            for c in &plan.info.checks {
                self.sim()
                    .cpu_work(CpuLayer::Executor, 1 + c.eval_cost() / 2);
                if !c.passes(&nsql_records::SliceRow(row))? {
                    return Err(ExecError::ConstraintViolation);
                }
            }
            self.fs.insert_row(txn, &plan.info.open, row)?;
        }
        self.catalog
            .bump_rows(&plan.info.name, plan.rows.len() as i64);
        Ok(plan.rows.len() as u64)
    }

    /// Execute an UPDATE plan; returns the number of rows updated.
    pub fn update(&self, plan: &UpdatePlan, txn: TxnId) -> Result<u64, ExecError> {
        let n = self.fs.update_set(
            txn,
            &plan.info.open,
            &plan.range,
            plan.predicate.as_ref(),
            &plan.sets,
            plan.constraint.as_ref(),
        )?;
        Ok(n)
    }

    /// Execute a DELETE plan; returns the number of rows deleted.
    pub fn delete(&self, plan: &DeletePlan, txn: TxnId) -> Result<u64, ExecError> {
        let n = self
            .fs
            .delete_set(txn, &plan.info.open, &plan.range, plan.predicate.as_ref())?;
        self.catalog.bump_rows(&plan.info.name, -(n as i64));
        Ok(n)
    }
}

/// Order-insensitive hashable key for grouping values (f64 via bit
/// patterns; strings length-prefixed).
fn group_key(vals: &[Value]) -> Vec<u8> {
    let mut out = Vec::new();
    for v in vals {
        match v {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::SmallInt(n) => {
                out.push(2);
                out.extend_from_slice(&(*n as i64).to_be_bytes());
            }
            Value::Int(n) => {
                out.push(2);
                out.extend_from_slice(&(*n as i64).to_be_bytes());
            }
            Value::LargeInt(n) => {
                out.push(2);
                out.extend_from_slice(&n.to_be_bytes());
            }
            Value::Double(x) => {
                out.push(3);
                out.extend_from_slice(&x.to_bits().to_be_bytes());
            }
            Value::Str(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Evaluate a `KeyRange`-less full scan quickly (used by tests).
pub fn full_range() -> KeyRange {
    KeyRange::all()
}
