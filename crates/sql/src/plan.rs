//! The query planner.
//!
//! "Although a general SQL predicate can be multi-variable ..., the
//! Executor's File System invocations, mandated by the plan produced by the
//! SQL query compiler, are in terms of a single table, with optional access
//! via a secondary index."
//!
//! Planning therefore decomposes every statement into per-table accesses:
//!
//! 1. the WHERE clause is split into conjuncts;
//! 2. conjuncts referencing a single table become that table's
//!    **single-variable query**, shipped to its Disk Processes;
//! 3. conjuncts on the table's primary-key prefix further become the
//!    **key range** of the set-oriented request;
//! 4. a secondary **index** is chosen when it bounds the scan better than
//!    the primary key does;
//! 5. only the **fields needed upstream** are fetched (projection
//!    pushdown);
//! 6. cross-table conjuncts remain as the executor's join filter.

use crate::ast::{self, AstExpr, Select, SelectItem, Statement};
use crate::bind::{bind_expr, BindError, Scope};
use crate::catalog::{Catalog, CatalogError, TableInfo};
use nsql_records::key::encode_key_value;
use nsql_records::{CmpOp, Expr, FieldType, KeyRange, OwnedBound, SetList, Value};

/// Planning errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Catalog lookup failed.
    Catalog(CatalogError),
    /// Binding failed.
    Bind(BindError),
    /// Statement shape unsupported or invalid.
    Unsupported(String),
}

impl From<CatalogError> for PlanError {
    fn from(e: CatalogError) -> Self {
        PlanError::Catalog(e)
    }
}

impl From<BindError> for PlanError {
    fn from(e: BindError) -> Self {
        PlanError::Bind(e)
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Catalog(e) => write!(f, "{e}"),
            PlanError::Bind(e) => write!(f, "{e}"),
            PlanError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// How one table is accessed.
#[derive(Debug, Clone)]
pub enum AccessPath {
    /// Primary-key-ordered scan over a key range with a pushed-down
    /// single-variable query.
    TableScan {
        /// Primary-key range.
        range: KeyRange,
        /// Pushed-down predicate (table-local field numbers).
        pushdown: Option<Expr>,
        /// Use the old record-at-a-time interface (experiment support).
        browse: bool,
    },
    /// Access through a secondary index.
    IndexScan {
        /// Index position within the table's index list.
        index: usize,
        /// Index-key range.
        range: KeyRange,
        /// Predicate over the *index row*, pushed to the index's Disk
        /// Process.
        index_pushdown: Option<Expr>,
        /// True when all needed fields live in the index row (no base
        /// fetch).
        index_only: bool,
    },
    /// Scan of a `sys.*` virtual table, served by the executor from the
    /// statement's introspection snapshot — no File System messages.
    SysScan {
        /// Single-variable predicate, evaluated over the full virtual row.
        pushdown: Option<Expr>,
    },
}

/// One table's access within a SELECT plan.
#[derive(Debug, Clone)]
pub struct TableAccess {
    /// Catalog snapshot for the table.
    pub info: TableInfo,
    /// Chosen path.
    pub access: AccessPath,
    /// Base-table fields fetched (in ascending order); the table's
    /// contribution to the combined row.
    pub fetch_fields: Vec<u16>,
    /// Residual predicate over the fetched fields (evaluated by the
    /// executor; arises when an index path cannot push everything down).
    pub residual: Option<Expr>,
}

/// Aggregate computation description.
#[derive(Debug, Clone)]
pub struct AggPlan {
    /// Group-by positions (combined-row numbering).
    pub group_by: Vec<u16>,
    /// Aggregates: function + argument over the combined row (None = `*`).
    pub aggs: Vec<(ast::AggFunc, Option<Expr>)>,
    /// Output items in SELECT order: `GroupCol(i)` picks `group_by[i]`,
    /// `Agg(i)` picks aggregate i.
    pub output: Vec<AggOutput>,
}

/// One output column of an aggregate query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOutput {
    /// The i-th GROUP BY column.
    GroupCol(usize),
    /// The i-th aggregate.
    Agg(usize),
}

/// A planned SELECT.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    /// Table accesses, joined left-to-right by nested loops.
    pub tables: Vec<TableAccess>,
    /// Cross-table filter over the combined row.
    pub join_filter: Option<Expr>,
    /// Sort keys over the combined row (pre-projection), unless
    /// `order_on_output`.
    pub order_by: Vec<(Expr, bool)>,
    /// Aggregation, if any.
    pub aggregate: Option<AggPlan>,
    /// Output projection over the combined row (ignored when aggregating).
    pub output: Vec<(String, Expr)>,
    /// Column names of the result.
    pub column_names: Vec<String>,
    /// Sort on output columns instead (aggregate queries).
    pub order_on_output: Vec<(usize, bool)>,
}

/// A planned UPDATE.
#[derive(Debug, Clone)]
pub struct UpdatePlan {
    /// Target table.
    pub info: TableInfo,
    /// Primary-key range.
    pub range: KeyRange,
    /// Pushed-down predicate.
    pub predicate: Option<Expr>,
    /// Bound SET list.
    pub sets: SetList,
    /// Conjoined CHECK constraints (pushed to the Disk Process).
    pub constraint: Option<Expr>,
}

/// A planned DELETE.
#[derive(Debug, Clone)]
pub struct DeletePlan {
    /// Target table.
    pub info: TableInfo,
    /// Primary-key range.
    pub range: KeyRange,
    /// Pushed-down predicate.
    pub predicate: Option<Expr>,
}

/// A planned INSERT.
#[derive(Debug, Clone)]
pub struct InsertPlan {
    /// Target table.
    pub info: TableInfo,
    /// Fully-evaluated, coerced rows in declaration order.
    pub rows: Vec<Vec<Value>>,
}

/// Any planned statement.
#[derive(Debug, Clone)]
pub enum Plan {
    /// SELECT.
    Select(SelectPlan),
    /// INSERT.
    Insert(InsertPlan),
    /// UPDATE.
    Update(UpdatePlan),
    /// DELETE.
    Delete(DeletePlan),
    /// EXPLAIN of a planned statement.
    Explain(Box<Plan>),
    /// EXPLAIN ANALYZE: execute the planned statement, annotating each
    /// operator with its measured cost.
    ExplainAnalyze(Box<Plan>),
    /// DDL and transaction control execute directly in the session.
    Passthrough(Statement),
}

impl Plan {
    /// Does this plan read any `sys.*` virtual table? The session uses this
    /// to decide whether a statement needs an introspection snapshot.
    pub fn references_sys(&self) -> bool {
        match self {
            Plan::Select(p) => p
                .tables
                .iter()
                .any(|t| matches!(t.access, AccessPath::SysScan { .. })),
            Plan::Explain(inner) | Plan::ExplainAnalyze(inner) => inner.references_sys(),
            Plan::Insert(_) | Plan::Update(_) | Plan::Delete(_) | Plan::Passthrough(_) => false,
        }
    }
}

/// Resolve a FROM-position name: `sys.*` virtual tables first, then the
/// catalog.
fn resolve_table(catalog: &Catalog, name: &str) -> Result<TableInfo, PlanError> {
    if crate::sys::is_sys_name(name) {
        return crate::sys::table_info(name).ok_or_else(|| {
            PlanError::Catalog(CatalogError::NoSuchTable(name.to_ascii_uppercase()))
        });
    }
    catalog.table(name).map_err(Into::into)
}

/// Plan a statement against the catalog.
pub fn plan(catalog: &Catalog, stmt: Statement) -> Result<Plan, PlanError> {
    match stmt {
        Statement::Select(s) => plan_select(catalog, s).map(Plan::Select),
        Statement::Insert(i) => plan_insert(catalog, i).map(Plan::Insert),
        Statement::Update(u) => plan_update(catalog, u).map(Plan::Update),
        Statement::Delete(d) => plan_delete(catalog, d).map(Plan::Delete),
        Statement::Explain(inner) => Ok(Plan::Explain(Box::new(plan(catalog, *inner)?))),
        Statement::ExplainAnalyze(inner) => {
            Ok(Plan::ExplainAnalyze(Box::new(plan(catalog, *inner)?)))
        }
        other => Ok(Plan::Passthrough(other)),
    }
}

fn range_str(r: &KeyRange) -> String {
    match (&r.begin, &r.end) {
        (OwnedBound::Unbounded, OwnedBound::Unbounded) => "full key space".into(),
        (OwnedBound::Unbounded, _) => "upper-bounded key range".into(),
        (_, OwnedBound::Unbounded) => "lower-bounded key range".into(),
        _ => "bounded key range".into(),
    }
}

/// One-line description of a table's access path, as shown by EXPLAIN and
/// used as the operator label in EXPLAIN ANALYZE.
pub fn describe_access(t: &TableAccess) -> String {
    let name = &t.info.name;
    match &t.access {
        AccessPath::TableScan {
            range,
            pushdown,
            browse: false,
        } => {
            let mode =
                if pushdown.is_none() && t.fetch_fields.len() == t.info.open.desc.num_fields() {
                    "RSBB"
                } else {
                    "VSBB"
                };
            let mut line = format!(
                "SCAN {name} via {mode} over {} ({} partition(s))",
                range_str(range),
                t.info.open.partitions_for_range(range).len()
            );
            if let Some(p) = pushdown {
                line.push_str(&format!("; pushdown predicate: {p}"));
            }
            line.push_str(&format!(
                "; project {} field(s) at DP",
                t.fetch_fields.len()
            ));
            line
        }
        AccessPath::TableScan { browse: true, .. } => {
            format!("SCAN {name} record-at-a-time (BROWSE), filter at executor")
        }
        AccessPath::IndexScan {
            index,
            range,
            index_pushdown,
            index_only,
        } => {
            let idx = &t.info.open.indexes[*index];
            let mut line = format!(
                "INDEX SCAN {name} via {} over {}",
                idx.name,
                range_str(range)
            );
            if let Some(p) = index_pushdown {
                line.push_str(&format!("; index pushdown: {p}"));
            }
            if *index_only {
                line.push_str("; index-only (no base fetch)");
            } else {
                line.push_str("; fetch base rows by primary key (Figure 2)");
            }
            line
        }
        AccessPath::SysScan { pushdown } => {
            let mut line = format!("SYS SCAN {name} (virtual, snapshot at statement start)");
            if let Some(p) = pushdown {
                line.push_str(&format!("; filter: {p}"));
            }
            line.push_str(&format!("; project {} field(s)", t.fetch_fields.len()));
            line
        }
    }
}

/// Human-readable plan description (the EXPLAIN output), one line per step.
pub fn describe(plan: &Plan) -> Vec<String> {
    let access_str = describe_access;
    let mut out = Vec::new();
    match plan {
        Plan::Select(p) => {
            for (i, t) in p.tables.iter().enumerate() {
                let prefix = if i == 0 {
                    String::new()
                } else {
                    "NESTED-LOOP JOIN with ".to_string()
                };
                out.push(format!("{prefix}{}", access_str(t)));
                if let Some(r) = &t.residual {
                    out.push(format!("  residual filter at executor: {r}"));
                }
            }
            if let Some(f) = &p.join_filter {
                out.push(format!("JOIN FILTER: {f}"));
            }
            if let Some(a) = &p.aggregate {
                out.push(format!(
                    "AGGREGATE {} function(s), {} group column(s)",
                    a.aggs.len(),
                    a.group_by.len()
                ));
            }
            if !p.order_by.is_empty() || !p.order_on_output.is_empty() {
                out.push("SORT via FastSort".into());
            }
            if !p.column_names.is_empty() {
                out.push(format!("PROJECT -> ({})", p.column_names.join(", ")));
            }
        }
        Plan::Insert(p) => out.push(format!(
            "INSERT {} row(s) into {} ({} index(es) maintained)",
            p.rows.len(),
            p.info.name,
            p.info.open.indexes.len()
        )),
        Plan::Update(p) => {
            let mut line = format!(
                "UPDATE^SUBSET on {} over {}",
                p.info.name,
                range_str(&p.range)
            );
            if let Some(pred) = &p.predicate {
                line.push_str(&format!("; pushdown predicate: {pred}"));
            }
            line.push_str(&format!(
                "; {} update expression(s) at DP",
                p.sets.sets.len()
            ));
            if p.constraint.is_some() {
                line.push_str("; CHECK constraint at DP");
            }
            out.push(line);
        }
        Plan::Delete(p) => {
            let mut line = format!(
                "DELETE^SUBSET on {} over {}",
                p.info.name,
                range_str(&p.range)
            );
            if let Some(pred) = &p.predicate {
                line.push_str(&format!("; pushdown predicate: {pred}"));
            }
            out.push(line);
        }
        Plan::Explain(inner) | Plan::ExplainAnalyze(inner) => return describe(inner),
        Plan::Passthrough(stmt) => out.push(format!("{stmt:?}")),
    }
    out
}

// ----------------------------------------------------------------------
// Conjunct analysis
// ----------------------------------------------------------------------

/// Split an expression into top-level AND conjuncts.
fn conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(a, b) => {
            conjuncts(*a, out);
            conjuncts(*b, out);
        }
        other => out.push(other),
    }
}

/// Do all fields of `e` fall within `[lo, hi)`?
fn fields_within(e: &Expr, lo: u16, hi: u16) -> bool {
    let mut fields = Vec::new();
    e.collect_fields(&mut fields);
    fields.iter().all(|&f| f >= lo && f < hi)
}

/// A single-column constraint extracted from a conjunct.
#[derive(Debug, Clone)]
enum ColBound {
    Eq(Value),
    Range {
        lo: Option<(Value, bool)>,
        hi: Option<(Value, bool)>,
    },
}

/// Try to read a conjunct as a bound on field `f` (field numbers local).
fn bound_on(e: &Expr, f: u16) -> Option<ColBound> {
    match e {
        Expr::Cmp(a, op, b) => {
            let (field, lit, op) = match (a.as_ref(), b.as_ref()) {
                (Expr::Field(x), Expr::Lit(v)) => (*x, v.clone(), *op),
                (Expr::Lit(v), Expr::Field(x)) => (*x, v.clone(), op.flipped()),
                _ => return None,
            };
            if field != f || lit.is_null() {
                return None;
            }
            Some(match op {
                CmpOp::Eq => ColBound::Eq(lit),
                CmpOp::Lt => ColBound::Range {
                    lo: None,
                    hi: Some((lit, false)),
                },
                CmpOp::Le => ColBound::Range {
                    lo: None,
                    hi: Some((lit, true)),
                },
                CmpOp::Gt => ColBound::Range {
                    lo: Some((lit, false)),
                    hi: None,
                },
                CmpOp::Ge => ColBound::Range {
                    lo: Some((lit, true)),
                    hi: None,
                },
                CmpOp::Ne => return None,
            })
        }
        Expr::Between { expr, lo, hi } => {
            let (Expr::Field(x), Expr::Lit(l), Expr::Lit(h)) =
                (expr.as_ref(), lo.as_ref(), hi.as_ref())
            else {
                return None;
            };
            if *x != f || l.is_null() || h.is_null() {
                return None;
            }
            Some(ColBound::Range {
                lo: Some((l.clone(), true)),
                hi: Some((h.clone(), true)),
            })
        }
        _ => None,
    }
}

/// Build an encoded key range from conjuncts over a key-column sequence:
/// an equality prefix, then at most one range column.
fn key_range_from(
    conj: &[Expr],
    key_cols: &[u16],
    col_type: impl Fn(u16) -> FieldType,
) -> KeyRange {
    let mut prefix = Vec::new();
    let mut range_col_bound: Option<(FieldType, ColBound)> = None;
    for &kc in key_cols {
        let ty = col_type(kc);
        // Find an equality first; otherwise a range ends the prefix walk.
        let mut eq = None;
        let mut rng: Option<ColBound> = None;
        for c in conj {
            match bound_on(c, kc) {
                Some(ColBound::Eq(v)) => {
                    eq = Some(v);
                    break;
                }
                Some(r @ ColBound::Range { .. }) => {
                    // Merge multiple range conjuncts on the same column.
                    rng = Some(match (rng, r) {
                        (None, r) => r,
                        (
                            Some(ColBound::Range { lo: l1, hi: h1 }),
                            ColBound::Range { lo: l2, hi: h2 },
                        ) => ColBound::Range {
                            lo: tighter(l1, l2, true),
                            hi: tighter(h1, h2, false),
                        },
                        (some, _) => some.expect("range"),
                    });
                }
                None => {}
            }
        }
        if let Some(v) = eq {
            if let Some(v) = ty.coerce(v) {
                encode_key_value(ty, &v, &mut prefix);
                continue;
            }
        }
        if let Some(r) = rng {
            range_col_bound = Some((ty, r));
        }
        break;
    }

    match range_col_bound {
        None if prefix.is_empty() => KeyRange::all(),
        None => KeyRange::prefix(prefix),
        Some((ty, ColBound::Range { lo, hi })) => {
            let begin = match lo {
                None if prefix.is_empty() => OwnedBound::Unbounded,
                None => OwnedBound::Included(prefix.clone()),
                Some((v, incl)) => match ty.coerce(v) {
                    None => OwnedBound::Unbounded,
                    Some(v) => {
                        let mut k = prefix.clone();
                        encode_key_value(ty, &v, &mut k);
                        if incl {
                            OwnedBound::Included(k)
                        } else {
                            OwnedBound::Excluded(k)
                        }
                    }
                },
            };
            let end = match hi {
                None if prefix.is_empty() => OwnedBound::Unbounded,
                None => KeyRange::prefix(prefix.clone()).end,
                Some((v, incl)) => match ty.coerce(v) {
                    None => OwnedBound::Unbounded,
                    Some(v) => {
                        let mut k = prefix.clone();
                        encode_key_value(ty, &v, &mut k);
                        if incl {
                            // Inclusive upper bound on a key prefix: extend
                            // to cover any remaining key columns.
                            let mut hi_k = k.clone();
                            hi_k.push(0xFF);
                            OwnedBound::Excluded(hi_k)
                        } else {
                            OwnedBound::Excluded(k)
                        }
                    }
                },
            };
            KeyRange { begin, end }
        }
        Some((_, ColBound::Eq(_))) => unreachable!("equalities extend the prefix"),
    }
}

fn tighter(
    a: Option<(Value, bool)>,
    b: Option<(Value, bool)>,
    is_lo: bool,
) -> Option<(Value, bool)> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some((va, ia)), Some((vb, ib))) => match va.sql_cmp(&vb) {
            Some(std::cmp::Ordering::Greater) => Some(if is_lo { (va, ia) } else { (vb, ib) }),
            Some(std::cmp::Ordering::Less) => Some(if is_lo { (vb, ib) } else { (va, ia) }),
            _ => Some((va, ia && ib)),
        },
    }
}

/// AND together a list of expressions.
fn conjoin(mut exprs: Vec<Expr>) -> Option<Expr> {
    let first = exprs.pop()?;
    Some(exprs.into_iter().fold(first, |acc, e| Expr::and(e, acc)))
}

// ----------------------------------------------------------------------
// SELECT planning
// ----------------------------------------------------------------------

fn plan_select(catalog: &Catalog, s: Select) -> Result<SelectPlan, PlanError> {
    if s.from.is_empty() {
        return Err(PlanError::Unsupported("SELECT without FROM".into()));
    }
    // Resolve tables and build the scope over full base rows.
    let infos: Vec<TableInfo> = s
        .from
        .iter()
        .map(|t| resolve_table(catalog, &t.table))
        .collect::<Result<_, _>>()?;
    let scope = Scope::over(
        s.from
            .iter()
            .zip(&infos)
            .map(|(tr, info)| {
                let mut names = vec![tr.table.to_ascii_uppercase()];
                if let Some(a) = &tr.alias {
                    names.push(a.to_ascii_uppercase());
                }
                (names, &info.open.desc)
            })
            .collect(),
    );

    // Bind WHERE and split into per-table and cross-table conjuncts.
    let mut table_conjuncts: Vec<Vec<Expr>> = vec![Vec::new(); infos.len()];
    let mut cross: Vec<Expr> = Vec::new();
    if let Some(w) = &s.where_clause {
        let bound = bind_expr(w, &scope)?;
        let mut cs = Vec::new();
        conjuncts(bound, &mut cs);
        for c in cs {
            let mut placed = false;
            for (ti, st) in scope.tables.iter().enumerate() {
                let lo = st.offset;
                let hi = st.offset + st.desc.num_fields() as u16;
                if fields_within(&c, lo, hi) {
                    // Single-variable: remap to table-local numbering.
                    table_conjuncts[ti].push(c.remap_fields(&move |f| f - lo));
                    placed = true;
                    break;
                }
            }
            if !placed {
                cross.push(c);
            }
        }
    }

    // Bind SELECT items / ORDER BY / GROUP BY over the scope.
    let mut out_exprs: Vec<(String, Expr)> = Vec::new();
    let mut agg_items: Vec<(ast::AggFunc, Option<Expr>, String)> = Vec::new();
    let mut has_agg = false;
    for item in &s.items {
        match item {
            SelectItem::Wildcard => {
                for st in &scope.tables {
                    for (i, f) in st.desc.fields.iter().enumerate() {
                        out_exprs.push((f.name.clone(), Expr::Field(st.offset + i as u16)));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let bound = bind_expr(expr, &scope)?;
                let name = alias.clone().unwrap_or_else(|| display_name(expr));
                out_exprs.push((name, bound));
            }
            SelectItem::Aggregate { func, expr, alias } => {
                has_agg = true;
                let bound = expr.as_ref().map(|e| bind_expr(e, &scope)).transpose()?;
                let name = alias
                    .clone()
                    .unwrap_or_else(|| format!("{func:?}").to_uppercase());
                agg_items.push((*func, bound, name));
            }
        }
    }

    let group_fields: Vec<u16> = s
        .group_by
        .iter()
        .map(|c| scope.resolve(c))
        .collect::<Result<_, _>>()?;
    if has_agg || !group_fields.is_empty() {
        // Aggregate query: every plain item must be a group column.
        for (name, e) in &out_exprs {
            match e {
                Expr::Field(f) if group_fields.contains(f) => {}
                _ => {
                    return Err(PlanError::Unsupported(format!(
                        "non-aggregate output {name} must appear in GROUP BY"
                    )))
                }
            }
        }
    }

    // Fields each table must deliver: outputs + cross filters + order by +
    // group by + aggregate arguments + index residuals.
    let mut needed: Vec<u16> = Vec::new();
    for (_, e) in &out_exprs {
        e.collect_fields(&mut needed);
    }
    for c in &cross {
        c.collect_fields(&mut needed);
    }
    // Aggregate queries sort on *output* columns (matched by name later);
    // plain queries sort on scope expressions before projection.
    let is_aggregate_query = has_agg || !group_fields.is_empty();
    let mut bound_order: Vec<(Expr, bool)> = Vec::new();
    if !is_aggregate_query {
        for o in &s.order_by {
            let e = bind_expr(&o.expr, &scope)?;
            e.collect_fields(&mut needed);
            bound_order.push((e, o.desc));
        }
    }
    needed.extend(&group_fields);
    for (_, e, _) in &agg_items {
        if let Some(e) = e {
            e.collect_fields(&mut needed);
        }
    }

    // Per-table access paths + fetch lists; build the global remap from
    // scope numbering to combined-row numbering.
    let mut accesses = Vec::new();
    let mut remap: Vec<Option<u16>> = vec![None; scope.width() as usize];
    let mut out_pos = 0u16;
    for (ti, info) in infos.iter().enumerate() {
        let st = &scope.tables[ti];
        let lo = st.offset;
        let nfields = st.desc.num_fields() as u16;
        // Fields of this table needed upstream (table-local numbers).
        let mut fetch: Vec<u16> = needed
            .iter()
            .filter(|&&f| f >= lo && f < lo + nfields)
            .map(|&f| f - lo)
            .collect();
        let access = if crate::sys::is_sys_name(&info.name) {
            // Virtual tables: the whole single-variable query evaluates
            // over the snapshot's full rows; nothing to route or push down
            // to a Disk Process.
            AccessPath::SysScan {
                pushdown: conjoin(table_conjuncts[ti].clone()),
            }
        } else {
            choose_access(info, &table_conjuncts[ti], &mut fetch, s.for_browse)
        };
        fetch.sort_unstable();
        fetch.dedup();
        // Tables contributing nothing still need one field to drive the
        // join (use the first key column).
        if fetch.is_empty() {
            fetch.push(info.open.desc.key_fields[0]);
        }
        for (pos, &f) in fetch.iter().enumerate() {
            remap[(lo + f) as usize] = Some(out_pos + pos as u16);
        }
        out_pos += fetch.len() as u16;
        accesses.push((access, fetch));
    }
    let remap_fn =
        |f: u16| -> u16 { remap[f as usize].expect("every needed field was planned for fetch") };

    // Assemble table accesses with residuals.
    let mut tables = Vec::new();
    for ((access, fetch), info) in accesses.into_iter().zip(infos) {
        let residual = match &access {
            // Index scans that fetch base rows apply the table predicate as
            // an executor residual (over the fetched fields).
            AccessPath::IndexScan {
                index_only: false, ..
            }
            | AccessPath::TableScan { browse: true, .. } => {
                let ti = tables.len();
                let local = conjoin(table_conjuncts[ti].clone());
                local.map(|e| {
                    e.remap_fields(&|f| {
                        fetch
                            .iter()
                            .position(|&x| x == f)
                            .expect("residual fields are fetched") as u16
                    })
                })
            }
            _ => None,
        };
        tables.push(TableAccess {
            info,
            access,
            fetch_fields: fetch,
            residual,
        });
    }

    // Residual fields must be fetched: ensure that (browse/index residual
    // fields were collected into `needed` only if used upstream). Re-check:
    // add missing residual fields would complicate remapping; instead the
    // residual for browse/index paths uses the *full* table conjunct set,
    // whose fields we must fetch. Extend fetch lists up front instead:
    // handled below by a validation pass.
    validate_residuals(&tables)?;

    let join_filter = conjoin(cross).map(|e| e.remap_fields(&remap_fn));
    let order_by: Vec<(Expr, bool)> = bound_order
        .into_iter()
        .map(|(e, d)| (e.remap_fields(&remap_fn), d))
        .collect();
    let output: Vec<(String, Expr)> = out_exprs
        .into_iter()
        .map(|(n, e)| (n, e.remap_fields(&remap_fn)))
        .collect();

    // Aggregation plan.
    let aggregate = if is_aggregate_query {
        let group_by: Vec<u16> = group_fields.iter().map(|&f| remap_fn(f)).collect();
        let aggs: Vec<(ast::AggFunc, Option<Expr>)> = agg_items
            .iter()
            .map(|(f, e, _)| (*f, e.as_ref().map(|e| e.remap_fields(&remap_fn))))
            .collect();
        // Output order: walk SELECT items again.
        let mut agg_i = 0usize;
        let mut outputs = Vec::new();
        let mut names = Vec::new();
        let mut plain_i = 0usize;
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    return Err(PlanError::Unsupported("SELECT * with GROUP BY".into()))
                }
                SelectItem::Expr { .. } => {
                    let (name, e) = &output[plain_i];
                    plain_i += 1;
                    let Expr::Field(f) = e else {
                        return Err(PlanError::Unsupported(
                            "grouped output must be a column".into(),
                        ));
                    };
                    let gi = group_by
                        .iter()
                        .position(|g| g == f)
                        .expect("validated above");
                    outputs.push(AggOutput::GroupCol(gi));
                    names.push(name.clone());
                }
                SelectItem::Aggregate { .. } => {
                    outputs.push(AggOutput::Agg(agg_i));
                    names.push(agg_items[agg_i].2.clone());
                    agg_i += 1;
                }
            }
        }
        // ORDER BY on aggregate output: match by column name.
        let mut order_on_output = Vec::new();
        for o in &s.order_by {
            let AstExpr::Column(c) = &o.expr else {
                return Err(PlanError::Unsupported(
                    "ORDER BY on aggregates must name output columns".into(),
                ));
            };
            let pos = names
                .iter()
                .position(|n| n.eq_ignore_ascii_case(&c.column))
                .ok_or_else(|| {
                    PlanError::Unsupported(format!("ORDER BY column {} not in output", c.column))
                })?;
            order_on_output.push((pos, o.desc));
        }
        return Ok(SelectPlan {
            tables,
            join_filter,
            order_by: Vec::new(),
            aggregate: Some(AggPlan {
                group_by,
                aggs,
                output: outputs,
            }),
            output: Vec::new(),
            column_names: names,
            order_on_output,
        });
    } else {
        None
    };

    let column_names = output.iter().map(|(n, _)| n.clone()).collect();
    Ok(SelectPlan {
        tables,
        join_filter,
        order_by,
        aggregate,
        output,
        column_names,
        order_on_output: Vec::new(),
    })
}

/// Choose between the primary-key scan and available indices, extending
/// `fetch` with fields the chosen path needs (e.g. residual fields).
fn choose_access(
    info: &TableInfo,
    conj: &[Expr],
    fetch: &mut Vec<u16>,
    browse: bool,
) -> AccessPath {
    let desc = &info.open.desc;
    if browse {
        // Record-at-a-time experiments read everything and filter at the
        // executor; residual fields must be fetched.
        for c in conj {
            c.collect_fields(fetch);
        }
        return AccessPath::TableScan {
            range: KeyRange::all(),
            pushdown: None,
            browse: true,
        };
    }
    let pk_range = key_range_from(conj, &desc.key_fields, |f| desc.fields[f as usize].ty);
    let pk_bounded =
        pk_range.begin != OwnedBound::Unbounded || pk_range.end != OwnedBound::Unbounded;
    if !pk_bounded {
        // Consider secondary indices: prefer one whose leading column has
        // an equality, then one with a range.
        let mut best: Option<(usize, bool)> = None; // (index, is_equality)
        for (ii, idx) in info.open.indexes.iter().enumerate() {
            let lead = idx.base_fields[0];
            for c in conj {
                match bound_on(c, lead) {
                    Some(ColBound::Eq(_)) if best.is_none_or(|(_, eq)| !eq) => {
                        best = Some((ii, true));
                    }
                    Some(ColBound::Range { .. }) if best.is_none() => {
                        best = Some((ii, false));
                    }
                    _ => {}
                }
            }
        }
        if let Some((ii, _)) = best {
            let idx = &info.open.indexes[ii];
            // The index row layout: indexed fields first, then pk fields.
            // Conjuncts over (indexed ∪ pk) fields can be pushed to the
            // index's Disk Process after remapping.
            let index_field_of = |base: u16| -> Option<u16> {
                idx.base_fields
                    .iter()
                    .position(|&b| b == base)
                    .map(|p| p as u16)
                    .or_else(|| {
                        desc.key_fields
                            .iter()
                            .position(|&k| k == base)
                            .map(|p| (idx.base_fields.len() + p) as u16)
                    })
            };
            let mut index_pushable = Vec::new();
            for c in conj {
                let mut fields = Vec::new();
                c.collect_fields(&mut fields);
                if fields.iter().all(|&f| index_field_of(f).is_some()) {
                    index_pushable.push(c.remap_fields(&|f| index_field_of(f).expect("checked")));
                }
            }
            let range = key_range_from(conj, &idx.base_fields, |f| desc.fields[f as usize].ty);
            // Index-only when every fetched field is in the index row.
            let index_only = fetch.iter().all(|&f| index_field_of(f).is_some());
            if !index_only {
                // Base rows will be fetched whole; residual needs conjunct
                // fields available.
                for c in conj {
                    c.collect_fields(fetch);
                }
            }
            return AccessPath::IndexScan {
                index: ii,
                range,
                index_pushdown: conjoin(index_pushable),
                index_only,
            };
        }
    }
    AccessPath::TableScan {
        range: pk_range,
        pushdown: conjoin(conj.to_vec()),
        browse: false,
    }
}

fn validate_residuals(tables: &[TableAccess]) -> Result<(), PlanError> {
    for t in tables {
        if let Some(r) = &t.residual {
            let mut fields = Vec::new();
            r.collect_fields(&mut fields);
            if fields.iter().any(|&f| f as usize >= t.fetch_fields.len()) {
                return Err(PlanError::Unsupported(
                    "internal: residual references unfetched field".into(),
                ));
            }
        }
    }
    Ok(())
}

fn display_name(e: &AstExpr) -> String {
    match e {
        AstExpr::Column(c) => c.column.to_ascii_uppercase(),
        _ => "EXPR".into(),
    }
}

// ----------------------------------------------------------------------
// DML planning
// ----------------------------------------------------------------------

/// `sys.*` names are rejected in every DML target position.
fn reject_sys_dml(table: &str) -> Result<(), PlanError> {
    if crate::sys::is_sys_name(table) {
        return Err(PlanError::Unsupported("sys.* tables are read-only".into()));
    }
    Ok(())
}

fn plan_insert(catalog: &Catalog, i: ast::Insert) -> Result<InsertPlan, PlanError> {
    reject_sys_dml(&i.table)?;
    let info = catalog.table(&i.table)?;
    let desc = &info.open.desc;
    // Column positions.
    let positions: Vec<u16> = if i.columns.is_empty() {
        (0..desc.num_fields() as u16).collect()
    } else {
        i.columns
            .iter()
            .map(|c| {
                desc.field_named(c)
                    .ok_or_else(|| PlanError::Catalog(CatalogError::NoSuchColumn(c.clone())))
            })
            .collect::<Result<_, _>>()?
    };
    let empty_scope = Scope { tables: Vec::new() };
    let mut rows = Vec::new();
    for r in &i.rows {
        if r.len() != positions.len() {
            return Err(PlanError::Unsupported(format!(
                "INSERT row has {} values for {} columns",
                r.len(),
                positions.len()
            )));
        }
        let mut row = vec![Value::Null; desc.num_fields()];
        for (expr, &pos) in r.iter().zip(&positions) {
            let bound = bind_expr(expr, &empty_scope)
                .map_err(|_| PlanError::Unsupported("INSERT values must be literals".into()))?;
            let v = bound
                .eval(&nsql_records::Row(Vec::new()))
                .map_err(|e| PlanError::Unsupported(format!("bad INSERT value: {e}")))?;
            let ty = desc.fields[pos as usize].ty;
            row[pos as usize] = ty.coerce(v).ok_or_else(|| {
                PlanError::Unsupported(format!(
                    "value does not fit column {}",
                    desc.fields[pos as usize].name
                ))
            })?;
        }
        rows.push(row);
    }
    Ok(InsertPlan { info, rows })
}

fn plan_update(catalog: &Catalog, u: ast::Update) -> Result<UpdatePlan, PlanError> {
    reject_sys_dml(&u.table)?;
    let info = catalog.table(&u.table)?;
    let scope = Scope::single(&info.name, &info.open.desc);
    let mut sets = Vec::new();
    for (col, e) in &u.sets {
        let f = info
            .open
            .desc
            .field_named(col)
            .ok_or_else(|| PlanError::Catalog(CatalogError::NoSuchColumn(col.clone())))?;
        sets.push((f, bind_expr(e, &scope)?));
    }
    let mut conj = Vec::new();
    if let Some(w) = &u.where_clause {
        conjuncts(bind_expr(w, &scope)?, &mut conj);
    }
    let desc = &info.open.desc;
    let range = key_range_from(&conj, &desc.key_fields, |f| desc.fields[f as usize].ty);
    let constraint = conjoin(info.checks.clone());
    Ok(UpdatePlan {
        range,
        predicate: conjoin(conj),
        sets: SetList { sets },
        constraint,
        info,
    })
}

fn plan_delete(catalog: &Catalog, d: ast::Delete) -> Result<DeletePlan, PlanError> {
    reject_sys_dml(&d.table)?;
    let info = catalog.table(&d.table)?;
    let scope = Scope::single(&info.name, &info.open.desc);
    let mut conj = Vec::new();
    if let Some(w) = &d.where_clause {
        conjuncts(bind_expr(w, &scope)?, &mut conj);
    }
    let desc = &info.open.desc;
    let range = key_range_from(&conj, &desc.key_fields, |f| desc.fields[f as usize].ty);
    Ok(DeletePlan {
        range,
        predicate: conjoin(conj),
        info,
    })
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use nsql_records::key::encode_key_prefix;

    fn k(v: i32) -> Vec<u8> {
        encode_key_prefix(&[(FieldType::Int, Value::Int(v))])
    }

    fn int_range(conj: &[Expr]) -> KeyRange {
        key_range_from(conj, &[0], |_| FieldType::Int)
    }

    #[test]
    fn equality_becomes_prefix_range() {
        let r = int_range(&[Expr::field_cmp(0, CmpOp::Eq, Value::Int(7))]);
        assert!(r.contains(&k(7)));
        assert!(!r.contains(&k(6)));
        assert!(!r.contains(&k(8)));
    }

    #[test]
    fn inequalities_become_bounds() {
        let r = int_range(&[Expr::field_cmp(0, CmpOp::Le, Value::Int(10))]);
        assert!(r.contains(&k(10)));
        assert!(!r.contains(&k(11)));
        assert_eq!(r.begin, OwnedBound::Unbounded);

        let r = int_range(&[Expr::field_cmp(0, CmpOp::Gt, Value::Int(5))]);
        assert!(!r.contains(&k(5)));
        assert!(r.contains(&k(6)));
    }

    #[test]
    fn multiple_bounds_intersect() {
        let r = int_range(&[
            Expr::field_cmp(0, CmpOp::Ge, Value::Int(3)),
            Expr::field_cmp(0, CmpOp::Lt, Value::Int(9)),
            Expr::field_cmp(0, CmpOp::Ge, Value::Int(5)), // tighter low bound
        ]);
        assert!(!r.contains(&k(4)));
        assert!(r.contains(&k(5)));
        assert!(r.contains(&k(8)));
        assert!(!r.contains(&k(9)));
    }

    #[test]
    fn flipped_literal_side_works() {
        // 10 >= F0  is  F0 <= 10
        let e = Expr::Cmp(
            Box::new(Expr::lit(Value::Int(10))),
            CmpOp::Ge,
            Box::new(Expr::Field(0)),
        );
        let r = int_range(&[e]);
        assert!(r.contains(&k(10)));
        assert!(!r.contains(&k(11)));
    }

    #[test]
    fn between_becomes_closed_range() {
        let e = Expr::Between {
            expr: Box::new(Expr::Field(0)),
            lo: Box::new(Expr::lit(Value::Int(2))),
            hi: Box::new(Expr::lit(Value::Int(4))),
        };
        let r = int_range(&[e]);
        for v in [2, 3, 4] {
            assert!(r.contains(&k(v)), "{v}");
        }
        assert!(!r.contains(&k(1)));
        assert!(!r.contains(&k(5)));
    }

    #[test]
    fn unrelated_conjuncts_leave_range_open() {
        let r = int_range(&[Expr::field_cmp(3, CmpOp::Eq, Value::Int(7))]);
        assert_eq!(r, KeyRange::all());
    }

    #[test]
    fn composite_key_equality_prefix_plus_range() {
        // Key (A, B): A = 5 AND B < 9 gives a prefix + upper bound.
        let range = key_range_from(
            &[
                Expr::field_cmp(0, CmpOp::Eq, Value::Int(5)),
                Expr::field_cmp(1, CmpOp::Lt, Value::Int(9)),
            ],
            &[0, 1],
            |_| FieldType::Int,
        );
        let kk = |a: i32, b: i32| {
            encode_key_prefix(&[
                (FieldType::Int, Value::Int(a)),
                (FieldType::Int, Value::Int(b)),
            ])
        };
        assert!(range.contains(&kk(5, 0)));
        assert!(range.contains(&kk(5, 8)));
        assert!(!range.contains(&kk(5, 9)));
        assert!(!range.contains(&kk(4, 0)));
        assert!(!range.contains(&kk(6, 0)));
    }

    #[test]
    fn ne_and_null_do_not_bound() {
        let r = int_range(&[Expr::field_cmp(0, CmpOp::Ne, Value::Int(5))]);
        assert_eq!(r, KeyRange::all());
        let r = int_range(&[Expr::field_cmp(0, CmpOp::Eq, Value::Null)]);
        assert_eq!(r, KeyRange::all());
    }
}
