//! SQL lexer for the 1988-vintage dialect.

use std::fmt;

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (upper-cased keywords are matched textually).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// String literal (single quotes, `''` escape).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // SQL comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                at: i,
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad numeric literal {text}"),
                        at: start,
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| LexError {
                        message: format!("bad integer literal {text}"),
                        at: start,
                    })?));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' | '$' | '"' => {
                if c == '"' {
                    // Delimited identifier.
                    let start = i + 1;
                    i += 1;
                    while i < bytes.len() && bytes[i] != b'"' {
                        i += 1;
                    }
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated delimited identifier".into(),
                            at: start,
                        });
                    }
                    out.push(Token::Ident(input[start..i].to_string()));
                    i += 1;
                } else {
                    let start = i;
                    while i < bytes.len()
                        && (bytes[i].is_ascii_alphanumeric()
                            || bytes[i] == b'_'
                            || bytes[i] == b'$'
                            || bytes[i] == b'^')
                    {
                        i += 1;
                    }
                    out.push(Token::Ident(input[start..i].to_ascii_uppercase()));
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    at: i,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_uppercase_and_symbols() {
        let toks = lex("select Name, hire_date from EMP where empno <= 1000;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("NAME".into()));
        assert_eq!(toks[2], Token::Comma);
        assert!(toks.contains(&Token::Le));
        assert_eq!(*toks.last().unwrap(), Token::Semi);
    }

    #[test]
    fn numbers_and_strings() {
        let toks = lex("VALUES (42, 1.07, -3, 'O''BRIEN', 2e3)").unwrap();
        assert!(toks.contains(&Token::Int(42)));
        assert!(toks.contains(&Token::Float(1.07)));
        assert!(toks.contains(&Token::Minus));
        assert!(toks.contains(&Token::Str("O'BRIEN".into())));
        assert!(toks.contains(&Token::Float(2000.0)));
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("a <> b != c <= d >= e < f > g = h").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::Ne,
                &Token::Ne,
                &Token::Le,
                &Token::Ge,
                &Token::Lt,
                &Token::Gt,
                &Token::Eq
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("SELECT -- the fields\n NAME").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn errors_carry_position() {
        let err = lex("SELECT ~").unwrap_err();
        assert_eq!(err.at, 7);
        assert!(lex("'open").is_err());
    }

    #[test]
    fn volume_names_lex() {
        let toks = lex("ON '$DATA1'").unwrap();
        assert_eq!(toks[1], Token::Str("$DATA1".into()));
    }
}
