//! End-to-end SQL tests: parse → plan → execute over a simulated cluster.

use crate::ast::Statement;
use crate::catalog::Catalog;
use crate::exec::{ExecError, Executor, QueryResult};
use crate::parser::parse;
use crate::plan::{plan, AccessPath, Plan};
use nsql_disk::Disk;
use nsql_dp::{DiskProcess, DpConfig, DpContext};
use nsql_fs::FileSystem;
use nsql_lock::TxnId;
use nsql_msg::{Bus, CpuId};
use nsql_records::Value;
use nsql_sim::Sim;
use nsql_tmf::{CommitTimer, LsnSource, Trail, TxnManager, AUDIT_PROCESS};
use std::sync::Arc;

struct World {
    sim: Sim,
    txnmgr: Arc<TxnManager>,
    catalog: Arc<Catalog>,
    fs: FileSystem,
    client: CpuId,
}

fn world() -> World {
    let sim = Sim::new();
    let bus = Bus::new(sim.clone());
    let lsns = LsnSource::new();
    let trail = Trail::new(sim.clone(), Arc::clone(&lsns), CommitTimer::Fixed(1_000));
    bus.register(AUDIT_PROCESS, CpuId::new(0, 3), trail.clone());
    let txnmgr = TxnManager::new(sim.clone(), Arc::clone(&bus));
    let ctx = DpContext {
        sim: sim.clone(),
        bus: Arc::clone(&bus),
        trail,
        txnmgr: Arc::clone(&txnmgr),
        lsns,
    };
    for (i, name) in ["$DATA1", "$DATA2", "$IDX"].iter().enumerate() {
        let disk = Disk::new(sim.clone(), *name, true);
        DiskProcess::format(
            &ctx,
            name,
            CpuId::new(0, 1 + i as u8),
            disk,
            DpConfig::default(),
        );
    }
    let client = CpuId::new(0, 0);
    let fs = FileSystem::new(sim.clone(), Arc::clone(&bus), client);
    World {
        sim,
        txnmgr,
        catalog: Catalog::new("$DATA1"),
        fs,
        client,
    }
}

impl World {
    /// Run one statement in its own transaction (autocommit).
    fn run(&self, sql: &str) -> Result<ExecOutcome, String> {
        let stmt = parse(sql).map_err(|e| e.to_string())?;
        let planned = plan(&self.catalog, stmt).map_err(|e| e.to_string())?;
        let exec = Executor {
            fs: &self.fs,
            catalog: &self.catalog,
            sort_parallelism: 1,
            sys: None,
        };
        match planned {
            Plan::Select(p) => {
                let r = exec.select(&p, None).map_err(|e| e.to_string())?;
                Ok(ExecOutcome::Rows(r))
            }
            Plan::Insert(p) => self.in_txn(|txn| exec.insert(&p, txn)),
            Plan::Update(p) => self.in_txn(|txn| exec.update(&p, txn)),
            Plan::Delete(p) => self.in_txn(|txn| exec.delete(&p, txn)),
            Plan::Passthrough(Statement::CreateTable(t)) => {
                self.catalog
                    .create_table(&self.fs, &t)
                    .map_err(|e| e.to_string())?;
                Ok(ExecOutcome::Count(0))
            }
            Plan::Passthrough(Statement::CreateIndex(ci)) => {
                let txn = self.txnmgr.begin();
                let r = self.catalog.create_index(&self.fs, txn, &ci);
                match r {
                    Ok(()) => {
                        self.txnmgr.commit(txn, self.client).unwrap();
                        Ok(ExecOutcome::Count(0))
                    }
                    Err(e) => {
                        self.txnmgr.abort(txn, self.client).unwrap();
                        Err(e.to_string())
                    }
                }
            }
            Plan::Passthrough(Statement::DropTable(t)) => {
                self.catalog.drop_table(&t).map_err(|e| e.to_string())?;
                Ok(ExecOutcome::Count(0))
            }
            Plan::Explain(_) | Plan::ExplainAnalyze(_) => {
                Err("EXPLAIN handled at the session layer".into())
            }
            Plan::Passthrough(other) => Err(format!("not runnable here: {other:?}")),
        }
    }

    fn in_txn<F: FnOnce(TxnId) -> Result<u64, ExecError>>(
        &self,
        f: F,
    ) -> Result<ExecOutcome, String> {
        let txn = self.txnmgr.begin();
        match f(txn) {
            Ok(n) => {
                self.txnmgr.commit(txn, self.client).unwrap();
                Ok(ExecOutcome::Count(n))
            }
            Err(e) => {
                self.txnmgr.abort(txn, self.client).unwrap();
                Err(e.to_string())
            }
        }
    }

    fn rows(&self, sql: &str) -> QueryResult {
        match self.run(sql).unwrap() {
            ExecOutcome::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    fn count(&self, sql: &str) -> u64 {
        match self.run(sql).unwrap() {
            ExecOutcome::Count(n) => n,
            other => panic!("expected count, got {other:?}"),
        }
    }
}

#[derive(Debug)]
enum ExecOutcome {
    Rows(QueryResult),
    Count(u64),
}

fn setup_emp(w: &World, n: i32) {
    w.run(
        "CREATE TABLE EMP (EMPNO INT NOT NULL, NAME CHAR(12) NOT NULL, \
         DEPT INT NOT NULL, SALARY DOUBLE, PRIMARY KEY (EMPNO)) \
         PARTITION BY VALUES (500) ON ('$DATA1', '$DATA2')",
    )
    .unwrap();
    for i in 0..n {
        let salary = 20_000.0 + (i % 50) as f64 * 500.0;
        w.count(&format!(
            "INSERT INTO EMP VALUES ({i}, 'E{i:05}', {}, {salary})",
            i % 10
        ));
    }
}

#[test]
fn paper_example_1_end_to_end() {
    let w = world();
    setup_emp(&w, 1200);
    let r = w.rows("SELECT NAME, SALARY FROM EMP WHERE EMPNO <= 1000 AND SALARY > 32000");
    assert_eq!(r.columns, vec!["NAME", "SALARY"]);
    // SALARY > 32000 <=> (i % 50) * 500 > 12000 <=> i%50 >= 25.
    let expected = (0..=1000).filter(|i| i % 50 >= 25).count();
    assert_eq!(r.rows.len(), expected);
    for row in &r.rows {
        let Value::Double(s) = row.0[1] else { panic!() };
        assert!(s > 32_000.0);
    }
}

#[test]
fn select_star_and_order_by() {
    let w = world();
    setup_emp(&w, 50);
    let r = w.rows("SELECT * FROM EMP ORDER BY SALARY DESC, EMPNO");
    assert_eq!(r.rows.len(), 50);
    assert_eq!(r.columns.len(), 4);
    let salaries: Vec<f64> = r
        .rows
        .iter()
        .map(|row| match row.0[3] {
            Value::Double(s) => s,
            _ => panic!(),
        })
        .collect();
    assert!(salaries.windows(2).all(|w| w[0] >= w[1]));
}

#[test]
fn paper_example_3_update_with_expression() {
    let w = world();
    w.run(
        "CREATE TABLE ACCOUNT (ACCTNO INT NOT NULL, BALANCE DOUBLE NOT NULL, \
         PRIMARY KEY (ACCTNO))",
    )
    .unwrap();
    for i in 0..100 {
        let bal = if i % 2 == 0 { 100.0 } else { -10.0 };
        w.count(&format!("INSERT INTO ACCOUNT VALUES ({i}, {bal})"));
    }
    let n = w.count("UPDATE ACCOUNT SET BALANCE = BALANCE * 1.07 WHERE BALANCE > 0");
    assert_eq!(n, 50);
    let r = w.rows("SELECT BALANCE FROM ACCOUNT WHERE ACCTNO = 0");
    assert_eq!(r.rows[0].0[0], Value::Double(107.0));
    let r = w.rows("SELECT BALANCE FROM ACCOUNT WHERE ACCTNO = 1");
    assert_eq!(r.rows[0].0[0], Value::Double(-10.0));
}

#[test]
fn check_constraint_blocks_bad_updates_and_inserts() {
    let w = world();
    w.run(
        "CREATE TABLE PART (PARTNO INT NOT NULL, QUANTITY INT NOT NULL, \
         PRIMARY KEY (PARTNO), CHECK (QUANTITY >= 0))",
    )
    .unwrap();
    w.count("INSERT INTO PART VALUES (1, 10)");
    let err = w.run("INSERT INTO PART VALUES (2, -5)").unwrap_err();
    assert!(err.contains("constraint"), "{err}");
    let err = w
        .run("UPDATE PART SET QUANTITY = QUANTITY - 100 WHERE PARTNO = 1")
        .unwrap_err();
    assert!(err.contains("constraint"), "{err}");
    // The failed update rolled back.
    let r = w.rows("SELECT QUANTITY FROM PART WHERE PARTNO = 1");
    assert_eq!(r.rows[0].0[0], Value::Int(10));
}

#[test]
fn aggregates_and_group_by() {
    let w = world();
    setup_emp(&w, 100);
    let r = w.rows("SELECT COUNT(*), MIN(SALARY), MAX(SALARY) FROM EMP");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].0[0], Value::LargeInt(100));
    let r = w.rows(
        "SELECT DEPT, COUNT(*) AS N, AVG(SALARY) AS AVGSAL FROM EMP GROUP BY DEPT ORDER BY DEPT",
    );
    assert_eq!(r.rows.len(), 10);
    assert_eq!(r.columns, vec!["DEPT", "N", "AVGSAL"]);
    for (i, row) in r.rows.iter().enumerate() {
        assert_eq!(row.0[0], Value::Int(i as i32));
        assert_eq!(row.0[1], Value::LargeInt(10));
    }
}

#[test]
fn aggregate_of_empty_table() {
    let w = world();
    w.run("CREATE TABLE T (A INT NOT NULL, PRIMARY KEY (A))")
        .unwrap();
    let r = w.rows("SELECT COUNT(*), SUM(A) FROM T");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].0[0], Value::LargeInt(0));
    assert_eq!(r.rows[0].0[1], Value::Null);
}

#[test]
fn point_query_uses_key_range_one_message() {
    let w = world();
    setup_emp(&w, 1000);
    let before = w.sim.metrics.snapshot();
    let r = w.rows("SELECT NAME FROM EMP WHERE EMPNO = 700");
    assert_eq!(r.rows.len(), 1);
    let d = w.sim.metrics.since(&before);
    assert_eq!(d.msgs_fs_dp, 1, "point query must touch one partition once");
    assert!(
        d.dp_records_examined <= 1,
        "key range should bound the scan to the single record"
    );
}

#[test]
fn range_predicate_limits_partition_fanout() {
    let w = world();
    setup_emp(&w, 1000);
    let before = w.sim.metrics.snapshot();
    let r = w.rows("SELECT EMPNO FROM EMP WHERE EMPNO BETWEEN 100 AND 120");
    assert_eq!(r.rows.len(), 21);
    let d = w.sim.metrics.since(&before);
    assert_eq!(d.msgs_fs_dp, 1);
    assert!(d.dp_records_examined <= 22);
}

#[test]
fn index_is_chosen_for_equality_on_indexed_column() {
    let w = world();
    setup_emp(&w, 1000);
    w.run("CREATE INDEX EMP_DEPT ON EMP (DEPT) ON '$IDX'")
        .unwrap();
    // Plan inspection: DEPT = 3 should use the index.
    let stmt = parse("SELECT EMPNO, DEPT FROM EMP WHERE DEPT = 3").unwrap();
    let Plan::Select(p) = plan(&w.catalog, stmt).unwrap() else {
        panic!()
    };
    assert!(
        matches!(
            p.tables[0].access,
            AccessPath::IndexScan {
                index_only: true,
                ..
            }
        ),
        "expected an index-only scan, got {:?}",
        p.tables[0].access
    );
    // And it returns correct rows with few messages.
    let before = w.sim.metrics.snapshot();
    let r = w.rows("SELECT EMPNO, DEPT FROM EMP WHERE DEPT = 3");
    assert_eq!(r.rows.len(), 100);
    for row in &r.rows {
        assert_eq!(row.0[1], Value::Int(3));
    }
    let d = w.sim.metrics.since(&before);
    assert!(
        d.msgs_fs_dp <= 3,
        "index-only scan should take ~1 message, got {}",
        d.msgs_fs_dp
    );
}

#[test]
fn index_with_base_fetch_when_fields_missing() {
    let w = world();
    setup_emp(&w, 200);
    w.run("CREATE INDEX EMP_DEPT ON EMP (DEPT) ON '$IDX'")
        .unwrap();
    let stmt = parse("SELECT NAME, SALARY FROM EMP WHERE DEPT = 7").unwrap();
    let Plan::Select(p) = plan(&w.catalog, stmt).unwrap() else {
        panic!()
    };
    assert!(matches!(
        p.tables[0].access,
        AccessPath::IndexScan {
            index_only: false,
            ..
        }
    ));
    let r = w.rows("SELECT NAME, SALARY FROM EMP WHERE DEPT = 7");
    assert_eq!(r.rows.len(), 20);
}

#[test]
fn two_table_join() {
    let w = world();
    w.run("CREATE TABLE DEPT (DEPTNO INT NOT NULL, DNAME CHAR(10) NOT NULL, PRIMARY KEY (DEPTNO))")
        .unwrap();
    for d in 0..10 {
        w.count(&format!("INSERT INTO DEPT VALUES ({d}, 'DEPT{d:02}')"));
    }
    setup_emp(&w, 60);
    let r = w.rows(
        "SELECT E.EMPNO, D.DNAME FROM EMP E, DEPT D \
         WHERE E.DEPT = D.DEPTNO AND E.EMPNO < 10 ORDER BY E.EMPNO",
    );
    assert_eq!(r.rows.len(), 10);
    assert_eq!(r.rows[3].0[0], Value::Int(3));
    assert_eq!(r.rows[3].0[1], Value::Str("DEPT03".into()));
}

#[test]
fn delete_with_predicate() {
    let w = world();
    setup_emp(&w, 100);
    let n = w.count("DELETE FROM EMP WHERE DEPT = 4");
    assert_eq!(n, 10);
    let r = w.rows("SELECT COUNT(*) FROM EMP");
    assert_eq!(r.rows[0].0[0], Value::LargeInt(90));
    let r = w.rows("SELECT COUNT(*) FROM EMP WHERE DEPT = 4");
    assert_eq!(r.rows[0].0[0], Value::LargeInt(0));
}

#[test]
fn like_and_in_and_null_predicates() {
    let w = world();
    w.run("CREATE TABLE S (ID INT NOT NULL, NAME VARCHAR(20), PRIMARY KEY (ID))")
        .unwrap();
    w.count("INSERT INTO S VALUES (1, 'ALPHA'), (2, 'BETA'), (3, NULL), (4, 'ALTO')");
    let r = w.rows("SELECT ID FROM S WHERE NAME LIKE 'AL%'");
    assert_eq!(r.rows.len(), 2);
    let r = w.rows("SELECT ID FROM S WHERE NAME IS NULL");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].0[0], Value::Int(3));
    let r = w.rows("SELECT ID FROM S WHERE ID IN (2, 4, 9)");
    assert_eq!(r.rows.len(), 2);
    // NULL never equals anything.
    let r = w.rows("SELECT ID FROM S WHERE NAME = NULL");
    assert_eq!(r.rows.len(), 0);
}

#[test]
fn browse_access_reads_record_at_a_time() {
    let w = world();
    setup_emp(&w, 300);
    // Same rows either way...
    let fast = w.rows("SELECT EMPNO FROM EMP WHERE SALARY > 40000");
    let before = w.sim.metrics.snapshot();
    let slow = w.rows("SELECT EMPNO FROM EMP WHERE SALARY > 40000 FOR BROWSE RECORD ACCESS");
    let d = w.sim.metrics.since(&before);
    assert_eq!(fast.rows.len(), slow.rows.len());
    // ... but browse access pays one message per record.
    assert!(
        d.msgs_fs_dp >= 300,
        "record-at-a-time should message per record, got {}",
        d.msgs_fs_dp
    );
}

#[test]
fn multi_statement_txn_semantics_via_manager() {
    // Cross-statement transactions are exercised at the session layer in
    // nsql-core; here check that an aborted insert vanishes.
    let w = world();
    setup_emp(&w, 10);
    let txn = w.txnmgr.begin();
    let stmt = parse("INSERT INTO EMP VALUES (999, 'GHOST', 0, 1.0)").unwrap();
    let Plan::Insert(p) = plan(&w.catalog, stmt).unwrap() else {
        panic!()
    };
    let exec = Executor {
        fs: &w.fs,
        catalog: &w.catalog,
        sort_parallelism: 1,
        sys: None,
    };
    exec.insert(&p, txn).unwrap();
    w.txnmgr.abort(txn, w.client).unwrap();
    let r = w.rows("SELECT COUNT(*) FROM EMP WHERE EMPNO = 999");
    assert_eq!(r.rows[0].0[0], Value::LargeInt(0));
}

#[test]
fn unique_index_via_sql() {
    let w = world();
    setup_emp(&w, 20); // DEPT values 0..9 each appear twice
    w.run("CREATE UNIQUE INDEX EMP_NAME ON EMP (NAME) ON '$IDX'")
        .unwrap();
    let err = w
        .run("INSERT INTO EMP VALUES (100, 'E00003', 1, 1.0)")
        .unwrap_err();
    assert!(err.contains("duplicate"), "{err}");
    // Creating a unique index over duplicate data fails.
    let err = w
        .run("CREATE UNIQUE INDEX EMP_D ON EMP (DEPT) ON '$IDX'")
        .unwrap_err();
    assert!(err.contains("duplicate"), "{err}");
}

#[test]
fn result_table_rendering() {
    let w = world();
    setup_emp(&w, 3);
    let r = w.rows("SELECT EMPNO, NAME FROM EMP ORDER BY EMPNO");
    let table = r.to_table();
    assert!(table.contains("EMPNO"));
    assert!(table.contains("E00002"));
}

#[test]
fn errors_surface_cleanly() {
    let w = world();
    assert!(w
        .run("SELECT * FROM NOPE")
        .unwrap_err()
        .contains("no such table"));
    setup_emp(&w, 1);
    assert!(w
        .run("SELECT NOPE FROM EMP")
        .unwrap_err()
        .contains("unknown column"));
    assert!(w
        .run("UPDATE EMP SET EMPNO = 1")
        .unwrap_err()
        .contains("key"));
    assert!(w
        .run("INSERT INTO EMP VALUES (1)")
        .unwrap_err()
        .contains("values"));
}

#[test]
fn doomed_fs_errors_surface_as_typed_exec_doomed() {
    // The retry loop in the workload engine matches on ExecError::Doomed;
    // the From<FsError> impl must preserve the doom reason verbatim.
    let e = crate::exec::ExecError::from(nsql_fs::FsError::Doomed {
        reason: "deadlock victim T7".to_string(),
    });
    assert_eq!(
        e,
        crate::exec::ExecError::Doomed("deadlock victim T7".to_string())
    );
    assert!(e.to_string().contains("deadlock"), "{e}");
    // Constraint violations keep their dedicated variant.
    assert_eq!(
        crate::exec::ExecError::from(nsql_fs::FsError::Dp(nsql_dp::DpError::ConstraintViolation)),
        crate::exec::ExecError::ConstraintViolation
    );
}
