//! FastSort — the sort component invoked by the Executor for ORDER BY.
//!
//! The paper notes "a user option which directs the SQL compiler to cause
//! the invocation at execution time of the parallel sorter, FastSort, which
//! uses multiple processors and disks if available" \[Tsukerman\]. This
//! module reproduces the behavioural shape: run generation plus merge, with
//! CPU work accounted to the executor, and an optional parallelism factor
//! that divides the elapsed (virtual) sorting time as extra processors
//! would.

use nsql_records::{EvalError, Expr, Row, Value};
use nsql_sim::{Sim, Wait};
use std::cmp::Ordering;

/// Compare two values for sorting: NULLs sort first, otherwise SQL order.
pub fn sort_cmp(a: &Value, b: &Value) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.sql_cmp(b).unwrap_or(Ordering::Equal),
    }
}

/// Sort rows by the given key expressions (ascending unless `desc`).
///
/// `parallel_ways` > 1 models FastSort's use of multiple processors: the
/// CPU work is unchanged, but the virtual elapsed time of the sort shrinks
/// by that factor (subsorts run concurrently).
pub fn fastsort(
    sim: &Sim,
    rows: Vec<Row>,
    keys: &[(Expr, bool)],
    parallel_ways: u32,
) -> Result<Vec<Row>, EvalError> {
    if rows.len() <= 1 || keys.is_empty() {
        return Ok(rows);
    }
    // Schwartzian decoration: evaluate each key expression once per row.
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows {
        let mut kv = Vec::with_capacity(keys.len());
        for (e, _) in keys {
            kv.push(e.eval(&row)?);
        }
        decorated.push((kv, row));
    }

    // Account the sort's path length (~ n log2 n comparisons). The full
    // amount is CPU *work*; with parallel subsorts, elapsed virtual time is
    // the work divided across the processors, plus a merge pass.
    let n = decorated.len() as u64;
    let work = n * (64 - n.leading_zeros() as u64) / 4 + 1;
    let ways = parallel_ways.max(1) as u64;
    sim.metrics.cpu_executor.add(work);
    let elapsed_units = if ways == 1 { work } else { work / ways + n / 8 };
    sim.clock
        .advance_in(Wait::Cpu, elapsed_units * sim.cost.cpu_work_unit_us);

    decorated.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, desc)) in keys.iter().enumerate() {
            let ord = sort_cmp(&ka[i], &kb[i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    Ok(decorated.into_iter().map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_sim::Sim;

    fn rows(vals: &[i32]) -> Vec<Row> {
        vals.iter().map(|&v| Row(vec![Value::Int(v)])).collect()
    }

    #[test]
    fn sorts_ascending_and_descending() {
        let sim = Sim::new();
        let keys = vec![(Expr::Field(0), false)];
        let sorted = fastsort(&sim, rows(&[3, 1, 2]), &keys, 1).unwrap();
        assert_eq!(
            sorted.iter().map(|r| r.0[0].clone()).collect::<Vec<_>>(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        let keys = vec![(Expr::Field(0), true)];
        let sorted = fastsort(&sim, rows(&[3, 1, 2]), &keys, 1).unwrap();
        assert_eq!(sorted[0].0[0], Value::Int(3));
    }

    #[test]
    fn nulls_sort_first() {
        let sim = Sim::new();
        let input = vec![
            Row(vec![Value::Int(1)]),
            Row(vec![Value::Null]),
            Row(vec![Value::Int(0)]),
        ];
        let keys = vec![(Expr::Field(0), false)];
        let sorted = fastsort(&sim, input, &keys, 1).unwrap();
        assert_eq!(sorted[0].0[0], Value::Null);
        assert_eq!(sorted[1].0[0], Value::Int(0));
    }

    #[test]
    fn multi_key_sort() {
        let sim = Sim::new();
        let input = vec![
            Row(vec![Value::Int(1), Value::Str("B".into())]),
            Row(vec![Value::Int(1), Value::Str("A".into())]),
            Row(vec![Value::Int(0), Value::Str("Z".into())]),
        ];
        let keys = vec![(Expr::Field(0), false), (Expr::Field(1), false)];
        let sorted = fastsort(&sim, input, &keys, 1).unwrap();
        assert_eq!(sorted[0].0[1], Value::Str("Z".into()));
        assert_eq!(sorted[1].0[1], Value::Str("A".into()));
        assert_eq!(sorted[2].0[1], Value::Str("B".into()));
    }

    #[test]
    fn accounts_cpu_work() {
        let sim = Sim::new();
        let keys = vec![(Expr::Field(0), false)];
        let many: Vec<i32> = (0..1000).rev().collect();
        let before = sim.metrics.cpu_executor.get();
        fastsort(&sim, rows(&many), &keys, 1).unwrap();
        assert!(sim.metrics.cpu_executor.get() > before);
    }

    #[test]
    fn parallel_sort_same_work_less_time() {
        let run = |ways: u32| {
            let sim = Sim::new();
            let keys = vec![(Expr::Field(0), false)];
            let many: Vec<i32> = (0..10_000).rev().collect();
            let t0 = sim.now();
            let sorted = fastsort(&sim, rows(&many), &keys, ways).unwrap();
            assert_eq!(sorted[0].0[0], Value::Int(0));
            (sim.metrics.cpu_executor.get(), sim.now() - t0)
        };
        let (work1, time1) = run(1);
        let (work4, time4) = run(4);
        assert_eq!(work1, work4, "path length unchanged by parallelism");
        assert!(
            time4 * 2 < time1,
            "4-way FastSort ({time4}) should be much faster than serial ({time1})"
        );
    }

    #[test]
    fn stable_for_equal_keys() {
        let sim = Sim::new();
        let input = vec![
            Row(vec![Value::Int(1), Value::Int(10)]),
            Row(vec![Value::Int(1), Value::Int(20)]),
        ];
        let keys = vec![(Expr::Field(0), false)];
        let sorted = fastsort(&sim, input, &keys, 1).unwrap();
        assert_eq!(sorted[0].0[1], Value::Int(10));
        assert_eq!(sorted[1].0[1], Value::Int(20));
    }
}
