//! Causal span identities.
//!
//! Every SQL statement opens a **root span** under a fresh trace id; every
//! FS→DP request opens a **child span** under the innermost open span on the
//! requesting thread; and the Disk Process opens a **handling span** under
//! the identity carried in the request header — so the tree survives the
//! wire hop and `assemble_spans` can reconstruct the causal path afterwards.
//!
//! Identities come from a shared [`SpanAllocator`] (plain atomics on no
//! clock), so allocation is always-on, deterministic per seed, and free of
//! virtual-time side effects; the begin/end *events* go through
//! [`TraceRecorder::emit`]'s closure gate and cost one relaxed load when
//! tracing is off. The active-span stack is thread-local, which is exact
//! here: the message bus is synchronous, so a request's DP-side handling
//! runs nested inside the requester's call stack.

use crate::clock::{Clock, WaitProfile};
use crate::trace::{TraceEventKind, TraceRecorder};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The span identity every FS-DP request carries in its header.
///
/// An all-zero header means "no span" (id 0 is never allocated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanHeader {
    /// Trace (statement) id.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// Parent span id (0 for a root).
    pub parent: u64,
}

/// Allocates trace and span ids for one simulation. Ids start at 1; 0 is
/// reserved for "none".
#[derive(Debug, Default)]
pub struct SpanAllocator {
    next_trace: AtomicU64,
    next_span: AtomicU64,
}

impl SpanAllocator {
    /// A fresh allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next trace id.
    pub fn trace_id(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Allocate the next span id.
    pub fn span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed) + 1
    }
}

thread_local! {
    static ACTIVE: RefCell<Vec<SpanHeader>> = const { RefCell::new(Vec::new()) };
}

/// The innermost open span on this thread (all-zero when none is open).
/// The File System stamps this into outgoing request headers.
pub fn current_span() -> SpanHeader {
    ACTIVE.with(|s| s.borrow().last().copied().unwrap_or_default())
}

/// An open span. Dropping it pops the thread-local stack and emits the
/// [`TraceEventKind::SpanEnd`] event carrying the span's inclusive
/// per-category wait profile (clock ledger delta since the span opened).
pub struct SpanGuard {
    clock: Arc<Clock>,
    trace: Arc<TraceRecorder>,
    header: SpanHeader,
    track: String,
    p0: WaitProfile,
}

impl SpanGuard {
    /// The identity to stamp into outgoing request headers.
    pub fn header(&self) -> SpanHeader {
        self.header
    }

    /// Push `header` onto this thread's stack and emit the begin event.
    pub(crate) fn open(
        clock: Arc<Clock>,
        trace: Arc<TraceRecorder>,
        header: SpanHeader,
        label: &str,
        track: &str,
    ) -> SpanGuard {
        ACTIVE.with(|s| s.borrow_mut().push(header));
        let p0 = clock.profile();
        let track = track.to_string();
        trace.emit(clock.now(), {
            let (label, track) = (label.to_string(), track.clone());
            move || TraceEventKind::SpanBegin {
                trace: header.trace,
                span: header.span,
                parent: header.parent,
                label,
                track,
            }
        });
        SpanGuard {
            clock,
            trace,
            header,
            track,
            p0,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        ACTIVE.with(|s| {
            s.borrow_mut().pop();
        });
        let wait = self.clock.profile() - self.p0;
        let h = self.header;
        let track = std::mem::take(&mut self.track);
        self.trace
            .emit(self.clock.now(), move || TraceEventKind::SpanEnd {
                trace: h.trace,
                span: h.span,
                track,
                wait,
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Wait;

    fn open(
        clock: &Arc<Clock>,
        rec: &Arc<TraceRecorder>,
        header: SpanHeader,
        label: &str,
    ) -> SpanGuard {
        SpanGuard::open(clock.clone(), rec.clone(), header, label, "t")
    }

    #[test]
    fn guards_stack_and_attribute_waits() {
        let clock = Arc::new(Clock::new());
        let rec = Arc::new(TraceRecorder::new());
        rec.enable_default();
        assert_eq!(current_span(), SpanHeader::default());
        {
            let root = open(
                &clock,
                &rec,
                SpanHeader {
                    trace: 1,
                    span: 1,
                    parent: 0,
                },
                "root",
            );
            assert_eq!(current_span(), root.header());
            clock.advance_in(Wait::Cpu, 5);
            {
                let child = open(
                    &clock,
                    &rec,
                    SpanHeader {
                        trace: 1,
                        span: 2,
                        parent: 1,
                    },
                    "child",
                );
                assert_eq!(current_span().parent, 1);
                drop(child);
            }
            assert_eq!(current_span().span, 1);
            clock.advance_in(Wait::Msg, 7);
        }
        assert_eq!(current_span(), SpanHeader::default());
        let roots = crate::trace::assemble_spans(&rec.events());
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].wait.get(Wait::Cpu), 5);
        assert_eq!(roots[0].wait.get(Wait::Msg), 7);
        assert_eq!(roots[0].wait.total(), roots[0].elapsed());
        assert_eq!(roots[0].children[0].wait.total(), 0);
    }

    #[test]
    fn allocator_never_hands_out_zero() {
        let a = SpanAllocator::new();
        assert_eq!(a.trace_id(), 1);
        assert_eq!(a.span_id(), 1);
        assert_eq!(a.span_id(), 2);
    }
}
