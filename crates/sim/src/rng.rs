//! Deterministic random number generation for workload builders.
//!
//! A small self-contained generator (SplitMix64 seeding an xorshift-style
//! mixer) so every workload and property test can be reproduced from a
//! single `u64` seed with no external dependencies.

/// Seeded RNG used by workload generators and failure injection.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // One mixing round so nearby seeds land far apart in state space.
        SimRng {
            state: splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift: maps the full 64-bit range onto [0, n) with
        // negligible bias for the small ranges workloads use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn between(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "between({lo}, {hi})");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits -> the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Fixed-length uppercase-letter string (Wisconsin-style filler).
    pub fn letters(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (b'A' + self.below(26) as u8) as char)
            .collect()
    }
}

/// The SplitMix64 finalizer (Steele, Lea & Flood 2014).
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(7);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn letters_are_uppercase() {
        let mut rng = SimRng::seed_from(9);
        let s = rng.letters(32);
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_uppercase()));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let v = rng.between(-5, 5);
            assert!((-5..=5).contains(&v));
            assert!(rng.below(7) < 7);
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
