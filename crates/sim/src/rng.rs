//! Deterministic random number generation for workload builders.
//!
//! A small self-contained generator (SplitMix64 seeding an xorshift-style
//! mixer) so every workload and property test can be reproduced from a
//! single `u64` seed with no external dependencies.

/// Seeded RNG used by workload generators and failure injection.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // One mixing round so nearby seeds land far apart in state space.
        SimRng {
            state: splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift: maps the full 64-bit range onto [0, n) with
        // negligible bias for the small ranges workloads use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn between(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "between({lo}, {hi})");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits -> the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Fixed-length uppercase-letter string (Wisconsin-style filler).
    pub fn letters(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (b'A' + self.below(26) as u8) as char)
            .collect()
    }

    /// Exponentially distributed gap with the given mean, in whole
    /// microseconds (Poisson-process inter-arrival times for the open-loop
    /// workload engine). Always at least 1 µs so arrival events are
    /// strictly ordered on the virtual clock.
    pub fn exp_us(&mut self, mean_us: f64) -> u64 {
        let mean = mean_us.max(1.0);
        // unit() is in [0, 1); 1 - u is in (0, 1], so ln is finite.
        let gap = -(1.0 - self.unit()).ln() * mean;
        (gap.round() as u64).max(1)
    }
}

/// Zipf-distributed index sampler over `0..n` with skew `theta`
/// (`theta == 0` is uniform; the classic "80/20" hotspot shape appears
/// around `theta ≈ 0.8–1.0`). Weights are `1 / (i+1)^theta`; sampling is
/// inversion over a precomputed cumulative table, so draws are `O(log n)`
/// and exactly reproducible from the driving [`SimRng`].
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the cumulative weights for `n` items with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        let n = n.max(1) as usize;
        let theta = theta.max(0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the table holds at least one item).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw one index in `0..n`.
    pub fn draw(&self, rng: &mut SimRng) -> u64 {
        let u = rng.unit();
        // First index whose cumulative weight exceeds u.
        match self.cdf.binary_search_by(|c| {
            if *c <= u {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        }) {
            Ok(i) | Err(i) => (i.min(self.cdf.len() - 1)) as u64,
        }
    }
}

/// The SplitMix64 finalizer (Steele, Lea & Flood 2014).
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(7);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn letters_are_uppercase() {
        let mut rng = SimRng::seed_from(9);
        let s = rng.letters(32);
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_uppercase()));
    }

    #[test]
    fn exp_gaps_have_roughly_the_requested_mean() {
        let mut rng = SimRng::seed_from(17);
        let n = 4000;
        let sum: u64 = (0..n).map(|_| rng.exp_us(500.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((400.0..600.0).contains(&mean), "mean {mean}");
        assert!(rng.exp_us(0.0) >= 1, "gaps never collapse to zero");
    }

    #[test]
    fn zipf_is_deterministic_skewed_and_in_range() {
        let zipf = Zipf::new(100, 1.0);
        assert_eq!(zipf.len(), 100);
        let mut a = SimRng::seed_from(5);
        let mut b = SimRng::seed_from(5);
        let mut counts = [0u64; 100];
        for _ in 0..5000 {
            let x = zipf.draw(&mut a);
            assert_eq!(x, zipf.draw(&mut b), "deterministic per seed");
            assert!(x < 100);
            counts[x as usize] += 1;
        }
        // Skewed: item 0 is drawn far more often than item 99.
        assert!(counts[0] > 10 * counts[99].max(1), "{counts:?}");
        // theta = 0 is uniform-ish: the head loses its dominance.
        let uniform = Zipf::new(100, 0.0);
        let mut rng = SimRng::seed_from(6);
        let mut head = 0u64;
        for _ in 0..5000 {
            if uniform.draw(&mut rng) == 0 {
                head += 1;
            }
        }
        assert!(head < 200, "uniform head count {head}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let v = rng.between(-5, 5);
            assert!((-5..=5).contains(&v));
            assert!(rng.below(7) < 7);
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
