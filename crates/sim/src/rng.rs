//! Deterministic random number generation for workload builders.
//!
//! A thin wrapper over a seeded ChaCha-based `StdRng` so every workload and
//! property test can be reproduced from a single `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Seeded RNG used by workload generators and failure injection.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn between(&mut self, lo: i64, hi: i64) -> i64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Fixed-length uppercase-letter string (Wisconsin-style filler).
    pub fn letters(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (b'A' + self.below(26) as u8) as char)
            .collect()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(7);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn letters_are_uppercase() {
        let mut rng = SimRng::seed_from(9);
        let s = rng.letters(32);
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_uppercase()));
    }
}
